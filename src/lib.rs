//! Umbrella crate for the `rumor` workspace.
//!
//! Re-exports the member crates under short names so examples, integration
//! tests, and downstream users can depend on a single package. See the
//! workspace `README.md` for the architecture overview.

pub use rumor_analysis as analysis;
pub use rumor_core as core;
pub use rumor_experiments as experiments;
pub use rumor_graphs as graphs;
pub use rumor_walks as walks;
