//! Cross-crate integration tests: each test reproduces, at a small but
//! meaningful scale, one of the paper's qualitative claims end-to-end through
//! the public API (graph generators → protocols → analysis).

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_analysis::{best_law, GrowthLaw, Summary};
use rumor_core::{simulate, AgentConfig, ProtocolKind, SimulationSpec};
use rumor_graphs::generators::{
    double_star, logarithmic_degree, random_regular, star, CycleOfStarsOfCliques, HeavyBinaryTree,
    SiameseHeavyBinaryTree, STAR_CENTER,
};
use rumor_graphs::{Graph, VertexId};

fn mean_time(
    graph: &Graph,
    source: VertexId,
    kind: ProtocolKind,
    agents: &AgentConfig,
    trials: u64,
) -> f64 {
    let times: Vec<u64> = (0..trials)
        .map(|seed| {
            simulate(
                graph,
                source,
                &SimulationSpec::new(kind)
                    .with_seed(seed)
                    .with_agents(agents.clone()),
            )
            .rounds
        })
        .collect();
    Summary::of_u64(&times).mean
}

/// Lemma 2: on the star, push ≫ visit-exchange ≈ meet-exchange ≈ log n, and
/// push-pull ≤ 2.
///
/// Tolerances: push on the star is coupon-collector (~n·H(n) ≈ 1900 rounds
/// at 300 leaves) while the agent protocols are O(log n) (tens of rounds),
/// so the 10× factors and the 80/150-round absolute caps each leave
/// several-fold slack around a 5-trial mean; push-pull ≤ 2 is structural
/// (every leaf pulls from the center in round one), not statistical.
#[test]
fn lemma2_star_separations() {
    let graph = star(300).unwrap();
    let lazy = AgentConfig::default().lazy();
    let default = AgentConfig::default();
    let push = mean_time(&graph, STAR_CENTER, ProtocolKind::Push, &default, 5);
    let ppull = mean_time(&graph, STAR_CENTER, ProtocolKind::PushPull, &default, 5);
    let visitx = mean_time(&graph, STAR_CENTER, ProtocolKind::VisitExchange, &lazy, 5);
    let meetx = mean_time(&graph, STAR_CENTER, ProtocolKind::MeetExchange, &lazy, 5);
    assert!(
        ppull <= 2.0,
        "push-pull on the star must finish within two rounds, got {ppull}"
    );
    assert!(
        push > 10.0 * visitx,
        "push ({push}) should dwarf visit-exchange ({visitx})"
    );
    assert!(
        push > 10.0 * meetx,
        "push ({push}) should dwarf meet-exchange ({meetx})"
    );
    assert!(
        visitx < 80.0,
        "visit-exchange should be O(log n), got {visitx}"
    );
    assert!(
        meetx < 150.0,
        "meet-exchange should be O(log n), got {meetx}"
    );
}

/// Lemma 3: on the double star, push-pull ≫ visit-exchange and meet-exchange.
#[test]
fn lemma3_double_star_separations() {
    let graph = double_star(300).unwrap();
    let lazy = AgentConfig::default().lazy();
    let default = AgentConfig::default();
    // T_ppull here is geometric-ish (the bridge edge must be sampled), so a
    // 5-trial mean is far too noisy — average over 30 seeded trials.
    let ppull = mean_time(&graph, 2, ProtocolKind::PushPull, &default, 30);
    let visitx = mean_time(&graph, 2, ProtocolKind::VisitExchange, &lazy, 30);
    let meetx = mean_time(&graph, 2, ProtocolKind::MeetExchange, &lazy, 30);
    assert!(
        ppull > 3.0 * visitx,
        "push-pull ({ppull}) should dwarf visit-exchange ({visitx})"
    );
    assert!(
        ppull > 2.0 * meetx,
        "push-pull ({ppull}) should dwarf meet-exchange ({meetx})"
    );
}

/// Lemma 4: on the heavy binary tree, visit-exchange ≫ push and (from a leaf)
/// meet-exchange stays close to push.
///
/// Tolerances: the Lemma 4 gap is polynomial (visit-exchange pays an Ω(n)
/// root toll, push is O(log n)), so the 3× factor sits far inside the real
/// ≥ 10× separation at this size; the meetx < visitx comparison has no
/// structural margin, so it averages 12 seeded trials to push the
/// mean-comparison flake probability into the noise floor.
#[test]
fn lemma4_heavy_tree_separations() {
    let tree = HeavyBinaryTree::new(7).unwrap();
    let graph = tree.graph();
    let source = tree.a_leaf();
    let default = AgentConfig::default();
    let push = mean_time(graph, source, ProtocolKind::Push, &default, 12);
    let visitx = mean_time(graph, source, ProtocolKind::VisitExchange, &default, 12);
    let meetx = mean_time(graph, source, ProtocolKind::MeetExchange, &default, 12);
    assert!(
        visitx > 3.0 * push,
        "visit-exchange ({visitx}) should dwarf push ({push})"
    );
    assert!(
        meetx < visitx,
        "meet-exchange ({meetx}) should beat visit-exchange ({visitx}) here"
    );
}

/// Lemma 8: on the Siamese heavy trees, push is logarithmic while both agent
/// protocols are Ω(n) — information must be carried across the root, which a
/// stationary-started walk reaches only at rate O(1/n) per round.
#[test]
fn lemma8_siamese_separations() {
    let tree = SiameseHeavyBinaryTree::new(7).unwrap();
    let graph = tree.graph();
    let n = graph.num_vertices() as f64;
    let source = tree.a_leaf();
    let default = AgentConfig::default();
    let push = mean_time(graph, source, ProtocolKind::Push, &default, 5);
    let visitx = mean_time(graph, source, ProtocolKind::VisitExchange, &default, 5);
    let meetx = mean_time(graph, source, ProtocolKind::MeetExchange, &default, 5);
    // Absolute bounds that separate O(log n) from Ω(n) at this size (n ≈ 509,
    // log2 n ≈ 9): push stays far below a linear fraction of n, while both
    // agent protocols pay at least a linear-in-n toll to cross the root.
    assert!(
        push < 0.3 * n,
        "push ({push}) should be logarithmic, not linear, on D_n"
    );
    assert!(
        visitx > 0.15 * n,
        "visit-exchange ({visitx}) should pay an Ω(n) root toll"
    );
    assert!(
        meetx > 0.04 * n,
        "meet-exchange ({meetx}) should pay an Ω(n) root toll"
    );
    assert!(
        visitx > 2.5 * push,
        "visit-exchange ({visitx}) should dwarf push ({push})"
    );
}

/// Lemma 9: on the cycle of stars of cliques, meet-exchange is slower than
/// visit-exchange.
///
/// Tolerance: the lemma's separation is polynomial in m, but at m = 6 the
/// means sit within a small constant factor, so the strict comparison is
/// the right assertion — averaged over 16 seeded trials (up from 5, the
/// tightest remaining statistical margin in this suite) to keep the
/// mean-of-means comparison deterministic-in-practice.
#[test]
fn lemma9_cycle_of_stars_separation() {
    let g = CycleOfStarsOfCliques::new(6).unwrap();
    let source = g.a_clique_source();
    let graph = g.graph();
    let default = AgentConfig::default();
    let visitx = mean_time(graph, source, ProtocolKind::VisitExchange, &default, 16);
    let meetx = mean_time(graph, source, ProtocolKind::MeetExchange, &default, 16);
    assert!(
        meetx > visitx,
        "meet-exchange ({meetx}) should be slower than visit-exchange ({visitx})"
    );
}

/// Theorem 1: on random regular graphs with d = Θ(log n), push and
/// visit-exchange stay within a constant factor across sizes.
///
/// Tolerance: the measured 5-trial mean ratio sits near 1–2 on these
/// expanders; the accepted [0.2, 5] band is an order of magnitude wide on
/// each side, so only a real equivalence break can escape it.
#[test]
fn theorem1_regular_equivalence() {
    let mut rng = StdRng::seed_from_u64(11);
    let default = AgentConfig::default();
    for &n in &[128usize, 256, 512] {
        let d = logarithmic_degree(n, 2.0);
        let graph = random_regular(n, d, &mut rng).unwrap();
        let push = mean_time(&graph, 0, ProtocolKind::Push, &default, 5);
        let visitx = mean_time(&graph, 0, ProtocolKind::VisitExchange, &default, 5);
        let ratio = push / visitx;
        assert!(
            (0.2..=5.0).contains(&ratio),
            "push/visit-exchange ratio {ratio} escaped the constant band at n = {n}"
        );
    }
}

/// Theorems 24/25: the agent protocols need Ω(log n) rounds on regular graphs.
#[test]
fn theorems24_25_logarithmic_lower_bound() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 1024;
    let d = logarithmic_degree(n, 2.0);
    let graph = random_regular(n, d, &mut rng).unwrap();
    let log2n = (n as f64).log2();
    for kind in [ProtocolKind::VisitExchange, ProtocolKind::MeetExchange] {
        let fastest = (0..6u64)
            .map(|seed| simulate(&graph, 0, &SimulationSpec::new(kind).with_seed(seed)).rounds)
            .min()
            .unwrap() as f64;
        assert!(
            fastest >= 0.3 * log2n,
            "{} finished in {fastest} rounds, well below log2 n = {log2n}",
            kind.name()
        );
    }
}

/// The scaling pipeline end-to-end: push on stars fits the coupon-collector
/// law (n log n), visit-exchange fits a sub-polynomial law.
#[test]
fn scaling_fits_identify_star_growth_laws() {
    let sizes = [64usize, 128, 256, 512];
    let default = AgentConfig::default();
    let lazy = AgentConfig::default().lazy();
    let mut push_points = Vec::new();
    let mut visitx_points = Vec::new();
    for &leaves in &sizes {
        let graph = star(leaves).unwrap();
        let n = graph.num_vertices() as f64;
        push_points.push((
            n,
            mean_time(&graph, STAR_CENTER, ProtocolKind::Push, &default, 6),
        ));
        visitx_points.push((
            n,
            mean_time(&graph, STAR_CENTER, ProtocolKind::VisitExchange, &lazy, 6),
        ));
    }
    let push_best = best_law(&push_points);
    assert!(
        matches!(push_best.law, GrowthLaw::LinearLog | GrowthLaw::Linear),
        "push on the star should look like n log n, identified {}",
        push_best.law
    );
    let visitx_best = best_law(&visitx_points);
    assert!(
        matches!(
            visitx_best.law,
            GrowthLaw::Constant | GrowthLaw::Logarithmic | GrowthLaw::CubeRoot
        ),
        "visit-exchange on the star should be (poly)logarithmic, identified {}",
        visitx_best.law
    );
}
