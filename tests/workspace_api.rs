//! Workspace-level API integration tests: exercise the public surface the way
//! a downstream user would (generators → simulate → analysis → experiments),
//! independent of any particular paper claim.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_analysis::{Summary, Table};
use rumor_core::instrument::{CCounterTrace, CoupledRun};
use rumor_core::{
    build_protocol, simulate, AgentConfig, ProtocolKind, ProtocolOptions, SimulationSpec,
};
use rumor_experiments::{all_experiment_ids, run_experiment, ExperimentConfig};
use rumor_graphs::algorithms::{diameter_exact, is_connected, DegreeStats};
use rumor_graphs::generators::{
    barbell, complete, connected_erdos_renyi, cycle, cycle_of_cliques, double_star, grid,
    hypercube, lollipop, path, random_regular, star, torus, CycleOfStarsOfCliques, HeavyBinaryTree,
    SiameseHeavyBinaryTree,
};
use rumor_walks::{estimators, Placement, RandomWalk, WalkConfig};

/// Every generator produces a connected graph that the whole protocol suite
/// completes on.
#[test]
fn every_generator_supports_every_protocol() {
    let mut rng = StdRng::seed_from_u64(0);
    let graphs: Vec<(&str, rumor_graphs::Graph)> = vec![
        ("path", path(20).unwrap()),
        ("cycle", cycle(20).unwrap()),
        ("complete", complete(20).unwrap()),
        ("star", star(19).unwrap()),
        ("double-star", double_star(9).unwrap()),
        ("grid", grid(4, 5).unwrap()),
        ("torus", torus(4, 5).unwrap()),
        ("hypercube", hypercube(5).unwrap()),
        ("random-regular", random_regular(20, 4, &mut rng).unwrap()),
        ("cycle-of-cliques", cycle_of_cliques(4, 4).unwrap()),
        (
            "erdos-renyi",
            connected_erdos_renyi(20, 0.3, &mut rng).unwrap(),
        ),
        ("barbell", barbell(8).unwrap()),
        ("lollipop", lollipop(8, 5).unwrap()),
        ("heavy-tree", HeavyBinaryTree::new(3).unwrap().into_graph()),
        (
            "siamese",
            SiameseHeavyBinaryTree::new(3).unwrap().into_graph(),
        ),
        (
            "cycle-of-stars",
            CycleOfStarsOfCliques::new(3).unwrap().into_graph(),
        ),
    ];
    for (name, graph) in &graphs {
        assert!(is_connected(graph), "{name} is not connected");
        graph
            .validate()
            .unwrap_or_else(|e| panic!("{name} failed validation: {e}"));
        for kind in ProtocolKind::ALL {
            let agents = AgentConfig::default().lazy(); // lazy walks work everywhere
            let spec = SimulationSpec::new(kind)
                .with_seed(7)
                .with_agents(agents)
                .with_max_rounds(2_000_000);
            let outcome = simulate(graph, 0, &spec);
            assert!(outcome.completed, "{kind} did not complete on {name}");
        }
    }
}

/// The dynamic protocol constructor and the concrete constructors agree.
#[test]
fn build_protocol_matches_direct_construction() {
    let graph = complete(16).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let mut boxed = build_protocol(
        ProtocolKind::Push,
        &graph,
        3,
        &AgentConfig::default(),
        ProtocolOptions::none(),
        &mut rng,
    );
    assert_eq!(boxed.name(), "push");
    assert_eq!(boxed.source(), 3);
    let mut step_rng = StdRng::seed_from_u64(1);
    while !boxed.is_complete() {
        boxed.step(&mut step_rng);
    }
    assert_eq!(boxed.informed_vertex_count(), 16);
}

/// The walk estimators, instrumentation, and analysis crates compose.
#[test]
fn walks_instrumentation_and_analysis_compose() {
    let mut rng = StdRng::seed_from_u64(2);
    let graph = random_regular(128, 8, &mut rng).unwrap();

    // Walk estimators.
    let hit = estimators::hitting_time(&graph, 0, 64, WalkConfig::simple(), 20, 100_000, &mut rng);
    assert!(hit.mean > 0.0);
    let cover =
        estimators::multi_cover_time(&graph, 128, WalkConfig::simple(), 5, 100_000, &mut rng);
    assert!(cover.mean > 0.0);

    // A single walk stays on the graph.
    let mut walk = RandomWalk::new(0, WalkConfig::lazy());
    let trajectory = walk.trajectory(&graph, 50, &mut rng);
    for pair in trajectory.windows(2) {
        assert!(pair[0] == pair[1] || graph.has_edge(pair[0], pair[1]));
    }

    // Instrumentation.
    let trace = CCounterTrace::run(&graph, 0, &AgentConfig::default(), 100_000, &mut rng);
    assert!(trace.completed);
    let coupled = CoupledRun::run(&graph, 0, &AgentConfig::default(), 100_000, 99);
    assert!(coupled.completed);
    assert!(coupled.lemma13_holds());

    // Analysis over simulated times.
    let times: Vec<u64> = (0..6)
        .map(|seed| {
            simulate(
                &graph,
                0,
                &SimulationSpec::new(ProtocolKind::PushPull).with_seed(seed),
            )
            .rounds
        })
        .collect();
    let summary = Summary::of_u64(&times);
    assert!(summary.mean >= summary.min && summary.mean <= summary.max);

    // Degree stats and diameter as used in experiment reporting.
    let stats = DegreeStats::of(&graph);
    assert!(stats.is_regular());
    assert!(diameter_exact(&graph).unwrap() >= 2);

    // Tables render.
    let mut table = Table::new("compose", &["metric", "value"]);
    table.push_row(&["mean push-pull time", &format!("{:.1}", summary.mean)]);
    assert!(table.to_markdown().contains("mean push-pull time"));
}

/// Placements behave as documented on non-regular graphs.
#[test]
fn placements_differ_on_non_regular_graphs() {
    let graph = star(99).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let stationary = Placement::Stationary.sample(&graph, 10_000, &mut rng);
    let uniform = Placement::UniformRandom.sample(&graph, 10_000, &mut rng);
    let frac_center = |positions: &[usize]| {
        positions.iter().filter(|&&v| v == 0).count() as f64 / positions.len() as f64
    };
    assert!(frac_center(&stationary) > 0.4);
    assert!(frac_center(&uniform) < 0.1);
}

/// The experiment registry is runnable end-to-end at smoke scale.
#[test]
fn experiment_registry_smoke() {
    let ids = all_experiment_ids();
    assert!(ids.len() >= 11);
    // Run one representative experiment through the public API.
    let report = run_experiment("fig1b-double-star", &ExperimentConfig::smoke()).unwrap();
    assert!(report.to_markdown().contains("Lemma 3"));
    assert!(run_experiment("does-not-exist", &ExperimentConfig::smoke()).is_none());
}
