//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace annotates its data types with serde derives so that a real
//! serde can be dropped in when a crates registry is available; in this
//! vendored build the derives expand to nothing (no serialization code is
//! generated and nothing in the workspace calls it).

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
