//! Vendored mini benchmark harness with a criterion-compatible API.
//!
//! Implements the subset of criterion used by `rumor-bench`:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Criterion::bench_function`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Each benchmark warms up for `warm_up_time`, then runs timed iterations
//! until either `sample_size` iterations or `measurement_time` have elapsed,
//! and prints min/mean per-iteration wall-clock times. There is no statistical
//! analysis, plotting, or baseline storage — this is a timing loop with the
//! right shape, sufficient for regression eyeballing and CI smoke runs.
//!
//! Environment knobs:
//! * `RUMOR_BENCH_FAST=1` caps every measurement at one sample (CI smoke).

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing each call.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warm-up: run untimed until the warm-up window elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        // Measurement: stop at sample_size iterations or the time budget,
        // whichever comes first, but always record at least one sample.
        let budget_start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if self.samples.len() >= self.sample_size
                || budget_start.elapsed() >= self.measurement_time
            {
                break;
            }
        }
    }
}

fn fast_mode() -> bool {
    std::env::var("RUMOR_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: F,
) {
    let (sample_size, warm_up_time, measurement_time) = if fast_mode() {
        (1, Duration::ZERO, Duration::ZERO)
    } else {
        (sample_size, warm_up_time, measurement_time)
    };
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        warm_up_time,
        measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let n = bencher.samples.len() as u32;
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!("{label:<50} mean {mean:>12.3?}  min {min:>12.3?}  ({n} samples)");
}

/// Group of related benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the untimed warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the timed measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets measurement throughput hint (accepted and ignored).
    pub fn throughput(&mut self, _elements: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        run_one(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().name);
        run_one(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b),
        );
        self
    }

    /// Finishes the group (prints a trailing newline for readability).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Throughput hint (accepted and ignored by this harness).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Conversion into [`BenchmarkId`] for `bench_function`.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Accepts command-line configuration (ignored by this harness).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            _criterion: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(
            name,
            self.default_sample_size,
            Duration::from_millis(300),
            Duration::from_secs(2),
            |b| f(b),
        );
        self
    }

    /// Final reporting hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_records_samples() {
        std::env::set_var("RUMOR_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0u32;
        group
            .sample_size(3)
            .bench_with_input(BenchmarkId::new("inc", 1), &1u32, |b, &x| {
                b.iter(|| {
                    runs += x;
                    runs
                })
            });
        group.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("push", 100).name, "push/100");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }
}
