//! Vendored mini property-testing harness with a proptest-compatible API.
//!
//! Implements the subset of proptest used by this workspace: the
//! [`proptest!`] macro over functions whose arguments are drawn from range
//! and collection strategies, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! and [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * No shrinking — a failing case reports its case index and the assertion
//!   message, nothing more.
//! * Deterministic: each test's RNG is seeded from a hash of its module path
//!   and name, so failures reproduce exactly across runs and machines.
//! * The default case count is 64 (real proptest uses 256); override per
//!   block with `#![proptest_config(ProptestConfig::with_cases(n))]`.

#![deny(missing_docs)]

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-block configuration (case count only in this harness).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Creates the deterministic RNG for one property test, seeded from a hash
/// of the test's fully qualified name.
pub fn test_rng(qualified_name: &str) -> SmallRng {
    // FNV-1a over the name: stable across runs, platforms, and compilers.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in qualified_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

/// A source of random values for one test argument.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::*;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s with target sizes drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `HashSet` of values from `element`; up to the drawn size (duplicate
    /// draws shrink the set, as with real proptest's sparse domains).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut set = HashSet::with_capacity(target);
            for _ in 0..target {
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property test; on failure the current case
/// is reported with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current case (counts as a pass) when the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Defines property tests. See the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands each test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::Strategy::sample(&($strat), &mut __rng);
                )+
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2i64..2, z in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..2).contains(&y));
            prop_assert!((0.5..1.5).contains(&z));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn collections_have_requested_sizes(
            v in collection::vec(0u32..100, 2..5),
            s in collection::hash_set((0usize..4, 0usize..4), 0..10),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(s.len() < 10);
        }
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = super::test_rng("x::y");
        let mut b = super::test_rng("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::test_rng("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
