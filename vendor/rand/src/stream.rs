//! Counter-based RNG streams for deterministic intra-run parallelism.
//!
//! The sequential engines in this workspace pin their determinism contract to
//! the *order* in which one generator is consumed: every protocol draws in
//! ascending entity order, so a fixed seed reproduces a trajectory exactly —
//! but only as long as a single thread performs the scan. Sharding a round
//! across threads breaks that contract, because the draw a vertex or agent
//! receives would depend on how many entities other workers processed first.
//!
//! This module removes the scan order from the contract entirely. A draw is a
//! pure function of **identity**, not of position in a shared stream:
//!
//! ```text
//! value = block(key(seed, round), counter(entity_id, draw_block))
//! ```
//!
//! * [`StreamKey`] — per-simulation key material derived from the seed;
//! * [`StreamKey::round_key`] — a per-round key (distinct rounds use distinct
//!   keys, so streams never collide across rounds);
//! * [`RoundKey::stream`] — a [`StreamRng`] for one entity (vertex or agent)
//!   in that round. Creating a stream costs three word stores; no block is
//!   computed until the first draw.
//!
//! The block function is **Philox2x64** (Salmon et al., *Parallel Random
//! Numbers: As Easy as 1, 2, 3*, SC'11): a 128-bit bijection per key built
//! from widening 64×64→128 multiplies. Distinct counters therefore map to
//! distinct 128-bit outputs under a fixed key, which is what makes the
//! non-overlap of entity streams a structural property rather than a
//! statistical hope. Two round counts are provided:
//!
//! * [`philox2x64`] — the 10-round Random123 default, kept as the reference
//!   (its zero-counter output matches the published Random123 known-answer
//!   vector);
//! * [`philox2x64_6`] — the 6-round variant the streams actually use.
//!   Salmon et al. report philox2x64 passes the full BigCrush battery from
//!   6 rounds up (Table 2 of the paper; the default 10 only adds safety
//!   margin), and the simulation hot paths draw one block per entity per
//!   round, so the 40% fewer multiplies are measurable end to end.
//!
//! Because consecutive agents' blocks share no state, a superscalar core
//! overlaps several Philox chains with the surrounding memory traffic; the
//! measured per-draw cost on the simulation hot paths is close to the
//! sequential engine's xoshiro256++ (see `BENCH_parallel.json`).
//!
//! The counter layout is `[entity_id, draw_block]`: 2⁶⁴ entities per round,
//! each with 2⁶⁴ blocks of two `u64`s — no stream can exhaust into a
//! neighbor's. Byte streams are not bit-compatible with crates.io Philox
//! implementations (key derivation differs); the known-answer tests below pin
//! this implementation's own outputs so accidental changes are caught.

use crate::RngCore;

/// First Philox2x64 round multiplier (Random123's `M2x64`).
const PHILOX_M: u64 = 0xD2B7_4407_B1CE_6E93;
/// Weyl key increment (golden-ratio constant, as in Random123).
const PHILOX_W: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a 64-bit bijective mixer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The Philox2x64 round loop shared by the two public variants.
#[inline(always)]
fn philox2x64_rounds<const ROUNDS: u32>(counter: [u64; 2], key: u64) -> [u64; 2] {
    let [mut x0, mut x1] = counter;
    let mut k = key;
    let mut round = 0;
    while round < ROUNDS {
        let product = u128::from(x0).wrapping_mul(u128::from(PHILOX_M));
        let hi = (product >> 64) as u64;
        let lo = product as u64;
        x0 = hi ^ k ^ x1;
        x1 = lo;
        k = k.wrapping_add(PHILOX_W);
        round += 1;
    }
    [x0, x1]
}

/// The Philox2x64-10 block function (the Random123 default round count):
/// encrypts the 128-bit `counter` under `key`.
///
/// A bijection of the counter space for every fixed key, so distinct
/// counters always produce distinct 128-bit blocks. Kept as the reference
/// variant — the known-answer tests match Random123's published vector for
/// the zero counter/key.
#[inline]
pub fn philox2x64(counter: [u64; 2], key: u64) -> [u64; 2] {
    philox2x64_rounds::<10>(counter, key)
}

/// The Philox2x64-6 block function: the lowest round count Salmon et al.
/// report as passing BigCrush, used by [`StreamRng`] and [`LaneRng`] for
/// hot-path throughput (same bijection-per-key structure as
/// [`philox2x64`], 40% fewer multiplies).
#[inline]
pub fn philox2x64_6(counter: [u64; 2], key: u64) -> [u64; 2] {
    philox2x64_rounds::<6>(counter, key)
}

/// Per-simulation key material for counter-based streams, derived from a
/// 64-bit seed.
///
/// # Examples
///
/// ```
/// use rand::stream::StreamKey;
/// use rand::{Rng, RngCore};
///
/// let key = StreamKey::from_seed(42);
/// let round = key.round_key(3);
/// // Two handles for the same entity replay the same draws…
/// let mut a = round.stream(7);
/// let mut b = round.stream(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// // …and a stream supports the full `Rng` surface.
/// let x = round.stream(8).gen_range(0usize..10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamKey {
    k: u64,
}

impl StreamKey {
    /// Derives the key material from a seed. Nearby seeds give unrelated
    /// keys (SplitMix64 mixing, as in `seed_from_u64`).
    pub fn from_seed(seed: u64) -> Self {
        StreamKey {
            k: mix64(seed.wrapping_add(PHILOX_W)),
        }
    }

    /// The key for one synchronous round. For a fixed seed the map
    /// `round → key` is a bijection (multiply by an odd constant, xor, then
    /// a bijective mix), so no two rounds of the same simulation ever share
    /// a key — entity streams cannot collide across rounds.
    #[inline]
    pub fn round_key(&self, round: u64) -> RoundKey {
        RoundKey {
            k: mix64(self.k ^ round.wrapping_mul(0xA24B_AED4_963E_E407)),
        }
    }
}

/// The key of one round; hands out per-entity [`StreamRng`] handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundKey {
    k: u64,
}

impl RoundKey {
    /// The draw stream of `entity` (a vertex or agent id) in this round.
    /// Cheap: no block is computed until the first draw.
    #[inline]
    pub fn stream(&self, entity: u64) -> StreamRng {
        StreamRng {
            key: self.k,
            entity,
            block: 0,
            buf: [0; 2],
            remaining: 0,
        }
    }

    /// The first Philox block of `entity`'s stream (its draws 0 and 1),
    /// without constructing a handle.
    ///
    /// Hot loops batch-compute this for several entities back to back — the
    /// block chains are independent, so the multipliers pipeline across
    /// entities instead of serializing one block chain at a time — and
    /// then consume the words through [`RoundKey::stream_primed`].
    #[inline]
    pub fn first_block(&self, entity: u64) -> [u64; 2] {
        philox2x64_6([entity, 0], self.k)
    }

    /// The stream of `entity` with its first block already computed:
    /// `stream_primed(e, first_block(e))` draws exactly the same sequence
    /// as `stream(e)`.
    #[inline]
    pub fn stream_primed(&self, entity: u64, first_block: [u64; 2]) -> StreamRng {
        StreamRng {
            key: self.k,
            entity,
            block: 1,
            buf: first_block,
            remaining: 2,
        }
    }

    /// The two **lane streams** of `pair`, with the pair's first block
    /// already computed (pass [`RoundKey::first_block`]`(pair)`).
    ///
    /// A lane stream is the dense-entity-space variant of [`StreamRng`]: the
    /// `i`-th draw of lane `l ∈ {0, 1}` is word `l` of Philox block
    /// `(pair, i)` — still a pure function of `(key, pair, lane, i)`, i.e.
    /// of the *agent's* identity when agent `2·pair + l` owns lane `l`. The
    /// two lanes share blocks, so in the common one-draw-per-round case a
    /// pair of agents costs **one** block function instead of two (each
    /// block yields two words; per-entity streams would discard one). The
    /// engines assign lanes by agent-id parity and shard on 64-aligned
    /// boundaries, so a pair is never split across workers and
    /// thread-invariance is preserved.
    ///
    /// Lane draws never collide with each other (distinct words of each
    /// block) nor with other pairs or rounds (distinct counters / keys).
    #[inline]
    pub fn lane_streams(&self, pair: u64, first_block: [u64; 2]) -> [LaneRng; 2] {
        [
            self.lane_stream(pair, 0, first_block),
            self.lane_stream(pair, 1, first_block),
        ]
    }

    /// One lane of [`RoundKey::lane_streams`] (`lane` must be 0 or 1).
    #[inline]
    pub fn lane_stream(&self, pair: u64, lane: u8, first_block: [u64; 2]) -> LaneRng {
        debug_assert!(lane < 2);
        LaneRng {
            key: self.k,
            pair,
            lane,
            draw: 0,
            first: first_block,
        }
    }
}

/// A counter-based generator: the draw sequence of one entity in one round.
///
/// The `i`-th `u64` drawn from this stream is a pure function of
/// `(seed, round, entity, i)` — independent of every other entity's draws,
/// of thread count, and of scan order. Implements [`RngCore`], so all of
/// [`Rng`](crate::Rng)'s derived samplers (`gen_range`, `gen_bool`, …)
/// consume it exactly as they would any other generator.
#[derive(Debug, Clone)]
pub struct StreamRng {
    key: u64,
    entity: u64,
    /// Next block index to encrypt.
    block: u64,
    /// Outputs of the most recent block, consumed low index first.
    buf: [u64; 2],
    /// Unread words left in `buf`.
    remaining: u8,
}

impl RngCore for StreamRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.remaining == 0 {
            self.buf = philox2x64_6([self.entity, self.block], self.key);
            self.block = self.block.wrapping_add(1);
            self.remaining = 2;
        }
        let word = self.buf[2 - self.remaining as usize];
        self.remaining -= 1;
        word
    }
}

/// One lane of a pair's shared block sequence (see
/// [`RoundKey::lane_streams`]): draw `i` of lane `l` is word `l` of block
/// `(pair, i)`. Pure per-lane identity, like [`StreamRng`]; the pair's
/// first block is shared (computed once for both lanes), and only draws
/// past the first — rejection continuations, probability ≈ `bound/2⁶⁴` —
/// compute further blocks.
#[derive(Debug, Clone)]
pub struct LaneRng {
    key: u64,
    pair: u64,
    lane: u8,
    /// Index of the next draw (= the block index it reads).
    draw: u64,
    /// The precomputed block `(pair, 0)`.
    first: [u64; 2],
}

impl RngCore for LaneRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let word = if self.draw == 0 {
            self.first[self.lane as usize]
        } else {
            philox2x64_6([self.pair, self.draw], self.key)[self.lane as usize]
        };
        self.draw += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    /// Known-answer vectors for the block function, pinned from this
    /// implementation (the byte stream is a determinism contract: the
    /// equivalence tests of the sharded engines rely on it never changing
    /// silently).
    #[test]
    fn philox_block_known_answers() {
        assert_eq!(
            philox2x64([0, 0], 0),
            [0xca00_a045_9843_d731, 0x66c2_4222_c9a8_45b5]
        );
        assert_eq!(
            philox2x64([u64::MAX, u64::MAX], u64::MAX),
            [0x65b0_21d6_0cd8_310f, 0x4d02_f322_2f86_df20]
        );
        assert_eq!(
            philox2x64(
                [0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210],
                0xdead_beef_cafe_babe
            ),
            [0xc6c7_95da_2275_f549, 0x433e_d019_b88b_38fe]
        );
        // The 6-round stream variant, pinned from this implementation.
        assert_eq!(
            philox2x64_6([0, 0], 0),
            [0x7ee2_7967_82e4_de12, 0x6921_e1f4_eea1_2943]
        );
        assert_eq!(
            philox2x64_6([u64::MAX, u64::MAX], u64::MAX),
            [0x62cb_7fa1_1e10_1713, 0x4074_1ef3_d337_be5d]
        );
        assert_eq!(
            philox2x64_6(
                [0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210],
                0xdead_beef_cafe_babe
            ),
            [0xefa8_5c3d_a711_053d, 0xfdc9_2155_83bd_608b]
        );
    }

    /// Known answers one level up: the exact words a stream hands out for a
    /// fixed (seed, round, entity) triple.
    #[test]
    fn stream_known_answers() {
        let mut s = StreamKey::from_seed(0).round_key(0).stream(0);
        assert_eq!(s.next_u64(), 0x00dd_a18b_2180_c680);
        assert_eq!(s.next_u64(), 0x09e4_7a32_abcd_0f6f);
        assert_eq!(s.next_u64(), 0x075f_268e_ad96_99a8);
        let mut s = StreamKey::from_seed(7).round_key(12).stream(99);
        assert_eq!(s.next_u64(), 0xfefe_b206_d117_e244);
        // Lane streams: draw i of lane l is word l of block (pair, i).
        let rk = StreamKey::from_seed(3).round_key(5);
        let [mut a, mut b] = rk.lane_streams(20, rk.first_block(20));
        assert_eq!(a.next_u64(), 0x2214_98b4_311c_f076);
        assert_eq!(a.next_u64(), 0xa5d4_de77_fb86_8b9b);
        assert_eq!(b.next_u64(), 0xd45e_6dc1_c822_9d5f);
        assert_eq!(b.next_u64(), 0x7985_b524_6a29_aae7);
    }

    #[test]
    fn block_is_injective_on_a_sample() {
        // The bijection argument guarantees this; spot-check it anyway over a
        // grid of counters under one key.
        let mut seen = std::collections::HashSet::new();
        for c0 in 0..64u64 {
            for c1 in 0..64u64 {
                assert!(
                    seen.insert(philox2x64([c0, c1], 12345)),
                    "collision at ({c0}, {c1})"
                );
            }
        }
    }

    #[test]
    fn streams_do_not_overlap_across_rounds_and_entities() {
        // Draw a prefix from every stream in a (round × entity) grid and
        // check all values are distinct — with 64-bit outputs and ~2^11
        // draws, a birthday collision has probability ~2^-42, so any
        // collision indicates overlapping streams.
        let key = StreamKey::from_seed(3);
        let mut seen = std::collections::HashSet::new();
        for round in 0..16u64 {
            let rk = key.round_key(round);
            for entity in 0..16u64 {
                let mut s = rk.stream(entity);
                for draw in 0..8 {
                    assert!(
                        seen.insert(s.next_u64()),
                        "overlap at round {round}, entity {entity}, draw {draw}"
                    );
                }
            }
        }
    }

    #[test]
    fn same_identity_replays_identically() {
        let key = StreamKey::from_seed(11);
        for round in [0u64, 1, 77] {
            for entity in [0u64, 5, 1 << 40] {
                let mut a = key.round_key(round).stream(entity);
                let mut b = key.round_key(round).stream(entity);
                for _ in 0..20 {
                    assert_eq!(a.next_u64(), b.next_u64());
                }
            }
        }
    }

    #[test]
    fn primed_streams_replay_plain_streams() {
        let rk = StreamKey::from_seed(21).round_key(9);
        for entity in [0u64, 3, 64, 1 << 50] {
            let mut plain = rk.stream(entity);
            let mut primed = rk.stream_primed(entity, rk.first_block(entity));
            for _ in 0..11 {
                assert_eq!(plain.next_u64(), primed.next_u64());
            }
        }
    }

    #[test]
    fn lane_draws_are_pure_block_words() {
        // Draw i of lane l must be word l of block (pair, i), regardless of
        // how the two lanes' draws interleave.
        let rk = StreamKey::from_seed(13).round_key(2);
        for pair in [0u64, 7, 1 << 33] {
            let [mut a, mut b] = rk.lane_streams(pair, rk.first_block(pair));
            for i in 0..6u64 {
                // Interleave unevenly: lane a draws every step, lane b only
                // on even steps.
                let expect_a = philox2x64_6([pair, i], raw_key(&rk))[0];
                assert_eq!(a.next_u64(), expect_a);
                if i % 2 == 0 {
                    let expect_b = philox2x64_6([pair, i / 2], raw_key(&rk))[1];
                    assert_eq!(b.next_u64(), expect_b);
                }
            }
        }
    }

    /// Test-only access to a round key's raw key word (the field is
    /// crate-visible), so expected block words can be recomputed directly.
    fn raw_key(rk: &RoundKey) -> u64 {
        rk.k
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = StreamKey::from_seed(1).round_key(0).stream(0);
        let mut b = StreamKey::from_seed(2).round_key(0).stream(0);
        assert_ne!((a.next_u64(), a.next_u64()), (b.next_u64(), b.next_u64()));
    }

    #[test]
    fn stream_supports_rng_surface() {
        let mut s = StreamKey::from_seed(5).round_key(1).stream(2);
        let x = s.gen_range(10usize..20);
        assert!((10..20).contains(&x));
        let _ = s.gen_bool(0.5);
        let f = s.gen_range(0.0f64..1.0);
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn uniformity_smoke() {
        // Streams are consumed one-per-entity in the engines; check the
        // *cross-entity* distribution (first draw of each entity), which is
        // the one the simulations actually sample from.
        let rk = StreamKey::from_seed(9).round_key(4);
        let mut counts = [0usize; 8];
        let n = 80_000u64;
        for entity in 0..n {
            counts[rk.stream(entity).gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.125).abs() < 0.01, "bucket fraction {frac}");
        }
    }
}
