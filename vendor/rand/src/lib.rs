//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the `rand` surface the simulator needs is implemented here
//! from scratch:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] — the trait vocabulary, with the
//!   same blanket-impl structure as upstream (`Rng` is implemented for every
//!   `RngCore`, including unsized `dyn RngCore`).
//! * [`rngs::StdRng`] — ChaCha12, matching upstream's choice of a
//!   cryptographically strong but comparatively slow default.
//! * [`rngs::SmallRng`] — xoshiro256++, the small fast generator the
//!   simulation engine uses on its hot path.
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//! * [`stream`] — counter-based streams (Philox2x64) whose draws are pure
//!   functions of `(seed, round, entity, draw_index)`; the substrate of the
//!   workspace's thread-invariant sharded engines (not part of upstream
//!   `rand`'s API).
//!
//! Determinism: all generators here are pure functions of their seed, so any
//! simulation seeded through [`SeedableRng::seed_from_u64`] is exactly
//! reproducible. The byte streams are **not** bit-compatible with crates.io
//! `rand`; only the API is.

#![deny(missing_docs)]

pub mod stream;

use core::ops::Range;

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed (expanded
    /// internally with SplitMix64, so nearby seeds give unrelated streams).
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience methods layered on top of [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        // 53 random bits give a uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a `Range<Self>`.
pub trait SampleRange: Sized {
    /// Samples uniformly from `range` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Uniform `u64` in `[0, bound)` via Lemire's widening-multiply method with
/// rejection (unbiased).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = (rng.next_u64() as u128) * (bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        // Threshold = 2^64 mod bound; values below it would be biased.
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let width = (range.end as u64).wrapping_sub(range.start as u64);
                range.start.wrapping_add(bounded_u64(rng, width) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let width = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                range.start.wrapping_add(bounded_u64(rng, width) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleRange for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let unit = ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32);
        range.start + unit * (range.end - range.start)
    }
}

/// SplitMix64: seed expander used by [`SeedableRng::seed_from_u64`].
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator (`rand`'s `SmallRng` role).
    ///
    /// ~1 ns per `u64` on modern hardware, 256-bit state, passes BigCrush.
    /// Not cryptographically secure; ideal for Monte-Carlo simulation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state is a fixed point; SplitMix64 cannot produce
            // four zero outputs in a row, but guard anyway.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The raw 256-bit xoshiro256++ state, for checkpointing a generator
        /// mid-stream. Feeding the result to [`SmallRng::from_state`] yields a
        /// generator that continues the exact same output sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`SmallRng::state`].
        ///
        /// The all-zero state is a fixed point of xoshiro256++ and is never
        /// produced by [`SeedableRng::seed_from_u64`] or by stepping a valid
        /// generator; it is replaced by the same nonzero word `seed_from_u64`
        /// guards with, so a corrupted checkpoint cannot wedge the stream.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// ChaCha12 — the strong-but-slower generator (`rand`'s `StdRng` role).
    ///
    /// Kept stream-for-stream deterministic per seed. The simulation engine
    /// deliberately does *not* use this on its hot path any more; it remains
    /// the default for code that asks for `StdRng` explicitly (tests, doc
    /// examples, graph generators at construction time).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        /// 32-byte key expanded from the seed.
        key: [u32; 8],
        /// 64-bit block counter.
        counter: u64,
        /// Buffered block output.
        buffer: [u32; 16],
        /// Next unread word in `buffer` (16 = exhausted).
        index: usize,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut key = [0u32; 8];
            for pair in key.chunks_exact_mut(2) {
                let w = splitmix64(&mut sm);
                pair[0] = w as u32;
                pair[1] = (w >> 32) as u32;
            }
            StdRng {
                key,
                counter: 0,
                buffer: [0; 16],
                index: 16,
            }
        }
    }

    impl StdRng {
        #[inline]
        fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(16);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(12);
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(8);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(7);
        }

        fn refill(&mut self) {
            const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
            let mut state = [0u32; 16];
            state[..4].copy_from_slice(&SIGMA);
            state[4..12].copy_from_slice(&self.key);
            state[12] = self.counter as u32;
            state[13] = (self.counter >> 32) as u32;
            // state[14], state[15]: zero nonce.
            let input = state;
            for _ in 0..6 {
                // Column rounds.
                Self::quarter_round(&mut state, 0, 4, 8, 12);
                Self::quarter_round(&mut state, 1, 5, 9, 13);
                Self::quarter_round(&mut state, 2, 6, 10, 14);
                Self::quarter_round(&mut state, 3, 7, 11, 15);
                // Diagonal rounds.
                Self::quarter_round(&mut state, 0, 5, 10, 15);
                Self::quarter_round(&mut state, 1, 6, 11, 12);
                Self::quarter_round(&mut state, 2, 7, 8, 13);
                Self::quarter_round(&mut state, 3, 4, 9, 14);
            }
            for (out, (s, i)) in self.buffer.iter_mut().zip(state.iter().zip(input.iter())) {
                *out = s.wrapping_add(*i);
            }
            self.counter = self.counter.wrapping_add(1);
            self.index = 0;
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let word = self.buffer[self.index];
            self.index += 1;
            word
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            lo | (hi << 32)
        }
    }
}

/// Sequence-related helpers (`rand::seq` subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());

        let mut d = StdRng::seed_from_u64(7);
        let mut e = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(d.next_u64(), e.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let x = rng.gen_range(0usize..10);
            counts[x] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 100_000.0;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y = rng.gen_range(3u64..4);
            assert_eq!(y, 3);
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "gen_bool(0.25) fraction {frac}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = SmallRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0usize..5);
        assert!(x < 5);
        let _ = dyn_rng.gen_bool(0.5);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
