//! Prints the stream module's known-answer vectors (dev helper; the pinned
//! values in `stream::tests` were generated with this).
use rand::stream::{philox2x64, philox2x64_6, StreamKey};
use rand::RngCore;

fn main() {
    let cases = [
        ([0u64, 0u64], 0u64),
        ([u64::MAX, u64::MAX], u64::MAX),
        (
            [0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210],
            0xdead_beef_cafe_babe,
        ),
    ];
    for (ctr, key) in cases {
        let r10 = philox2x64(ctr, key);
        let r6 = philox2x64_6(ctr, key);
        println!(
            "philox10 {ctr:x?} {key:#x} -> [{:#018x}, {:#018x}]",
            r10[0], r10[1]
        );
        println!(
            "philox6  {ctr:x?} {key:#x} -> [{:#018x}, {:#018x}]",
            r6[0], r6[1]
        );
    }
    let mut s = StreamKey::from_seed(0).round_key(0).stream(0);
    println!(
        "stream(0,0,0): {:#018x} {:#018x} {:#018x}",
        s.next_u64(),
        s.next_u64(),
        s.next_u64()
    );
    let mut s = StreamKey::from_seed(7).round_key(12).stream(99);
    println!("stream(7,12,99): {:#018x}", s.next_u64());
    let rk = StreamKey::from_seed(3).round_key(5);
    let [mut a, mut b] = rk.lane_streams(20, rk.first_block(20));
    println!(
        "lanes(3,5,pair20): a {:#018x} {:#018x} / b {:#018x} {:#018x}",
        a.next_u64(),
        a.next_u64(),
        b.next_u64(),
        b.next_u64()
    );
}
