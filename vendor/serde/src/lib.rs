//! Vendored serde facade.
//!
//! The build environment has no crates registry, so this crate supplies just
//! enough of serde's surface for the workspace to compile: the
//! [`Serialize`]/[`Deserialize`] trait *names* and derive macros that expand
//! to nothing. No serialization functionality is provided (nothing in the
//! workspace performs serialization at runtime); swapping in real serde later
//! requires no source changes outside the manifests.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in this facade).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in this facade).
pub trait Deserialize<'de>: Sized {}
