//! A tour of Figure 1: runs the paper's four protocols on each of the five
//! separation-example graphs and prints the mean broadcast times, reproducing
//! the qualitative content of Fig. 1(a)–(e).
//!
//! ```text
//! cargo run --release --example figure1_tour
//! ```

use rumor_analysis::{Summary, Table};
use rumor_core::{simulate, AgentConfig, ProtocolKind, SimulationSpec};
use rumor_graphs::generators::{
    double_star, star, CycleOfStarsOfCliques, HeavyBinaryTree, SiameseHeavyBinaryTree, STAR_CENTER,
};
use rumor_graphs::{Graph, GraphError, VertexId};

const TRIALS: u64 = 5;

fn mean_rounds(graph: &Graph, source: VertexId, kind: ProtocolKind, lazy: bool) -> f64 {
    let agents = if lazy {
        AgentConfig::default().lazy()
    } else {
        AgentConfig::default()
    };
    let times: Vec<u64> = (0..TRIALS)
        .map(|seed| {
            simulate(
                graph,
                source,
                &SimulationSpec::new(kind)
                    .with_seed(seed)
                    .with_agents(agents.clone()),
            )
            .rounds
        })
        .collect();
    Summary::of_u64(&times).mean
}

fn row(table: &mut Table, label: &str, graph: &Graph, source: VertexId, lazy: bool) {
    let cells = [
        label.to_string(),
        graph.num_vertices().to_string(),
        format!(
            "{:.1}",
            mean_rounds(graph, source, ProtocolKind::Push, lazy)
        ),
        format!(
            "{:.1}",
            mean_rounds(graph, source, ProtocolKind::PushPull, lazy)
        ),
        format!(
            "{:.1}",
            mean_rounds(graph, source, ProtocolKind::VisitExchange, lazy)
        ),
        format!(
            "{:.1}",
            mean_rounds(graph, source, ProtocolKind::MeetExchange, lazy)
        ),
    ];
    table.push_row(&cells);
}

fn main() -> Result<(), GraphError> {
    let mut table = Table::new(
        "Figure 1 tour: mean broadcast time over 5 trials",
        &[
            "graph",
            "n",
            "push",
            "push-pull",
            "visit-exchange",
            "meet-exchange",
        ],
    );

    // (a) Star: push is coupon-collector slow, everyone else is fast.
    let star_graph = star(400)?;
    row(&mut table, "(a) star", &star_graph, STAR_CENTER, true);

    // (b) Double star: push-pull also becomes slow; the agent protocols stay fast.
    let dstar = double_star(200)?;
    row(&mut table, "(b) double star", &dstar, 2, true);

    // (c) Heavy binary tree: visit-exchange is slow, push and (leaf-sourced)
    // meet-exchange are fast.
    let heavy = HeavyBinaryTree::new(8)?;
    let heavy_source = heavy.a_leaf();
    row(
        &mut table,
        "(c) heavy binary tree",
        heavy.graph(),
        heavy_source,
        false,
    );

    // (d) Siamese heavy trees: both agent protocols are slow.
    let siamese = SiameseHeavyBinaryTree::new(7)?;
    let siamese_source = siamese.a_leaf();
    row(
        &mut table,
        "(d) siamese heavy trees",
        siamese.graph(),
        siamese_source,
        false,
    );

    // (e) Cycle of stars of cliques: visit-exchange beats meet-exchange by a log factor.
    let cycle = CycleOfStarsOfCliques::new(8)?;
    let cycle_source = cycle.a_clique_source();
    row(
        &mut table,
        "(e) cycle of stars of cliques",
        cycle.graph(),
        cycle_source,
        false,
    );

    print!("{}", table.to_plain_text());
    println!(
        "\nEach row reproduces one panel of Figure 1: compare the columns to see which protocol\n\
         family wins on which topology (Lemmas 2, 3, 4, 8 and 9 of the paper)."
    );
    Ok(())
}
