//! Theorem 1 demo: on regular graphs with degree Ω(log n), `push` and
//! `visit-exchange` have the same asymptotic broadcast time.
//!
//! Sweeps random d-regular graphs (d ≈ 2·log2 n), prints the mean broadcast
//! times, the per-size ratio, and the fitted growth exponents of both
//! protocols, and finally verifies Lemma 13 on a coupled execution.
//!
//! ```text
//! cargo run --release --example regular_equivalence
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_analysis::{fit_power_law, Summary, Table};
use rumor_core::instrument::CoupledRun;
use rumor_core::{simulate, AgentConfig, ProtocolKind, SimulationSpec};
use rumor_graphs::generators::{logarithmic_degree, random_regular};
use rumor_graphs::GraphError;

const TRIALS: u64 = 8;

fn main() -> Result<(), GraphError> {
    let sizes = [256usize, 512, 1024, 2048];
    let mut rng = StdRng::seed_from_u64(7);

    let mut table = Table::new(
        "push vs visit-exchange on random d-regular graphs (d ≈ 2·log2 n)",
        &["n", "d", "mean T_push", "mean T_visitx", "ratio"],
    );
    let mut push_points = Vec::new();
    let mut visitx_points = Vec::new();
    for &n in &sizes {
        let d = logarithmic_degree(n, 2.0);
        let graph = random_regular(n, d, &mut rng)?;
        let run = |kind: ProtocolKind| -> f64 {
            let times: Vec<u64> = (0..TRIALS)
                .map(|seed| simulate(&graph, 0, &SimulationSpec::new(kind).with_seed(seed)).rounds)
                .collect();
            Summary::of_u64(&times).mean
        };
        let push = run(ProtocolKind::Push);
        let visitx = run(ProtocolKind::VisitExchange);
        push_points.push((n as f64, push));
        visitx_points.push((n as f64, visitx));
        table.push_row(&[
            n.to_string(),
            d.to_string(),
            format!("{push:.1}"),
            format!("{visitx:.1}"),
            format!("{:.2}", push / visitx),
        ]);
    }
    print!("{}", table.to_plain_text());

    let push_fit = fit_power_law(&push_points);
    let visitx_fit = fit_power_law(&visitx_points);
    println!(
        "\nEmpirical growth exponents: push {:.2}, visit-exchange {:.2} — both near zero\n\
         (logarithmic growth), and their ratio stays within a constant band, as Theorem 1 predicts.",
        push_fit.exponent, visitx_fit.exponent
    );

    // Lemma 13 on one coupled execution: τ_u ≤ C_u(t_u) for every vertex.
    let n = 1024;
    let d = logarithmic_degree(n, 2.0);
    let graph = random_regular(n, d, &mut rng)?;
    let report = CoupledRun::run(&graph, 0, &AgentConfig::default(), 1_000_000, 2024);
    println!(
        "\nCoupled execution on a random {d}-regular graph with n = {n}: T_push = {}, \
         T_visitx = {}, Lemma 13 violations = {} (must be 0).",
        report.push_time, report.visitx_time, report.lemma13_violations
    );
    Ok(())
}
