//! Quickstart: build a graph, run all of the paper's protocols once, and
//! print their broadcast times.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rumor_analysis::Table;
use rumor_core::{simulate, ProtocolKind, SimulationSpec};
use rumor_graphs::generators::double_star;
use rumor_graphs::GraphError;

fn main() -> Result<(), GraphError> {
    // The double star of Fig. 1(b): two hubs joined by one edge, 500 leaves each.
    let graph = double_star(500)?;
    let source = 2; // a leaf of the first star
    println!(
        "double star: {} vertices, {} edges, source = leaf {}",
        graph.num_vertices(),
        graph.num_edges(),
        source
    );

    let mut table = Table::new(
        "One run of each protocol (seed 42)",
        &["protocol", "rounds", "messages"],
    );
    for kind in ProtocolKind::ALL {
        // `adapted_to` switches meet-exchange to lazy walks here: the double
        // star is bipartite, and simple walks could be parity-trapped forever.
        let spec = SimulationSpec::new(kind).with_seed(42).adapted_to(&graph);
        let outcome = simulate(&graph, source, &spec);
        table.push_row(&[
            kind.name().to_string(),
            outcome.rounds.to_string(),
            outcome.total_messages.to_string(),
        ]);
    }
    print!("{}", table.to_plain_text());

    println!(
        "\nNote how push and push-pull need hundreds of rounds (the bridge edge is sampled with\n\
         probability O(1/n) per round) while the agent-based protocols finish in a few dozen —\n\
         that is Lemma 3 of the paper."
    );
    Ok(())
}
