//! Bandwidth-fairness demo (Section 1 of the paper): why the agent protocols
//! win on the double star.
//!
//! Runs `push-pull` and `visit-exchange` on the double star with per-edge
//! traffic recording and prints the dispersion of edge usage, plus the traffic
//! seen by the critical center–center bridge edge.
//!
//! ```text
//! cargo run --release --example bandwidth_fairness
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_analysis::Table;
use rumor_core::AgentConfig;
use rumor_core::{run_to_completion, Protocol, ProtocolOptions, PushPull, VisitExchange};
use rumor_graphs::generators::{double_star, DOUBLE_STAR_CENTER_A, DOUBLE_STAR_CENTER_B};
use rumor_graphs::GraphError;

fn main() -> Result<(), GraphError> {
    let leaves = 500;
    let graph = double_star(leaves)?;
    let rounds_horizon = 400;
    println!(
        "double star with {} vertices; comparing per-edge traffic over {} rounds\n",
        graph.num_vertices(),
        rounds_horizon
    );

    let mut table = Table::new(
        "Per-edge traffic (bridge = the center-center edge that gates the broadcast)",
        &[
            "protocol",
            "bridge uses/round",
            "mean edge uses/round",
            "max/mean",
            "coeff. of variation",
        ],
    );

    // push-pull: every vertex calls a random neighbor each round.
    let mut rng = StdRng::seed_from_u64(1);
    let mut push_pull = PushPull::new(&graph, 2, ProtocolOptions::with_edge_traffic());
    // Run for a fixed horizon (ignore completion) to measure steady-state usage.
    for _ in 0..rounds_horizon {
        push_pull.step(&mut rng);
    }
    let pp_traffic = push_pull.edge_traffic().expect("traffic requested");
    let pp_stats = pp_traffic.stats(&graph, rounds_horizon);
    table.push_row(&[
        "push-pull".to_string(),
        format!(
            "{:.4}",
            pp_traffic.count(DOUBLE_STAR_CENTER_A, DOUBLE_STAR_CENTER_B) as f64
                / rounds_horizon as f64
        ),
        format!("{:.4}", pp_stats.mean_per_round),
        format!("{:.1}", pp_stats.max_to_mean_ratio),
        format!("{:.2}", pp_stats.coefficient_of_variation),
    ]);

    // visit-exchange: stationary agents cross every edge at the same rate.
    let mut rng = StdRng::seed_from_u64(1);
    let mut visitx = VisitExchange::new(
        &graph,
        2,
        &AgentConfig::default().lazy(),
        ProtocolOptions::with_edge_traffic(),
        &mut rng,
    );
    for _ in 0..rounds_horizon {
        visitx.step(&mut rng);
    }
    let vx_traffic = visitx.edge_traffic().expect("traffic requested");
    let vx_stats = vx_traffic.stats(&graph, rounds_horizon);
    table.push_row(&[
        "visit-exchange".to_string(),
        format!(
            "{:.4}",
            vx_traffic.count(DOUBLE_STAR_CENTER_A, DOUBLE_STAR_CENTER_B) as f64
                / rounds_horizon as f64
        ),
        format!("{:.4}", vx_stats.mean_per_round),
        format!("{:.1}", vx_stats.max_to_mean_ratio),
        format!("{:.2}", vx_stats.coefficient_of_variation),
    ]);

    print!("{}", table.to_plain_text());

    // And the consequence: the actual broadcast times.
    let mut rng = StdRng::seed_from_u64(9);
    let mut pp = PushPull::new(&graph, 2, ProtocolOptions::none());
    let pp_outcome = run_to_completion(&mut pp, 10_000_000, &mut rng);
    let mut vx = VisitExchange::new(
        &graph,
        2,
        &AgentConfig::default().lazy(),
        ProtocolOptions::none(),
        &mut rng,
    );
    let vx_outcome = run_to_completion(&mut vx, 10_000_000, &mut rng);
    println!(
        "\nBroadcast times on this instance: push-pull {} rounds vs visit-exchange {} rounds.\n\
         The bridge edge is the bottleneck: push-pull crosses it only when a hub happens to\n\
         sample it (probability O(1/n) per round) while about one agent per round walks across,\n\
         which is exactly the paper's locally-fair-bandwidth explanation of Lemma 3.",
        pp_outcome.rounds, vx_outcome.rounds
    );
    Ok(())
}
