//! Protocol picker: given a topology and a size, measure every protocol and
//! recommend one.
//!
//! The paper's punchline is that no single dissemination protocol wins
//! everywhere — push-pull loses on hub-to-hub bridges (double star),
//! visit-exchange loses when the stationary distribution strands the agents
//! away from the source's side of the graph (heavy binary tree), and the
//! combination inherits the best of both. This example is the "downstream
//! user" view of that result: pick the topology that looks most like your
//! network, and the tool reports which protocol to deploy.
//!
//! ```text
//! cargo run --release --example protocol_picker -- <family> [size] [trials]
//!
//! families: star | double-star | heavy-tree | siamese | cycle-stars |
//!           regular | hypercube | complete | grid
//! ```
//!
//! For example `cargo run --release --example protocol_picker -- double-star 500`.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_analysis::{Summary, Table};
use rumor_core::{simulate, ProtocolKind, SimulationSpec};
use rumor_graphs::algorithms::{bipartition_sizes, diameter_lower_bound, DegreeStats};
use rumor_graphs::generators::{
    complete, double_star, grid, hypercube, logarithmic_degree, random_regular, star,
    CycleOfStarsOfCliques, HeavyBinaryTree, SiameseHeavyBinaryTree, STAR_CENTER,
};
use rumor_graphs::{Graph, VertexId};

/// The families the picker knows how to build, with a short description used
/// in the usage text.
const FAMILIES: &[(&str, &str)] = &[
    ("star", "one hub, `size` leaves (Fig. 1a)"),
    (
        "double-star",
        "two hubs joined by an edge, `size` leaves each (Fig. 1b)",
    ),
    (
        "heavy-tree",
        "binary tree of depth `size` with a clique on the leaves (Fig. 1c)",
    ),
    (
        "siamese",
        "two heavy binary trees of depth `size` sharing a root (Fig. 1d)",
    ),
    ("cycle-stars", "cycle of `size` stars of cliques (Fig. 1e)"),
    (
        "regular",
        "random d-regular graph on `size` vertices, d ≈ 2·log2 n (Theorem 1)",
    ),
    ("hypercube", "`size`-dimensional hypercube"),
    ("complete", "complete graph on `size` vertices"),
    ("grid", "`size` × `size` grid"),
];

fn usage() -> String {
    let mut text = String::from("usage: protocol_picker <family> [size] [trials]\n\nfamilies:\n");
    for (name, description) in FAMILIES {
        text.push_str(&format!("  {name:<12} {description}\n"));
    }
    text
}

/// Builds the requested graph and returns it with a sensible rumor source.
fn build(family: &str, size: usize) -> Result<(Graph, VertexId), String> {
    let err = |e: rumor_graphs::GraphError| format!("could not build {family}({size}): {e}");
    match family {
        "star" => Ok((star(size).map_err(err)?, STAR_CENTER)),
        "double-star" => Ok((double_star(size).map_err(err)?, 2)),
        "heavy-tree" => {
            let tree = HeavyBinaryTree::new(size as u32).map_err(err)?;
            let source = tree.a_leaf();
            Ok((tree.into_graph(), source))
        }
        "siamese" => {
            let tree = SiameseHeavyBinaryTree::new(size as u32).map_err(err)?;
            let source = tree.a_leaf();
            Ok((tree.into_graph(), source))
        }
        "cycle-stars" => {
            let g = CycleOfStarsOfCliques::new(size).map_err(err)?;
            let source = g.a_clique_source();
            Ok((g.into_graph(), source))
        }
        "regular" => {
            let d = logarithmic_degree(size, 2.0);
            let mut rng = StdRng::seed_from_u64(12345);
            Ok((random_regular(size, d, &mut rng).map_err(err)?, 0))
        }
        "hypercube" => Ok((hypercube(size as u32).map_err(err)?, 0)),
        "complete" => Ok((complete(size).map_err(err)?, 0)),
        "grid" => Ok((grid(size, size).map_err(err)?, 0)),
        other => Err(format!("unknown family {other:?}\n\n{}", usage())),
    }
}

/// Default size per family (chosen so the example finishes in seconds).
fn default_size(family: &str) -> usize {
    match family {
        "heavy-tree" | "siamese" => 8,
        "cycle-stars" => 8,
        "hypercube" => 10,
        "grid" => 24,
        _ => 400,
    }
}

fn describe(graph: &Graph) {
    let stats = DegreeStats::of(graph);
    println!(
        "graph: {} vertices, {} edges, degree min/mean/max = {}/{:.1}/{}{}",
        graph.num_vertices(),
        graph.num_edges(),
        stats.min,
        stats.mean,
        stats.max,
        if stats.is_regular() { " (regular)" } else { "" },
    );
    if let Some((left, right)) = bipartition_sizes(graph) {
        println!("bipartite ({left} + {right}): meet-exchange will use lazy walks");
    }
    if let Some(diam) = diameter_lower_bound(graph) {
        println!("diameter ≥ {diam}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let family = match args.first() {
        Some(f) => f.as_str(),
        None => {
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let size = match args.get(1).map(|s| s.parse::<usize>()) {
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            eprintln!("invalid size {:?}\n\n{}", args[1], usage());
            return ExitCode::FAILURE;
        }
        None => default_size(family),
    };
    let trials = match args.get(2).map(|s| s.parse::<u64>()) {
        Some(Ok(v)) if v > 0 => v,
        Some(_) => {
            eprintln!("invalid trial count {:?}\n\n{}", args[2], usage());
            return ExitCode::FAILURE;
        }
        None => 7,
    };

    let (graph, source) = match build(family, size) {
        Ok(pair) => pair,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    describe(&graph);

    let mut table = Table::new(
        &format!("Mean over {trials} trials, source = vertex {source}"),
        &["protocol", "mean rounds", "min", "max", "mean messages"],
    );
    let mut best: Option<(ProtocolKind, f64)> = None;
    for kind in ProtocolKind::ALL {
        let mut rounds = Vec::with_capacity(trials as usize);
        let mut messages = Vec::with_capacity(trials as usize);
        for seed in 0..trials {
            let spec = SimulationSpec::new(kind).with_seed(seed).adapted_to(&graph);
            let outcome = simulate(&graph, source, &spec);
            rounds.push(outcome.rounds);
            messages.push(outcome.total_messages);
        }
        let summary = Summary::of_u64(&rounds);
        let mean_messages = messages.iter().map(|&m| m as f64).sum::<f64>() / messages.len() as f64;
        table.push_row(&[
            kind.name().to_string(),
            format!("{:.1}", summary.mean),
            format!("{:.0}", summary.min),
            format!("{:.0}", summary.max),
            format!("{mean_messages:.0}"),
        ]);
        if best.is_none_or(|(_, b)| summary.mean < b) {
            best = Some((kind, summary.mean));
        }
    }
    print!("{}", table.to_plain_text());

    if let Some((kind, mean)) = best {
        println!(
            "\nrecommendation: {} (mean {:.1} rounds on this topology)",
            kind.name(),
            mean
        );
        println!(
            "caveat: the agent-based protocols additionally move {} agents every round; if raw\n\
             message count matters more than rounds, compare the last column too.",
            graph.num_vertices()
        );
    }
    ExitCode::SUCCESS
}
