//! Canonical little-endian CSR wire/disk encoding for [`Graph`].
//!
//! The encoding is the content-addressed interchange format of the serve
//! stack's remote topology upload: a digest over these bytes identifies a
//! graph, so the encoding must be **canonical** — two structurally equal
//! graphs always serialize to the same byte string. That falls out of the
//! CSR invariants [`Graph`] already maintains (sorted neighbor lists, dense
//! offsets) plus a fixed little-endian layout:
//!
//! ```text
//! magic    4 bytes   "RCSR"
//! version  u32 LE    1
//! n        u64 LE    number of vertices
//! m        u64 LE    number of undirected edges
//! offsets  (n+1) × u32 LE   offsets[0] = 0, offsets[n] = 2m
//! adjacency 2m × u32 LE     per-vertex slices sorted strictly ascending
//! ```
//!
//! [`decode_csr`] trusts nothing: it re-validates every structural invariant
//! (exact length, monotone offsets, sorted neighbor lists, vertex range, no
//! self-loops, symmetric edges) and returns a typed [`GraphError`] on any
//! violation, so a decoded [`Graph`] is as sound as a built one. Round-trip
//! is exact: `decode_csr(&encode_csr(&g))` reproduces `g`'s adjacency
//! structure, and `encode_csr(&decode_csr(bytes)?) == bytes` for any bytes
//! that decode at all.

use crate::error::{GraphError, Result};
use crate::graph::Graph;

/// Magic bytes opening every canonical CSR encoding.
pub const CSR_MAGIC: &[u8; 4] = b"RCSR";

/// Version of the encoding emitted by [`encode_csr`].
pub const CSR_VERSION: u32 = 1;

/// Fixed header size: magic + version + n + m.
pub const CSR_HEADER_BYTES: usize = 4 + 4 + 8 + 8;

/// Exact encoded size of a graph with `n` vertices and `m` undirected edges.
///
/// Useful for sizing upload transfers without materializing the encoding.
pub fn encoded_len(n: usize, m: usize) -> usize {
    CSR_HEADER_BYTES + 4 * (n + 1) + 8 * m
}

/// Serializes a graph into the canonical little-endian CSR encoding.
///
/// # Examples
///
/// ```
/// use rumor_graphs::{codec, Graph};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// let bytes = codec::encode_csr(&g);
/// let back = codec::decode_csr(&bytes)?;
/// assert_eq!(back.num_vertices(), 3);
/// assert_eq!(back.num_edges(), 2);
/// assert_eq!(codec::encode_csr(&back), bytes);
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
pub fn encode_csr(graph: &Graph) -> Vec<u8> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let mut out = Vec::with_capacity(encoded_len(n, m));
    out.extend_from_slice(CSR_MAGIC);
    out.extend_from_slice(&CSR_VERSION.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(m as u64).to_le_bytes());
    let mut offset: u32 = 0;
    out.extend_from_slice(&offset.to_le_bytes());
    for u in 0..n {
        offset += graph.degree(u) as u32;
        out.extend_from_slice(&offset.to_le_bytes());
    }
    for u in 0..n {
        for &v in graph.neighbors(u) {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

fn malformed(reason: impl Into<String>) -> GraphError {
    GraphError::InvalidEncoding {
        reason: reason.into(),
    }
}

/// Decodes and fully validates a canonical CSR encoding.
///
/// Every structural invariant is re-checked before a [`Graph`] is built:
/// exact byte length, monotone offsets ending at `2m`, neighbor lists sorted
/// strictly ascending (no duplicate edges), all endpoints in range, no
/// self-loops, and edge symmetry. Violations return the precise typed
/// [`GraphError`]; this function never panics on untrusted input.
pub fn decode_csr(bytes: &[u8]) -> Result<Graph> {
    if bytes.len() < CSR_HEADER_BYTES {
        return Err(malformed(format!(
            "{} bytes is shorter than the {CSR_HEADER_BYTES}-byte header",
            bytes.len()
        )));
    }
    if &bytes[0..4] != CSR_MAGIC {
        return Err(malformed("bad magic (expected \"RCSR\")"));
    }
    let version = read_u32(bytes, 4);
    if version != CSR_VERSION {
        return Err(malformed(format!(
            "unsupported version {version} (expected {CSR_VERSION})"
        )));
    }
    let n_raw = read_u64(bytes, 8);
    let m_raw = read_u64(bytes, 16);
    if n_raw > u32::MAX as u64 || m_raw > (u32::MAX / 2) as u64 {
        return Err(malformed(format!(
            "dimensions n={n_raw}, m={m_raw} exceed u32 CSR indexing"
        )));
    }
    let n = n_raw as usize;
    let m = m_raw as usize;
    let expected = encoded_len(n, m);
    if bytes.len() != expected {
        return Err(malformed(format!(
            "length {} does not match the declared n={n}, m={m} (expected {expected})",
            bytes.len()
        )));
    }

    let offsets_at = CSR_HEADER_BYTES;
    let adjacency_at = offsets_at + 4 * (n + 1);
    let total_degree = (2 * m) as u32;

    let mut offsets = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let value = read_u32(bytes, offsets_at + 4 * i);
        if let Some(&prev) = offsets.last() {
            if value < prev {
                return Err(malformed(format!(
                    "offsets decrease at vertex {i} ({value} < {prev})"
                )));
            }
        } else if value != 0 {
            return Err(malformed(format!("offsets[0] must be 0, got {value}")));
        }
        if value > total_degree {
            return Err(malformed(format!(
                "offset {value} at vertex {i} exceeds adjacency length {total_degree}"
            )));
        }
        offsets.push(value);
    }
    if offsets[n] != total_degree {
        return Err(malformed(format!(
            "offsets end at {} but adjacency holds {total_degree} entries",
            offsets[n]
        )));
    }

    let mut adjacency = Vec::with_capacity(2 * m);
    for i in 0..2 * m {
        adjacency.push(read_u32(bytes, adjacency_at + 4 * i));
    }

    for u in 0..n {
        let row = &adjacency[offsets[u] as usize..offsets[u + 1] as usize];
        let mut prev: Option<u32> = None;
        for &v in row {
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v as usize,
                    n,
                });
            }
            if v as usize == u {
                return Err(GraphError::SelfLoop { vertex: u });
            }
            if let Some(p) = prev {
                if v <= p {
                    return Err(GraphError::DuplicateEdge { u, v: v as usize });
                }
            }
            prev = Some(v);
        }
    }
    // Symmetry: every (u, v) must appear as (v, u). Rows are sorted, so a
    // binary search per half-edge keeps this O(m log Δ).
    for u in 0..n {
        for &v in &adjacency[offsets[u] as usize..offsets[u + 1] as usize] {
            let back = &adjacency[offsets[v as usize] as usize..offsets[v as usize + 1] as usize];
            if back.binary_search(&(u as u32)).is_err() {
                return Err(GraphError::GenerationFailed {
                    reason: format!("edge ({u}, {v}) is not symmetric"),
                });
            }
        }
    }

    let offsets: Vec<usize> = offsets.into_iter().map(|o| o as usize).collect();
    Ok(Graph::from_csr(offsets, adjacency, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Graph {
        let mut rng = StdRng::seed_from_u64(42);
        generators::connected_erdos_renyi(40, 0.2, &mut rng).expect("generate")
    }

    #[test]
    fn round_trip_preserves_structure_and_bytes() {
        for graph in [
            sample(),
            generators::complete(9).expect("complete"),
            generators::star(17).expect("star"),
            Graph::from_edges(5, &[]).expect("empty edge set"),
        ] {
            let bytes = encode_csr(&graph);
            assert_eq!(
                bytes.len(),
                encoded_len(graph.num_vertices(), graph.num_edges())
            );
            let back = decode_csr(&bytes).expect("decode");
            assert_eq!(back.num_vertices(), graph.num_vertices());
            assert_eq!(back.num_edges(), graph.num_edges());
            for u in 0..graph.num_vertices() {
                assert_eq!(back.neighbors(u), graph.neighbors(u));
            }
            assert!(back.validate().is_ok());
            assert_eq!(encode_csr(&back), bytes, "re-encode must be canonical");
        }
    }

    #[test]
    fn rejects_bad_magic_version_and_lengths() {
        let bytes = encode_csr(&sample());

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_csr(&bad_magic),
            Err(GraphError::InvalidEncoding { .. })
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 9;
        assert!(matches!(
            decode_csr(&bad_version),
            Err(GraphError::InvalidEncoding { .. })
        ));

        assert!(matches!(
            decode_csr(&bytes[..bytes.len() - 1]),
            Err(GraphError::InvalidEncoding { .. })
        ));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            decode_csr(&trailing),
            Err(GraphError::InvalidEncoding { .. })
        ));
        assert!(matches!(
            decode_csr(&bytes[..CSR_HEADER_BYTES - 2]),
            Err(GraphError::InvalidEncoding { .. })
        ));
    }

    #[test]
    fn rejects_structural_violations() {
        // Hand-build a 3-vertex path 0-1-2 and then corrupt it in typed ways.
        let graph = Graph::from_edges(3, &[(0, 1), (1, 2)]).expect("path");
        let clean = encode_csr(&graph);
        let adjacency_at = CSR_HEADER_BYTES + 4 * 4;

        // Self-loop: vertex 0's single neighbor becomes 0.
        let mut looped = clean.clone();
        looped[adjacency_at..adjacency_at + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_csr(&looped),
            Err(GraphError::SelfLoop { vertex: 0 })
        ));

        // Out of range: vertex 0's neighbor becomes 7.
        let mut ranged = clean.clone();
        ranged[adjacency_at..adjacency_at + 4].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            decode_csr(&ranged),
            Err(GraphError::VertexOutOfRange { vertex: 7, n: 3 })
        ));

        // Asymmetry: vertex 0 now points at 2, but 2 still points only at 1.
        let mut asymmetric = clean.clone();
        asymmetric[adjacency_at..adjacency_at + 4].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            decode_csr(&asymmetric),
            Err(GraphError::GenerationFailed { .. })
        ));

        // Unsorted row: vertex 1's neighbors (1, 2 at rows 1..3) become (2, 0).
        let mut unsorted = clean.clone();
        unsorted[adjacency_at + 4..adjacency_at + 8].copy_from_slice(&2u32.to_le_bytes());
        unsorted[adjacency_at + 8..adjacency_at + 12].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_csr(&unsorted),
            Err(GraphError::DuplicateEdge { .. })
        ));

        // Decreasing offsets.
        let mut offsets_bad = clean.clone();
        let offsets_at = CSR_HEADER_BYTES;
        offsets_bad[offsets_at + 4..offsets_at + 8].copy_from_slice(&3u32.to_le_bytes());
        offsets_bad[offsets_at + 8..offsets_at + 12].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            decode_csr(&offsets_bad),
            Err(GraphError::InvalidEncoding { .. })
        ));
    }

    #[test]
    fn decode_never_panics_on_noise() {
        let mut rng_state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_state >> 33) as u8
        };
        for len in [0usize, 3, CSR_HEADER_BYTES, 64, 257, 4096] {
            let noise: Vec<u8> = (0..len).map(|_| next()).collect();
            let _ = decode_csr(&noise);
            let mut framed = encode_csr(&sample());
            for byte in framed.iter_mut().skip(CSR_HEADER_BYTES).take(len) {
                *byte = next();
            }
            let _ = decode_csr(&framed);
        }
    }
}
