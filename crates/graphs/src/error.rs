//! Error types for graph construction and generation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or generating graphs.
///
/// # Examples
///
/// ```
/// use rumor_graphs::{GraphBuilder, GraphError};
///
/// let mut b = GraphBuilder::new(2);
/// let err = b.add_edge(0, 5).unwrap_err();
/// assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An endpoint of an edge referred to a vertex index `vertex >= n`.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// The number of vertices in the graph under construction.
        n: usize,
    },
    /// A self-loop `(u, u)` was added; the protocols in this crate family are
    /// defined on simple graphs.
    SelfLoop {
        /// The vertex with the attempted self-loop.
        vertex: usize,
    },
    /// The same undirected edge was added twice.
    DuplicateEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A generator was asked for a graph with invalid parameters
    /// (e.g. a `d`-regular graph with `n * d` odd, or `d >= n`).
    InvalidParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A randomized generator (e.g. the configuration model) failed to produce
    /// a simple connected graph within its retry budget.
    GenerationFailed {
        /// Human-readable description of what was being generated.
        reason: String,
    },
    /// A serialized graph (the canonical CSR encoding of [`crate::codec`])
    /// could not be decoded: bad magic, truncated or trailing bytes,
    /// inconsistent offsets, or an unsupported version.
    InvalidEncoding {
        /// Human-readable description of the malformation.
        reason: String,
    },
    /// A requested graph exceeds a hard addressing limit (`u32` vertex ids,
    /// or a stub/edge total beyond `u32` slot addressing). Unlike
    /// [`GraphError::InvalidParameters`] — which flags *malformed* inputs —
    /// the parameters here are well-formed; the instance is simply bigger
    /// than the backend can represent without silent wrap-around.
    TooLarge {
        /// The quantity that overflows (e.g. `"expected stub total"`).
        what: String,
        /// The offending value (for expectations, rounded down).
        value: u64,
        /// The hard limit it exceeds.
        limit: u64,
    },
    /// An operation that requires a connected graph was given a disconnected one.
    Disconnected,
    /// An operation that requires a non-empty graph was given an empty one.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex index {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop at vertex {vertex} is not allowed")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate undirected edge ({u}, {v})")
            }
            GraphError::InvalidParameters { reason } => {
                write!(f, "invalid generator parameters: {reason}")
            }
            GraphError::GenerationFailed { reason } => {
                write!(f, "graph generation failed: {reason}")
            }
            GraphError::InvalidEncoding { reason } => {
                write!(f, "invalid graph encoding: {reason}")
            }
            GraphError::TooLarge { what, value, limit } => {
                write!(
                    f,
                    "graph too large: {what} {value} exceeds the limit of {limit}"
                )
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::EmptyGraph => write!(f, "graph has no vertices"),
        }
    }
}

impl Error for GraphError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_vertex_out_of_range() {
        let e = GraphError::VertexOutOfRange { vertex: 7, n: 3 };
        assert_eq!(
            e.to_string(),
            "vertex index 7 out of range for graph with 3 vertices"
        );
    }

    #[test]
    fn display_self_loop() {
        let e = GraphError::SelfLoop { vertex: 2 };
        assert!(e.to_string().contains("self-loop at vertex 2"));
    }

    #[test]
    fn display_duplicate_edge() {
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("(1, 2)"));
    }

    #[test]
    fn display_invalid_parameters() {
        let e = GraphError::InvalidParameters {
            reason: "d must be < n".into(),
        };
        assert!(e.to_string().contains("d must be < n"));
    }

    #[test]
    fn display_generation_failed() {
        let e = GraphError::GenerationFailed {
            reason: "too many retries".into(),
        };
        assert!(e.to_string().contains("too many retries"));
    }

    #[test]
    fn display_invalid_encoding() {
        let e = GraphError::InvalidEncoding {
            reason: "bad magic".into(),
        };
        assert_eq!(e.to_string(), "invalid graph encoding: bad magic");
    }

    #[test]
    fn display_too_large() {
        let e = GraphError::TooLarge {
            what: "expected stub total".into(),
            value: 7_000_000_000,
            limit: u64::from(u32::MAX),
        };
        assert_eq!(
            e.to_string(),
            "graph too large: expected stub total 7000000000 exceeds the limit of 4294967295"
        );
    }

    #[test]
    fn display_disconnected_and_empty() {
        assert_eq!(
            GraphError::Disconnected.to_string(),
            "graph is not connected"
        );
        assert_eq!(GraphError::EmptyGraph.to_string(), "graph has no vertices");
    }

    #[test]
    fn error_is_std_error_and_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
    }
}
