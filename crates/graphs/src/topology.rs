//! The `Topology` abstraction: one sampling contract, three storage
//! backends.
//!
//! Every protocol in the workspace consumes a graph through a handful of
//! operations — `degree`, uniform neighbor sampling, stationary vertex
//! sampling, neighbor enumeration. The [`Topology`] trait captures exactly
//! that surface, with four sealed implementations:
//!
//! * [`Graph`] — the CSR backend: `O(n + m)` arrays, any simple undirected
//!   graph.
//! * [`ImplicitGraph`](crate::ImplicitGraph) — the implicit backend: the
//!   paper's structured families (stars, cycles, cliques, heavy trees,
//!   cycle-of-stars-of-cliques, …) whose adjacency is pure arithmetic.
//!   `O(1)` parameters instead of arrays, so a 10⁸-vertex instance costs
//!   bytes, not gigabytes.
//! * [`GeneratedGraph`](crate::GeneratedGraph) — the generated backend:
//!   seed-keyed random families (G(n, p), Chung–Lu power-law) whose edges
//!   are derived on demand from a counter-based Philox hash. `O(n)` memory
//!   (two offset tables), so 10⁷-vertex random topologies fit where their
//!   CSR builds would not.
//! * [`HubCachedGraph`](crate::HubCachedGraph) — the hub-cached hybrid: a
//!   layer over the generated backend that materializes exact CSR
//!   adjacency for the top-k vertices by degree, absorbing the hub-heavy
//!   query mix of stationary agent walks while tail queries stay on the
//!   hashed path.
//!
//! **Determinism contract:** for equal degrees all backends consume the
//! RNG stream identically (each draws neighbor indices through the shared
//! degree-specialized sampler in [`crate::Graph`]'s module), and the
//! implicit and generated backends resolve a sampled index to the identical
//! *i*-th sorted neighbor their materialized CSR builds store. A simulation
//! over an [`ImplicitGraph`](crate::ImplicitGraph) or
//! [`GeneratedGraph`](crate::GeneratedGraph) is therefore bit-identical to
//! the same simulation over the corresponding [`Graph`] — the cross-backend
//! equivalence tests in `rumor-core` pin this for every family, protocol,
//! engine, and thread count.
//!
//! The trait is deliberately **not** object safe (sampling methods are
//! generic over the RNG so they inline); engines monomorphize over it,
//! matching once per run on [`AnyTopology`] and never again — the same
//! pattern the `FastStep` hot path uses for protocols.

use std::ops::Range;

use rand::Rng;

use crate::generated::GeneratedGraph;
use crate::graph::{Graph, VertexId};
use crate::hub_cached::HubCachedGraph;
use crate::implicit::ImplicitGraph;

mod sealed {
    /// Seals [`super::Topology`]: the four backends are the whole design,
    /// and the bit-identity contract between them could not be promised for
    /// foreign implementations.
    pub trait Sealed {}
    impl Sealed for super::Graph {}
    impl Sealed for super::ImplicitGraph {}
    impl Sealed for super::GeneratedGraph {}
    impl Sealed for super::HubCachedGraph {}
}

/// The operations a simulation needs from a graph, implemented by the CSR
/// backend ([`Graph`]), the implicit backend
/// ([`ImplicitGraph`](crate::ImplicitGraph)), and the generated backend
/// ([`GeneratedGraph`](crate::GeneratedGraph)). See the module-level
/// documentation above for the cross-backend determinism contract.
///
/// Sealed: downstream crates consume, and cannot implement, this trait.
pub trait Topology: sealed::Sealed + Sync {
    /// Number of vertices `n`.
    fn num_vertices(&self) -> usize;

    /// Number of undirected edges `|E|`.
    fn num_edges(&self) -> usize;

    /// Sum of all degrees, i.e. `2 |E|` (the stationary normalizer).
    #[inline]
    fn total_degree(&self) -> usize {
        2 * self.num_edges()
    }

    /// Degree of vertex `u`.
    fn degree(&self, u: VertexId) -> usize;

    /// Iterator over all vertices `0..n`.
    #[inline]
    fn vertices(&self) -> Range<VertexId> {
        0..self.num_vertices()
    }

    /// Calls `f` for every neighbor of `u`, in ascending vertex order.
    fn for_each_neighbor(&self, u: VertexId, f: impl FnMut(VertexId));

    /// Calls `f` for every undirected edge `(u, v)` with `u < v`.
    /// `O(n + m)`; the default enumerates each vertex's neighbor list.
    fn for_each_edge(&self, mut f: impl FnMut(VertexId, VertexId)) {
        for u in self.vertices() {
            self.for_each_neighbor(u, |v| {
                if u < v {
                    f(u, v);
                }
            });
        }
    }

    /// Samples a uniformly random neighbor of `u`, or `None` if `u` is
    /// isolated. Stream consumption depends only on `deg(u)` (the
    /// cross-backend determinism contract).
    fn random_neighbor<R: Rng + ?Sized>(&self, u: VertexId, rng: &mut R) -> Option<VertexId>;

    /// Samples a uniformly random neighbor of a vertex known to have one
    /// (panics on isolated vertices).
    fn random_neighbor_nonisolated<R: Rng + ?Sized>(&self, u: VertexId, rng: &mut R) -> VertexId;

    /// Like [`Topology::random_neighbor`], but the generator is produced
    /// lazily — and never produced at all when `deg(u) == 1`. Only for
    /// counter-based per-entity streams (see
    /// [`Graph::random_neighbor_with`]).
    fn random_neighbor_with<R: Rng, F: FnOnce() -> R>(
        &self,
        u: VertexId,
        make_rng: F,
    ) -> Option<VertexId>;

    /// Samples a vertex from the stationary distribution
    /// (degree-proportional). Panics if the graph has no edges.
    fn sample_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> VertexId;

    /// Samples `count` independent stationary vertices into `out` (cleared
    /// first), draw-for-draw identical to `count` calls of
    /// [`Topology::sample_stationary`]. The `u32` output feeds the agent
    /// engines' position arrays without an intermediate `Vec<usize>`.
    /// Panics if the graph has no edges.
    fn sample_stationary_into<R: Rng + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
        out: &mut Vec<u32>,
    );

    /// Whether the graph is bipartite (drives the paper's lazy-walk remedy
    /// for `meet-exchange`). CSR answers by BFS; implicit families answer in
    /// `O(1)` from their structure.
    fn is_bipartite(&self) -> bool;

    /// If the graph is `d`-regular, `Some(d)`. CSR scans degrees; implicit
    /// families answer in `O(1)`.
    fn regular_degree(&self) -> Option<usize>;

    /// Bytes of storage backing the topology (diagnostic; the headline
    /// number behind the implicit backend's ≥20× footprint reduction).
    fn memory_bytes(&self) -> usize;
}

/// A topology with the backend chosen at runtime.
///
/// Engines and the experiment harness accept this where the backend is a
/// data-driven choice, match **once**, and run fully monomorphized
/// thereafter — the enum never sits on a sampling hot path.
///
/// # Examples
///
/// ```
/// use rumor_graphs::{AnyTopology, ImplicitGraph, Topology};
///
/// let implicit = AnyTopology::from(ImplicitGraph::star(1_000_000)?);
/// let csr = AnyTopology::from(rumor_graphs::generators::star(1_000)?);
/// assert_eq!(implicit.num_vertices(), 1_000_001);
/// // The million-leaf star costs a few dozen bytes implicitly.
/// assert!(implicit.memory_bytes() < 100);
/// assert!(csr.memory_bytes() > 1_000);
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub enum AnyTopology {
    /// The materialized CSR backend.
    Csr(Graph),
    /// The closed-form implicit backend.
    Implicit(ImplicitGraph),
    /// The seed-keyed generated random backend.
    Generated(GeneratedGraph),
    /// The hub-cached hybrid over the generated backend.
    HubCached(HubCachedGraph),
}

impl AnyTopology {
    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        match self {
            AnyTopology::Csr(g) => g.num_vertices(),
            AnyTopology::Implicit(g) => g.num_vertices(),
            AnyTopology::Generated(g) => g.num_vertices(),
            AnyTopology::HubCached(g) => g.num_vertices(),
        }
    }

    /// Number of undirected edges `|E|`.
    pub fn num_edges(&self) -> usize {
        match self {
            AnyTopology::Csr(g) => g.num_edges(),
            AnyTopology::Implicit(g) => g.num_edges(),
            AnyTopology::Generated(g) => g.num_edges(),
            AnyTopology::HubCached(g) => g.num_edges(),
        }
    }

    /// Bytes of storage backing the topology (see
    /// [`Topology::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        match self {
            AnyTopology::Csr(g) => g.memory_bytes(),
            AnyTopology::Implicit(g) => g.memory_bytes(),
            AnyTopology::Generated(g) => g.memory_bytes(),
            AnyTopology::HubCached(g) => Topology::memory_bytes(g),
        }
    }

    /// The CSR backend, if that is what this topology holds.
    pub fn as_csr(&self) -> Option<&Graph> {
        match self {
            AnyTopology::Csr(g) => Some(g),
            _ => None,
        }
    }

    /// The implicit backend, if that is what this topology holds.
    pub fn as_implicit(&self) -> Option<&ImplicitGraph> {
        match self {
            AnyTopology::Implicit(g) => Some(g),
            _ => None,
        }
    }

    /// The generated backend, if that is what this topology holds.
    pub fn as_generated(&self) -> Option<&GeneratedGraph> {
        match self {
            AnyTopology::Generated(g) => Some(g),
            _ => None,
        }
    }

    /// The hub-cached backend, if that is what this topology holds.
    pub fn as_hub_cached(&self) -> Option<&HubCachedGraph> {
        match self {
            AnyTopology::HubCached(g) => Some(g),
            _ => None,
        }
    }
}

impl From<Graph> for AnyTopology {
    fn from(graph: Graph) -> Self {
        AnyTopology::Csr(graph)
    }
}

impl From<ImplicitGraph> for AnyTopology {
    fn from(graph: ImplicitGraph) -> Self {
        AnyTopology::Implicit(graph)
    }
}

impl From<GeneratedGraph> for AnyTopology {
    fn from(graph: GeneratedGraph) -> Self {
        AnyTopology::Generated(graph)
    }
}

impl From<HubCachedGraph> for AnyTopology {
    fn from(graph: HubCachedGraph) -> Self {
        AnyTopology::HubCached(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn any_topology_dispatches_to_both_backends() {
        let csr = AnyTopology::from(generators::cycle(10).unwrap());
        let implicit = AnyTopology::from(ImplicitGraph::cycle(10).unwrap());
        assert_eq!(csr.num_vertices(), implicit.num_vertices());
        assert_eq!(csr.num_edges(), implicit.num_edges());
        assert!(csr.as_csr().is_some() && csr.as_implicit().is_none());
        assert!(implicit.as_implicit().is_some() && implicit.as_csr().is_none());
        assert!(csr.memory_bytes() > implicit.memory_bytes());
    }

    #[test]
    fn any_topology_carries_the_generated_backend() {
        let generated = AnyTopology::from(GeneratedGraph::gnp(64, 0.1, 3).unwrap());
        assert_eq!(generated.num_vertices(), 64);
        assert!(generated.as_generated().is_some());
        assert!(generated.as_csr().is_none() && generated.as_implicit().is_none());
        assert_eq!(
            generated.num_edges(),
            generated.as_generated().unwrap().num_edges()
        );
        assert!(generated.memory_bytes() > 0);
    }

    #[test]
    fn any_topology_carries_the_hub_cached_backend() {
        let inner = GeneratedGraph::gnp(64, 0.1, 3).unwrap();
        let cached = AnyTopology::from(HubCachedGraph::with_hub_count(inner, 8));
        assert_eq!(cached.num_vertices(), 64);
        assert!(cached.as_hub_cached().is_some());
        assert!(cached.as_generated().is_none() && cached.as_csr().is_none());
        assert_eq!(
            cached.num_edges(),
            cached.as_hub_cached().unwrap().num_edges()
        );
        assert!(cached.memory_bytes() > 0);
    }

    #[test]
    fn trait_defaults_cover_edges_and_vertices() {
        let g = generators::path(4).unwrap();
        let mut edges = Vec::new();
        Topology::for_each_edge(&g, |u, v| edges.push((u, v)));
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(Topology::vertices(&g), 0..4);
        assert_eq!(Topology::total_degree(&g), 6);
    }
}
