//! The immutable CSR (compressed sparse row) graph type used by all protocols.
//!
//! The rumor-spreading and agent-walk simulations in this workspace spend
//! almost all of their time sampling random neighbors of vertices, so the
//! graph representation is optimized for exactly that: adjacency lists stored
//! contiguously in one `Vec<u32>` with an offset table, giving `O(1)` access
//! to `deg(u)` and to the `i`-th neighbor of `u`.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{GraphError, Result};

/// Vertex identifier. Vertices of an `n`-vertex graph are `0..n`.
pub type VertexId = usize;

/// An immutable, simple, undirected graph in CSR form.
///
/// Construct a [`Graph`] through [`GraphBuilder`](crate::GraphBuilder), one of
/// the generators in [`generators`](crate::generators), or
/// [`Graph::from_edges`].
///
/// # Examples
///
/// ```
/// use rumor_graphs::Graph;
///
/// // A triangle.
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(0), 2);
/// assert!(g.is_regular());
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[u]..offsets[u + 1]` indexes `adjacency` for vertex `u`.
    offsets: Vec<usize>,
    /// Concatenated adjacency lists, neighbors of each vertex sorted ascending.
    adjacency: Vec<u32>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl Graph {
    /// Builds a graph with `n` vertices from an undirected edge list.
    ///
    /// Edges may be listed in either orientation but each undirected edge must
    /// appear exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`,
    /// [`GraphError::SelfLoop`] for an edge `(u, u)`, and
    /// [`GraphError::DuplicateEdge`] if an undirected edge appears twice.
    ///
    /// # Examples
    ///
    /// ```
    /// use rumor_graphs::Graph;
    /// let path = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
    /// assert_eq!(path.degree(1), 2);
    /// # Ok::<(), rumor_graphs::GraphError>(())
    /// ```
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Result<Self> {
        let mut builder = crate::builder::GraphBuilder::new(n);
        for &(u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Internal constructor used by [`GraphBuilder`](crate::GraphBuilder).
    ///
    /// `adjacency[offsets[u]..offsets[u+1]]` must hold the sorted neighbors of `u`.
    pub(crate) fn from_csr(offsets: Vec<usize>, adjacency: Vec<u32>, num_edges: usize) -> Self {
        debug_assert_eq!(*offsets.last().unwrap_or(&0), adjacency.len());
        debug_assert_eq!(adjacency.len(), 2 * num_edges);
        Graph {
            offsets,
            adjacency,
            num_edges,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sum of all degrees, i.e. `2 |E|`. This is the normalizing constant of
    /// the stationary distribution of a simple random walk.
    #[inline]
    pub fn total_degree(&self) -> usize {
        2 * self.num_edges
    }

    /// Degree of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.num_vertices()`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// The neighbors of `u`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.num_vertices()`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[u32] {
        &self.adjacency[self.offsets[u]..self.offsets[u + 1]]
    }

    /// The `i`-th neighbor of `u` (`0 <= i < deg(u)`).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `i` is out of range.
    #[inline]
    pub fn neighbor(&self, u: VertexId, i: usize) -> VertexId {
        self.adjacency[self.offsets[u] + i] as VertexId
    }

    /// Samples a uniformly random neighbor of `u`, or `None` if `u` is isolated.
    ///
    /// This is the primitive used by every protocol in the workspace: `push`,
    /// `push-pull` and the random-walk agents all move to a uniform neighbor.
    /// It sits on the innermost simulation loop, so the adjacency read skips
    /// bounds checks (safe by the CSR invariant `offsets[u] + i < offsets[u+1]
    /// <= adjacency.len()`, which [`Graph::validate`] and the builder
    /// establish).
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.num_vertices()`.
    #[inline]
    #[allow(unsafe_code)]
    pub fn random_neighbor<R: Rng + ?Sized>(&self, u: VertexId, rng: &mut R) -> Option<VertexId> {
        let start = self.offsets[u];
        let end = self.offsets[u + 1];
        if start == end {
            None
        } else {
            let i = rng.gen_range(start..end);
            debug_assert!(i < self.adjacency.len());
            // SAFETY: start <= i < end <= adjacency.len() (CSR invariant).
            Some(unsafe { *self.adjacency.get_unchecked(i) } as VertexId)
        }
    }

    /// Samples a uniformly random neighbor of a vertex known to have at least
    /// one neighbor, skipping the isolation branch of
    /// [`Graph::random_neighbor`]. Intended for hot loops that have already
    /// established `deg(u) > 0` (e.g. agents placed from the stationary
    /// distribution, which never sit on isolated vertices).
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.num_vertices()`; may panic or return an arbitrary
    /// neighbor-of-someone if `deg(u) == 0` (debug builds assert).
    #[inline]
    #[allow(unsafe_code)]
    pub fn random_neighbor_nonisolated<R: Rng + ?Sized>(
        &self,
        u: VertexId,
        rng: &mut R,
    ) -> VertexId {
        let start = self.offsets[u];
        let end = self.offsets[u + 1];
        debug_assert!(
            start < end,
            "random_neighbor_nonisolated on isolated vertex {u}"
        );
        let i = rng.gen_range(start..end);
        debug_assert!(i < self.adjacency.len());
        // SAFETY: start <= i < end <= adjacency.len() (CSR invariant).
        unsafe { *self.adjacency.get_unchecked(i) as VertexId }
    }

    /// Returns `true` if `(u, v)` is an edge. `O(log deg(u))`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u >= self.num_vertices() || v >= self.num_vertices() {
            return false;
        }
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices()
    }

    /// Iterator over every undirected edge `(u, v)` with `u < v`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rumor_graphs::Graph;
    /// let g = Graph::from_edges(3, &[(2, 0), (1, 2)]).unwrap();
    /// let edges: Vec<_> = g.edges().collect();
    /// assert_eq!(edges, vec![(0, 2), (1, 2)]);
    /// ```
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            graph: self,
            u: 0,
            i: 0,
        }
    }

    /// Minimum degree over all vertices. Returns `None` for the empty graph.
    pub fn min_degree(&self) -> Option<usize> {
        self.vertices().map(|u| self.degree(u)).min()
    }

    /// Maximum degree over all vertices. Returns `None` for the empty graph.
    pub fn max_degree(&self) -> Option<usize> {
        self.vertices().map(|u| self.degree(u)).max()
    }

    /// Average degree `2|E| / n`, or `0.0` for the empty graph.
    pub fn average_degree(&self) -> f64 {
        let n = self.num_vertices();
        if n == 0 {
            0.0
        } else {
            self.total_degree() as f64 / n as f64
        }
    }

    /// Returns `true` if every vertex has the same degree.
    ///
    /// Regular graphs are where the paper's main equivalence theorem
    /// (`T_push ≍ T_visitx`) applies.
    pub fn is_regular(&self) -> bool {
        match (self.min_degree(), self.max_degree()) {
            (Some(lo), Some(hi)) => lo == hi,
            _ => true,
        }
    }

    /// If the graph is `d`-regular, returns `Some(d)`; otherwise `None`.
    pub fn regular_degree(&self) -> Option<usize> {
        if self.num_vertices() == 0 {
            return None;
        }
        let d = self.degree(0);
        if self.vertices().all(|u| self.degree(u) == d) {
            Some(d)
        } else {
            None
        }
    }

    /// The stationary distribution of a simple random walk:
    /// `π(u) = deg(u) / (2 |E|)`.
    ///
    /// The agent protocols of the paper start their agents from this
    /// distribution.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges (the distribution is undefined).
    pub fn stationary_distribution(&self) -> Vec<f64> {
        assert!(
            self.num_edges > 0,
            "stationary distribution undefined without edges"
        );
        let total = self.total_degree() as f64;
        self.vertices()
            .map(|u| self.degree(u) as f64 / total)
            .collect()
    }

    /// Samples a vertex from the stationary distribution (degree-proportional).
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges.
    pub fn sample_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> VertexId {
        assert!(
            self.num_edges > 0,
            "stationary sampling undefined without edges"
        );
        // Sampling a uniform position in the concatenated adjacency array and
        // mapping it back to its owning vertex is exactly degree-proportional.
        let pos = rng.gen_range(0..self.adjacency.len());
        // Binary search for the vertex owning `pos` in `offsets`.
        match self.offsets.binary_search(&pos) {
            Ok(mut idx) => {
                // `pos` is the start of some vertex's list; skip empty lists.
                while idx + 1 < self.offsets.len() && self.offsets[idx + 1] == pos {
                    idx += 1;
                }
                idx
            }
            Err(idx) => idx - 1,
        }
    }

    /// Total memory used by the CSR arrays, in bytes (diagnostic).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.adjacency.len() * std::mem::size_of::<u32>()
    }

    /// Checks basic invariants (sorted adjacency, symmetric edges, no loops).
    ///
    /// Generators call this in debug builds; it is also handy in tests.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        let n = self.num_vertices();
        for u in self.vertices() {
            let neigh = self.neighbors(u);
            for w in neigh.windows(2) {
                if w[0] >= w[1] {
                    return Err(GraphError::DuplicateEdge {
                        u,
                        v: w[1] as usize,
                    });
                }
            }
            for &v in neigh {
                let v = v as usize;
                if v >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: v, n });
                }
                if v == u {
                    return Err(GraphError::SelfLoop { vertex: u });
                }
                if !self.has_edge(v, u) {
                    return Err(GraphError::GenerationFailed {
                        reason: format!("edge ({u}, {v}) is not symmetric"),
                    });
                }
            }
        }
        if self.adjacency.len() != 2 * self.num_edges {
            return Err(GraphError::GenerationFailed {
                reason: "edge count does not match adjacency length".to_string(),
            });
        }
        Ok(())
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .field("min_degree", &self.min_degree())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

/// Iterator over the undirected edges of a [`Graph`], produced by [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct Edges<'a> {
    graph: &'a Graph,
    u: VertexId,
    i: usize,
}

impl Iterator for Edges<'_> {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.graph.num_vertices();
        while self.u < n {
            let neigh = self.graph.neighbors(self.u);
            while self.i < neigh.len() {
                let v = neigh[self.i] as VertexId;
                self.i += 1;
                if self.u < v {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.i = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn from_edges_counts() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.total_degree(), 6);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(4, &[(3, 0), (0, 1), (2, 0)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn neighbor_by_index() {
        let g = Graph::from_edges(4, &[(0, 2), (0, 3), (0, 1)]).unwrap();
        assert_eq!(g.neighbor(0, 0), 1);
        assert_eq!(g.neighbor(0, 1), 2);
        assert_eq!(g.neighbor(0, 2), 3);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 5));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap(); // star
        assert_eq!(g.min_degree(), Some(1));
        assert_eq!(g.max_degree(), Some(3));
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
        assert!(!g.is_regular());
        assert_eq!(g.regular_degree(), None);
    }

    #[test]
    fn regular_graph_detection() {
        let g = triangle();
        assert!(g.is_regular());
        assert_eq!(g.regular_degree(), Some(2));
    }

    #[test]
    fn stationary_distribution_sums_to_one_and_is_degree_proportional() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let pi = g.stationary_distribution();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((pi[0] - 0.5).abs() < 1e-12);
        assert!((pi[1] - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn sample_stationary_is_degree_biased() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 60_000;
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            counts[g.sample_stationary(&mut rng)] += 1;
        }
        let center_frac = counts[0] as f64 / trials as f64;
        assert!(
            (center_frac - 0.5).abs() < 0.02,
            "center fraction {center_frac}"
        );
        for &leaf in &counts[1..] {
            let frac = leaf as f64 / trials as f64;
            assert!((frac - 1.0 / 6.0).abs() < 0.02, "leaf fraction {frac}");
        }
    }

    #[test]
    fn random_neighbor_uniform() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 30_000;
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            counts[g.random_neighbor(0, &mut rng).unwrap()] += 1;
        }
        for &c in &counts[1..] {
            let frac = c as f64 / trials as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "fraction {frac}");
        }
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn random_neighbor_isolated_vertex() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(g.random_neighbor(2, &mut rng), None);
    }

    #[test]
    fn validate_accepts_well_formed_graph() {
        assert!(triangle().validate().is_ok());
    }

    #[test]
    fn from_edges_rejects_bad_input() {
        assert!(matches!(
            Graph::from_edges(3, &[(0, 3)]),
            Err(GraphError::VertexOutOfRange { vertex: 3, n: 3 })
        ));
        assert!(matches!(
            Graph::from_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        assert!(matches!(
            Graph::from_edges(3, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn empty_graph_behaviour() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.min_degree(), None);
        assert!(g.is_regular());
        assert_eq!(g.regular_degree(), None);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn debug_formatting_is_nonempty() {
        let s = format!("{:?}", triangle());
        assert!(s.contains("Graph"));
        assert!(s.contains("num_vertices"));
    }

    #[test]
    fn memory_bytes_positive() {
        assert!(triangle().memory_bytes() > 0);
    }
}
