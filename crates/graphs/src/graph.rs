//! The immutable CSR (compressed sparse row) graph type used by all protocols.
//!
//! The rumor-spreading and agent-walk simulations in this workspace spend
//! almost all of their time sampling random neighbors of vertices, so the
//! graph representation is optimized for exactly that: adjacency lists stored
//! contiguously in one `Vec<u32>` with an offset table, giving `O(1)` access
//! to `deg(u)` and to the `i`-th neighbor of `u`.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{GraphError, Result};

/// Vertex identifier. Vertices of an `n`-vertex graph are `0..n`.
pub type VertexId = usize;

/// An immutable, simple, undirected graph in CSR form.
///
/// Construct a [`Graph`] through [`GraphBuilder`](crate::GraphBuilder), one of
/// the generators in [`generators`](crate::generators), or
/// [`Graph::from_edges`].
///
/// # Examples
///
/// ```
/// use rumor_graphs::Graph;
///
/// // A triangle.
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(0), 2);
/// assert!(g.is_regular());
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[u]..offsets[u + 1]` indexes `adjacency` for vertex `u`.
    /// Stored as `u32`: [`Graph::from_csr`] asserts
    /// `adjacency.len() <= u32::MAX`, so every offset fits, halving the
    /// per-vertex CSR metadata relative to `Vec<usize>`.
    offsets: Vec<u32>,
    /// Concatenated adjacency lists, neighbors of each vertex sorted ascending.
    adjacency: Vec<u32>,
    /// Per-vertex neighbor sampler (see [`NeighborSampler`]): adjacency
    /// start and a degree-specialized sampling word packed into one 12-byte
    /// entry, so a random-neighbor draw touches a single slot of vertex
    /// metadata plus (for CSR-shaped lists only) the adjacency slot it
    /// selects.
    sampler: Vec<NeighborSampler>,
    /// Number of undirected edges.
    num_edges: usize,
    /// `Some(d)` iff every vertex has degree `d`, cached at construction so
    /// the bulk stationary sampler's regular fast path is an O(1) read (it
    /// sits on the per-trial agent-placement reset path).
    regular: Option<usize>,
}

/// Per-vertex neighbor-sampling metadata, array-of-structs so the hot
/// sampling path performs one 12-byte load instead of three scattered reads
/// (`offsets[u]`, `offsets[u + 1]`, and a separate sampler table) — and, for
/// interval-shaped neighbor lists, **no adjacency read at all**.
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct NeighborSampler {
    /// The degree-specialized sampling word (see [`sampler_entry`]).
    word: u32,
    /// Start of the vertex's adjacency block (`== offsets[u]`, fits in `u32`
    /// because adjacency entries are `u32` vertex ids) — or, for
    /// interval-tagged words, the smallest neighbor id of the interval.
    start: u32,
    /// For outlier-tagged words, the single neighbor outside the interval.
    outlier: u32,
}

/// Tag bit marking a sampler word's index draw as a power-of-two shift.
const POW2_TAG: u32 = 1 << 31;
/// Tag bit marking the neighbor list as a contiguous id interval (possibly
/// with a hole at the vertex itself), sampled arithmetically with **no
/// adjacency read**.
const INTERVAL_TAG: u32 = 1 << 30;
/// Tag bit (implies `INTERVAL_TAG`) marking an interval list with one
/// neighbor outside the interval, stored in `NeighborSampler::outlier`.
const OUTLIER_TAG: u32 = 1 << 29;
/// Low bits of the sampler word (degree / shift payload).
const WORD_PAYLOAD: u32 = OUTLIER_TAG - 1;

/// Largest degree the sampler word encodes. The CSR build asserts this in
/// [`sampler_entry`]; the implicit constructors enforce it up front (their
/// families can otherwise reach arbitrary degrees), so no backend ever
/// builds a word whose payload collides with the tag bits.
pub(crate) const MAX_SAMPLER_DEGREE: usize = (WORD_PAYLOAD - 1) as usize;

/// The index-draw word for a positive degree `d`: the power-of-two shift
/// encoding when `d` is a power of two, otherwise `d` itself driving Lemire's
/// widening multiply. This is exactly the index portion of a CSR
/// [`sampler_entry`] word, shared with the implicit and generated backends
/// so every backend consumes the RNG stream identically for equal degrees.
#[inline]
pub(crate) fn index_word(d: usize) -> u32 {
    debug_assert!(d > 0 && d < WORD_PAYLOAD as usize);
    if d.is_power_of_two() {
        POW2_TAG | (64 - d.trailing_zeros())
    } else {
        d as u32
    }
}

/// Samples a uniform index in `0..deg` from an index-draw word (see
/// [`index_word`]). Consumes the RNG stream exactly like
/// `rng.gen_range(0..deg)` (one `next_u64` per Lemire attempt) and produces
/// the identical value — the equivalence tests pin this. Shared by the CSR
/// sampler and the implicit backend.
///
/// Requires a non-sentinel word (`deg > 0`).
#[inline(always)]
pub(crate) fn sample_index<R: Rng + ?Sized>(word: u32, rng: &mut R) -> u64 {
    if word & POW2_TAG != 0 {
        // Power-of-two degree: top log2(d) bits of one draw.
        let x = rng.next_u64();
        let shift = word & 0x7f;
        if shift >= 64 {
            0 // deg 1: the draw is consumed, the index is forced.
        } else {
            x >> shift
        }
    } else {
        // Lemire widening multiply with bounded rejection; the threshold is
        // only computed in the (probability d/2^64) rejection branch,
        // mirroring the generic sampler exactly.
        let d = u64::from(word & WORD_PAYLOAD);
        let mut m = u128::from(rng.next_u64()) * u128::from(d);
        let lo = m as u64;
        if lo < d {
            let threshold = d.wrapping_neg() % d;
            while (m as u64) < threshold {
                m = u128::from(rng.next_u64()) * u128::from(d);
            }
        }
        (m >> 64) as u64
    }
}

/// If the sorted, strictly ascending `list` is a contiguous id range — or a
/// contiguous range with a single hole exactly at `u` (a vertex is never its
/// own neighbor) — returns the range's first id.
fn contiguous_span(u: usize, list: &[u32]) -> Option<u32> {
    let d = list.len();
    if d == 0 {
        return None;
    }
    let first = list[0] as usize;
    let last = list[d - 1] as usize;
    if last - first == d - 1 {
        return Some(list[0]);
    }
    // Span exceeds the length by one ⇒ exactly one value is missing; it must
    // be `u` itself (checked via the span-sum identity).
    if last - first == d
        && first < u
        && u < last
        && (first + last) * (d + 1) / 2 - list.iter().map(|&v| v as usize).sum::<usize>() == u
    {
        return Some(list[0]);
    }
    None
}

/// Precomputes the sampler entry for vertex `u` with sorted neighbors `list`
/// whose adjacency block begins at `csr_start`.
///
/// The word packs two independent specializations:
///
/// * **Index draw** (bit 31): degree a power of two (including `1`) →
///   `POW2_TAG | (64 - log2(d))`: one draw, take the **top** `log2(d)` bits —
///   exactly the value Lemire's widening multiply `(x * d) >> 64` produces
///   when the rejection threshold is zero, so the mask fast path is
///   bit-identical to the general one; it only skips the 128-bit multiply.
///   Otherwise the payload is `d` itself, driving Lemire's widening multiply
///   with bounded rejection; the threshold `2^64 mod d` is computed only
///   inside the rejection branch, whose probability is `d / 2^64` — i.e.
///   essentially never — which keeps the entry compact (precomputing the
///   threshold measured slower: a fatter table spills out of L2 to save a
///   modulo that never runs).
/// * **Interval elision** (bits 30/29): when the neighbor list is a
///   contiguous id range — optionally with a single hole at `u` itself, and
///   optionally with a single *outlier* neighbor outside the range — the
///   `i`-th sorted neighbor is computed arithmetically and sampling performs
///   **zero adjacency reads**. This is the shape of cliques, stars, cycles,
///   paths, complete graphs, and the clique/star blocks of the paper's
///   Fig. 1 families (a clique member's list is its clique's id range plus
///   one link vertex).
///
/// Degree `0` → word `0`, the one word no positive degree produces (non-pow2
/// degrees are ≥ 3 and tagged words carry a tag bit), so the samplers'
/// isolation check is simply `word == 0`.
fn sampler_entry(u: usize, list: &[u32], csr_start: u32) -> NeighborSampler {
    let d = list.len();
    if d == 0 {
        return NeighborSampler {
            word: 0,
            start: csr_start,
            outlier: 0,
        };
    }
    assert!(
        d < WORD_PAYLOAD as usize,
        "degree exceeds sampler word range"
    );
    let mut word = index_word(d);
    let mut start = csr_start;
    let mut outlier = 0;
    if let Some(base) = contiguous_span(u, list) {
        word |= INTERVAL_TAG;
        start = base;
    } else if d >= 2 {
        if let Some(base) = contiguous_span(u, &list[1..]) {
            // Low-side outlier: the smallest neighbor sits below the range.
            word |= INTERVAL_TAG | OUTLIER_TAG;
            start = base;
            outlier = list[0];
        } else if let Some(base) = contiguous_span(u, &list[..d - 1]) {
            // High-side outlier: the largest neighbor sits above the range.
            word |= INTERVAL_TAG | OUTLIER_TAG;
            start = base;
            outlier = list[d - 1];
        }
    }
    NeighborSampler {
        word,
        start,
        outlier,
    }
}

impl Graph {
    /// Builds a graph with `n` vertices from an undirected edge list.
    ///
    /// Edges may be listed in either orientation but each undirected edge must
    /// appear exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`,
    /// [`GraphError::SelfLoop`] for an edge `(u, u)`, and
    /// [`GraphError::DuplicateEdge`] if an undirected edge appears twice.
    ///
    /// # Examples
    ///
    /// ```
    /// use rumor_graphs::Graph;
    /// let path = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
    /// assert_eq!(path.degree(1), 2);
    /// # Ok::<(), rumor_graphs::GraphError>(())
    /// ```
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Result<Self> {
        let mut builder = crate::builder::GraphBuilder::new(n);
        for &(u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Internal constructor used by [`GraphBuilder`](crate::GraphBuilder).
    ///
    /// `adjacency[offsets[u]..offsets[u+1]]` must hold the sorted neighbors of `u`.
    pub(crate) fn from_csr(offsets: Vec<usize>, adjacency: Vec<u32>, num_edges: usize) -> Self {
        debug_assert_eq!(*offsets.last().unwrap_or(&0), adjacency.len());
        debug_assert_eq!(adjacency.len(), 2 * num_edges);
        assert!(
            adjacency.len() <= u32::MAX as usize,
            "adjacency array exceeds u32 addressing"
        );
        let sampler = offsets
            .windows(2)
            .enumerate()
            .map(|(u, w)| sampler_entry(u, &adjacency[w[0]..w[1]], w[0] as u32))
            .collect();
        let regular = if offsets.len() < 2 {
            None
        } else {
            let d = offsets[1];
            offsets.windows(2).all(|w| w[1] - w[0] == d).then_some(d)
        };
        // The adjacency length bounds every offset, so the narrowing is lossless.
        let offsets = offsets.into_iter().map(|o| o as u32).collect();
        Graph {
            offsets,
            adjacency,
            sampler,
            num_edges,
            regular,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sum of all degrees, i.e. `2 |E|`. This is the normalizing constant of
    /// the stationary distribution of a simple random walk.
    #[inline]
    pub fn total_degree(&self) -> usize {
        2 * self.num_edges
    }

    /// Degree of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.num_vertices()`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// The neighbors of `u`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.num_vertices()`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[u32] {
        &self.adjacency[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// The `i`-th neighbor of `u` (`0 <= i < deg(u)`).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `i` is out of range.
    #[inline]
    pub fn neighbor(&self, u: VertexId, i: usize) -> VertexId {
        self.adjacency[self.offsets[u] as usize + i] as VertexId
    }

    /// Samples a uniformly random neighbor of `u`, or `None` if `u` is isolated.
    ///
    /// This is the primitive used by every protocol in the workspace: `push`,
    /// `push-pull` and the random-walk agents all move to a uniform neighbor.
    /// It sits on the innermost simulation loop, so all vertex metadata comes
    /// from one 12-byte `NeighborSampler` load (adjacency start plus a
    /// power-of-two shift or Lemire bound, or an interval description that
    /// needs no adjacency read at all) and the CSR branch's
    /// adjacency read skips bounds checks (safe by the CSR invariant
    /// `start + i < start + deg <= adjacency.len()`, which
    /// [`Graph::validate`] and the builder establish).
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.num_vertices()`.
    #[inline(always)]
    #[allow(unsafe_code)]
    pub fn random_neighbor<R: Rng + ?Sized>(&self, u: VertexId, rng: &mut R) -> Option<VertexId> {
        let entry = self.sampler[u];
        if entry.word == 0 {
            None
        } else {
            Some(self.neighbor_from_entry(u, entry, rng))
        }
    }

    /// Degree encoded in a non-sentinel sampler word.
    #[inline]
    fn entry_degree(word: u32) -> u64 {
        if word & POW2_TAG != 0 {
            1u64 << (64 - (word & 0x7f))
        } else {
            u64::from(word & WORD_PAYLOAD)
        }
    }

    /// The `i`-th sorted member of the interval starting at `start`, skipping
    /// the hole at `u` when the interval contains it (a vertex is never its
    /// own neighbor; for pure intervals the bump condition is never met).
    #[inline]
    fn interval_member(u: VertexId, start: u32, i: u32) -> VertexId {
        let x = start + i;
        let v = u as u32;
        (x + u32::from(v >= start && x >= v)) as VertexId
    }

    /// Resolves a sampled index to a neighbor: arithmetically for
    /// interval-tagged vertices (no adjacency read), by CSR lookup otherwise.
    #[inline(always)]
    fn neighbor_from_entry<R: Rng + ?Sized>(
        &self,
        u: VertexId,
        entry: NeighborSampler,
        rng: &mut R,
    ) -> VertexId {
        let i = sample_index(entry.word, rng);
        self.resolve_neighbor_index(u, entry, i)
    }

    /// Maps sampled index `i` (`< deg(u)`) to the corresponding neighbor.
    #[inline(always)]
    #[allow(unsafe_code)]
    fn resolve_neighbor_index(&self, u: VertexId, entry: NeighborSampler, i: u64) -> VertexId {
        let word = entry.word;
        if word & INTERVAL_TAG != 0 {
            if word & OUTLIER_TAG != 0 {
                // One neighbor lies outside the interval; sorted order puts
                // it first (below the range) or last (above it).
                if entry.outlier < entry.start {
                    if i == 0 {
                        return entry.outlier as VertexId;
                    }
                    return Self::interval_member(u, entry.start, i as u32 - 1);
                }
                if i + 1 == Self::entry_degree(word) {
                    return entry.outlier as VertexId;
                }
                return Self::interval_member(u, entry.start, i as u32);
            }
            Self::interval_member(u, entry.start, i as u32)
        } else {
            let slot = entry.start as usize + i as usize;
            debug_assert!(slot < self.adjacency.len());
            // SAFETY: start <= slot < start + deg <= adjacency.len() (CSR
            // invariant; sample_neighbor_index returns a value < deg).
            unsafe { *self.adjacency.get_unchecked(slot) as VertexId }
        }
    }

    /// Samples a uniformly random neighbor of a vertex known to have at least
    /// one neighbor, skipping the isolation branch of
    /// [`Graph::random_neighbor`]. Intended for hot loops that have already
    /// established `deg(u) > 0` (e.g. agents placed from the stationary
    /// distribution, which never sit on isolated vertices).
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.num_vertices()` or if `deg(u) == 0`.
    #[inline(always)]
    #[allow(unsafe_code)]
    pub fn random_neighbor_nonisolated<R: Rng + ?Sized>(
        &self,
        u: VertexId,
        rng: &mut R,
    ) -> VertexId {
        let entry = self.sampler[u];
        // A real assert (the generic `gen_range(start..end)` this replaces
        // carried the same empty-range check): it is the bound that keeps the
        // CSR branch's unchecked adjacency read in range.
        assert!(
            entry.word != 0,
            "random_neighbor_nonisolated on isolated vertex {u}"
        );
        self.neighbor_from_entry(u, entry, rng)
    }

    /// Like [`Graph::random_neighbor`], but the generator is produced
    /// lazily by `make_rng` — and **never produced at all when
    /// `deg(u) == 1`**, where the draw's outcome is forced and the sample
    /// is resolved arithmetically.
    ///
    /// This breaks the sequential engines' draw-consumption contract (they
    /// must consume a variate even for forced draws, to stay stream-aligned
    /// with the generic bounded sampler), so it is **only** for callers
    /// using counter-based per-entity streams (`rand::stream`), where an
    /// entity's unused draws are simply never computed and shift nothing.
    /// Degree-1 vertices are common and hot in the paper's instances — star
    /// leaves push/pull/walk through this path every round — making the
    /// skipped block function measurable end to end.
    #[inline(always)]
    pub fn random_neighbor_with<R: Rng, F: FnOnce() -> R>(
        &self,
        u: VertexId,
        make_rng: F,
    ) -> Option<VertexId> {
        let entry = self.sampler[u];
        if entry.word == 0 {
            return None;
        }
        if Self::entry_degree(entry.word) == 1 {
            return Some(self.resolve_neighbor_index(u, entry, 0));
        }
        let mut rng = make_rng();
        Some(self.neighbor_from_entry(u, entry, &mut rng))
    }

    /// Returns `true` if `(u, v)` is an edge. `O(log deg(u))`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u >= self.num_vertices() || v >= self.num_vertices() {
            return false;
        }
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices()
    }

    /// Iterator over every undirected edge `(u, v)` with `u < v`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rumor_graphs::Graph;
    /// let g = Graph::from_edges(3, &[(2, 0), (1, 2)]).unwrap();
    /// let edges: Vec<_> = g.edges().collect();
    /// assert_eq!(edges, vec![(0, 2), (1, 2)]);
    /// ```
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            graph: self,
            u: 0,
            i: 0,
        }
    }

    /// Minimum degree over all vertices. Returns `None` for the empty graph.
    pub fn min_degree(&self) -> Option<usize> {
        self.vertices().map(|u| self.degree(u)).min()
    }

    /// Maximum degree over all vertices. Returns `None` for the empty graph.
    pub fn max_degree(&self) -> Option<usize> {
        self.vertices().map(|u| self.degree(u)).max()
    }

    /// Average degree `2|E| / n`, or `0.0` for the empty graph.
    pub fn average_degree(&self) -> f64 {
        let n = self.num_vertices();
        if n == 0 {
            0.0
        } else {
            self.total_degree() as f64 / n as f64
        }
    }

    /// Returns `true` if every vertex has the same degree.
    ///
    /// Regular graphs are where the paper's main equivalence theorem
    /// (`T_push ≍ T_visitx`) applies.
    pub fn is_regular(&self) -> bool {
        match (self.min_degree(), self.max_degree()) {
            (Some(lo), Some(hi)) => lo == hi,
            _ => true,
        }
    }

    /// If the graph is `d`-regular, returns `Some(d)`; otherwise `None`.
    /// O(1): cached at construction.
    pub fn regular_degree(&self) -> Option<usize> {
        self.regular
    }

    /// The stationary distribution of a simple random walk:
    /// `π(u) = deg(u) / (2 |E|)`.
    ///
    /// The agent protocols of the paper start their agents from this
    /// distribution.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges (the distribution is undefined).
    pub fn stationary_distribution(&self) -> Vec<f64> {
        assert!(
            self.num_edges > 0,
            "stationary distribution undefined without edges"
        );
        let total = self.total_degree() as f64;
        self.vertices()
            .map(|u| self.degree(u) as f64 / total)
            .collect()
    }

    /// Samples a vertex from the stationary distribution (degree-proportional).
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges.
    pub fn sample_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> VertexId {
        assert!(
            self.num_edges > 0,
            "stationary sampling undefined without edges"
        );
        // Sampling a uniform position in the concatenated adjacency array and
        // mapping it back to its owning vertex is exactly degree-proportional.
        let pos = rng.gen_range(0..self.adjacency.len());
        self.vertex_owning_slot(pos)
    }

    /// Maps an adjacency-array position to the vertex whose list contains it:
    /// the unique `u` with `offsets[u] <= pos < offsets[u + 1]`.
    #[inline]
    fn vertex_owning_slot(&self, pos: usize) -> VertexId {
        debug_assert!(pos < self.adjacency.len());
        // `partition_point` handles runs of equal offsets (empty adjacency
        // lists) uniformly: the first offset strictly greater than `pos` is
        // `offsets[u + 1]` of the owning vertex.
        self.offsets.partition_point(|&o| o as usize <= pos) - 1
    }

    /// Samples `count` independent stationary vertices in one call (the bulk
    /// path behind `rumor_walks::Placement::sample`).
    ///
    /// Draw-for-draw identical to calling [`Graph::sample_stationary`] `count`
    /// times with the same RNG — same stream consumption, same results — but
    /// on regular graphs the offset search collapses to a division, and the
    /// per-call edge-count assert is hoisted out of the loop.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges.
    pub fn sample_stationary_many<R: Rng + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        // One copy of the bulk sampling logic: the Topology impl below owns
        // it (the draw-identity contract is pinned through that path).
        let mut out = Vec::new();
        crate::Topology::sample_stationary_into(self, count, rng, &mut out);
        out.into_iter().map(|v| v as VertexId).collect()
    }

    /// Total memory used by the graph's arrays, in bytes (diagnostic).
    ///
    /// Counts the CSR offset and adjacency arrays *and* the per-vertex
    /// sampler table, by **capacity** (what the allocator actually holds)
    /// rather than length, so large-graph memory reports are honest.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.adjacency.capacity() * std::mem::size_of::<u32>()
            + self.sampler.capacity() * std::mem::size_of::<NeighborSampler>()
    }

    /// Checks basic invariants (sorted adjacency, symmetric edges, no loops).
    ///
    /// Generators call this in debug builds; it is also handy in tests.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        let n = self.num_vertices();
        for u in self.vertices() {
            let neigh = self.neighbors(u);
            for w in neigh.windows(2) {
                if w[0] >= w[1] {
                    return Err(GraphError::DuplicateEdge {
                        u,
                        v: w[1] as usize,
                    });
                }
            }
            for &v in neigh {
                let v = v as usize;
                if v >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: v, n });
                }
                if v == u {
                    return Err(GraphError::SelfLoop { vertex: u });
                }
                if !self.has_edge(v, u) {
                    return Err(GraphError::GenerationFailed {
                        reason: format!("edge ({u}, {v}) is not symmetric"),
                    });
                }
            }
        }
        if self.adjacency.len() != 2 * self.num_edges {
            return Err(GraphError::GenerationFailed {
                reason: "edge count does not match adjacency length".to_string(),
            });
        }
        Ok(())
    }
}

/// The CSR backend of the [`Topology`](crate::Topology) abstraction: every
/// method forwards to the inherent implementation (which the rest of the
/// crate's API keeps exposing directly).
impl crate::Topology for Graph {
    #[inline]
    fn num_vertices(&self) -> usize {
        Graph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        Graph::num_edges(self)
    }

    #[inline]
    fn degree(&self, u: VertexId) -> usize {
        Graph::degree(self, u)
    }

    #[inline]
    fn for_each_neighbor(&self, u: VertexId, mut f: impl FnMut(VertexId)) {
        for &v in self.neighbors(u) {
            f(v as VertexId);
        }
    }

    #[inline(always)]
    fn random_neighbor<R: Rng + ?Sized>(&self, u: VertexId, rng: &mut R) -> Option<VertexId> {
        Graph::random_neighbor(self, u, rng)
    }

    #[inline(always)]
    fn random_neighbor_nonisolated<R: Rng + ?Sized>(&self, u: VertexId, rng: &mut R) -> VertexId {
        Graph::random_neighbor_nonisolated(self, u, rng)
    }

    #[inline(always)]
    fn random_neighbor_with<R: Rng, F: FnOnce() -> R>(
        &self,
        u: VertexId,
        make_rng: F,
    ) -> Option<VertexId> {
        Graph::random_neighbor_with(self, u, make_rng)
    }

    fn sample_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> VertexId {
        Graph::sample_stationary(self, rng)
    }

    fn sample_stationary_into<R: Rng + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
        out: &mut Vec<u32>,
    ) {
        assert!(
            self.num_edges > 0,
            "stationary sampling undefined without edges"
        );
        let slots = self.adjacency.len();
        out.clear();
        out.reserve(count);
        if let Some(d) = self.regular_degree() {
            // All lists have length d: slot `pos` belongs to vertex `pos / d`.
            out.extend((0..count).map(|_| (rng.gen_range(0..slots) / d) as u32));
        } else {
            out.extend((0..count).map(|_| self.vertex_owning_slot(rng.gen_range(0..slots)) as u32));
        }
    }

    fn is_bipartite(&self) -> bool {
        crate::algorithms::is_bipartite(self)
    }

    fn regular_degree(&self) -> Option<usize> {
        Graph::regular_degree(self)
    }

    fn memory_bytes(&self) -> usize {
        Graph::memory_bytes(self)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .field("min_degree", &self.min_degree())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

/// Iterator over the undirected edges of a [`Graph`], produced by [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct Edges<'a> {
    graph: &'a Graph,
    u: VertexId,
    i: usize,
}

impl Iterator for Edges<'_> {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.graph.num_vertices();
        while self.u < n {
            let neigh = self.graph.neighbors(self.u);
            while self.i < neigh.len() {
                let v = neigh[self.i] as VertexId;
                self.i += 1;
                if self.u < v {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.i = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn from_edges_counts() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.total_degree(), 6);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(4, &[(3, 0), (0, 1), (2, 0)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn neighbor_by_index() {
        let g = Graph::from_edges(4, &[(0, 2), (0, 3), (0, 1)]).unwrap();
        assert_eq!(g.neighbor(0, 0), 1);
        assert_eq!(g.neighbor(0, 1), 2);
        assert_eq!(g.neighbor(0, 2), 3);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 5));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap(); // star
        assert_eq!(g.min_degree(), Some(1));
        assert_eq!(g.max_degree(), Some(3));
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
        assert!(!g.is_regular());
        assert_eq!(g.regular_degree(), None);
    }

    #[test]
    fn regular_graph_detection() {
        let g = triangle();
        assert!(g.is_regular());
        assert_eq!(g.regular_degree(), Some(2));
    }

    #[test]
    fn stationary_distribution_sums_to_one_and_is_degree_proportional() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let pi = g.stationary_distribution();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((pi[0] - 0.5).abs() < 1e-12);
        assert!((pi[1] - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn sample_stationary_is_degree_biased() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 60_000;
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            counts[g.sample_stationary(&mut rng)] += 1;
        }
        let center_frac = counts[0] as f64 / trials as f64;
        assert!(
            (center_frac - 0.5).abs() < 0.02,
            "center fraction {center_frac}"
        );
        for &leaf in &counts[1..] {
            let frac = leaf as f64 / trials as f64;
            assert!((frac - 1.0 / 6.0).abs() < 0.02, "leaf fraction {frac}");
        }
    }

    #[test]
    fn random_neighbor_uniform() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 30_000;
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            counts[g.random_neighbor(0, &mut rng).unwrap()] += 1;
        }
        for &c in &counts[1..] {
            let frac = c as f64 / trials as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "fraction {frac}");
        }
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn random_neighbor_isolated_vertex() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(g.random_neighbor(2, &mut rng), None);
    }

    #[test]
    fn validate_accepts_well_formed_graph() {
        assert!(triangle().validate().is_ok());
    }

    #[test]
    fn from_edges_rejects_bad_input() {
        assert!(matches!(
            Graph::from_edges(3, &[(0, 3)]),
            Err(GraphError::VertexOutOfRange { vertex: 3, n: 3 })
        ));
        assert!(matches!(
            Graph::from_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        assert!(matches!(
            Graph::from_edges(3, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn empty_graph_behaviour() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.min_degree(), None);
        assert!(g.is_regular());
        assert_eq!(g.regular_degree(), None);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn debug_formatting_is_nonempty() {
        let s = format!("{:?}", triangle());
        assert!(s.contains("Graph"));
        assert!(s.contains("num_vertices"));
    }

    #[test]
    fn memory_bytes_positive_and_counts_sampler_table() {
        let g = triangle();
        assert!(g.memory_bytes() > 0);
        // offsets (n + 1 u32s) + adjacency (2m u32s) + sampler (n 12-byte
        // entries), by capacity — at least the length-based sizes.
        let floor = (g.num_vertices() + 1) * std::mem::size_of::<u32>()
            + 2 * g.num_edges() * std::mem::size_of::<u32>()
            + g.num_vertices() * std::mem::size_of::<NeighborSampler>();
        assert!(g.memory_bytes() >= floor);
        assert_eq!(std::mem::size_of::<NeighborSampler>(), 12);
    }

    #[test]
    fn sampler_words_cover_the_shapes() {
        let entry = |u: usize, list: &[u32]| sampler_entry(u, list, 77);
        assert_eq!(entry(5, &[]).word, 0, "isolation sentinel");
        // Degree 1: power-of-two draw, trivially an interval.
        assert_eq!(entry(0, &[7]).word, POW2_TAG | INTERVAL_TAG | 64);
        assert_eq!(entry(0, &[7]).start, 7, "interval start is the neighbor");
        // Contiguous pure range (star center): interval.
        assert_eq!(entry(0, &[1, 2]).word, POW2_TAG | INTERVAL_TAG | 63);
        assert_eq!(entry(0, &[1, 2, 3]).word, INTERVAL_TAG | 3);
        // Range with the hole exactly at the vertex (clique / cycle member).
        assert_eq!(entry(2, &[1, 3]).word, POW2_TAG | INTERVAL_TAG | 63);
        assert_eq!(entry(2, &[0, 1, 3, 4]).word, POW2_TAG | INTERVAL_TAG | 62);
        assert_eq!(entry(2, &[0, 1, 3, 4]).start, 0, "hole interval start");
        // One low-side outlier plus a range (clique member + its link).
        let e = entry(11, &[3, 10, 12, 13]);
        assert_eq!(e.word, POW2_TAG | INTERVAL_TAG | OUTLIER_TAG | 62);
        assert_eq!((e.start, e.outlier), (10, 3));
        // One high-side outlier.
        let e = entry(0, &[4, 5, 6, 90]);
        assert_eq!(e.word, POW2_TAG | INTERVAL_TAG | OUTLIER_TAG | 62);
        assert_eq!((e.start, e.outlier), (4, 90));
        // A gap that is NOT the vertex itself: plain CSR sampling.
        let e = entry(9, &[1, 3, 5]);
        assert_eq!(e.word, 3);
        assert_eq!(e.start, 77, "CSR start preserved");
        // Scattered non-pow2 list: Lemire bound is the degree itself.
        for d in [5usize, 6, 7, 9, 100, 999] {
            let list: Vec<u32> = (0..d as u32).map(|i| 2 * i + 2).collect();
            let w = entry(0, &list).word;
            assert_eq!(w, d as u32);
        }
    }

    #[test]
    fn specialized_sampler_is_bit_identical_to_gen_range() {
        // One vertex of every degree shape, in both layouts: a star center
        // (contiguous neighbor interval → arithmetic sampling) and a
        // scattered even-vertex fan (plain CSR sampling). For each, the
        // specialized sampler must return the same neighbor AND leave the
        // RNG in the same state as the generic `gen_range` it replaced.
        for degree in 1usize..=40 {
            let star_edges: Vec<(usize, usize)> = (1..=degree).map(|leaf| (0, leaf)).collect();
            let scattered_edges: Vec<(usize, usize)> = (1..=degree).map(|k| (0, 2 * k)).collect();
            for edges in [star_edges, scattered_edges] {
                let n = edges.iter().map(|&(_, v)| v).max().unwrap() + 1;
                let g = Graph::from_edges(n, &edges).unwrap();
                let mut specialized = StdRng::seed_from_u64(degree as u64);
                let mut generic = specialized.clone();
                for _ in 0..500 {
                    let via_sampler = g.random_neighbor_nonisolated(0, &mut specialized);
                    let i = generic.gen_range(0..degree);
                    let via_gen_range = g.neighbor(0, i);
                    assert_eq!(via_sampler, via_gen_range, "degree {degree}");
                }
                // Same stream position afterwards.
                assert_eq!(specialized.next_u64(), generic.next_u64());
            }
        }
    }

    #[test]
    fn interval_sampling_handles_holes_and_boundaries() {
        // Cycle: inner vertices have {v-1, v+1} (interval with hole at v);
        // the wrap-around vertices 0 and n-1 have non-contiguous lists (CSR
        // path). Every sample must agree with the generic draw, and every
        // neighbor must be reachable.
        let n = 9;
        let edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        for u in 0..n {
            let mut specialized = StdRng::seed_from_u64(u as u64);
            let mut generic = specialized.clone();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..200 {
                let v = g.random_neighbor_nonisolated(u, &mut specialized);
                assert_eq!(v, g.neighbor(u, generic.gen_range(0..g.degree(u))));
                assert!(g.has_edge(u, v), "sampled non-edge {u}-{v}");
                seen.insert(v);
            }
            assert_eq!(seen.len(), g.degree(u), "some neighbor never sampled");
        }
        // Complete graph: every vertex is an interval-with-hole.
        let k = crate::generators::complete(17).unwrap();
        for u in 0..17 {
            let mut rng = StdRng::seed_from_u64(u as u64);
            for _ in 0..100 {
                let v = k.random_neighbor_nonisolated(u, &mut rng);
                assert!(v != u && v < 17);
            }
        }
    }

    #[test]
    fn sample_stationary_many_matches_repeated_single_samples() {
        let mut rng = StdRng::seed_from_u64(11);
        // Non-regular: star plus a pendant path.
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (3, 4), (4, 5)]).unwrap();
        let bulk = g.sample_stationary_many(200, &mut StdRng::seed_from_u64(3));
        let mut single_rng = StdRng::seed_from_u64(3);
        let singles: Vec<_> = (0..200)
            .map(|_| g.sample_stationary(&mut single_rng))
            .collect();
        assert_eq!(bulk, singles);
        // Regular graph: the division fast path must agree too.
        let r = crate::generators::random_regular(64, 6, &mut rng).unwrap();
        let bulk = r.sample_stationary_many(200, &mut StdRng::seed_from_u64(5));
        let mut single_rng = StdRng::seed_from_u64(5);
        let singles: Vec<_> = (0..200)
            .map(|_| r.sample_stationary(&mut single_rng))
            .collect();
        assert_eq!(bulk, singles);
    }

    #[test]
    fn stationary_slot_mapping_skips_empty_lists() {
        // Vertices 1 and 3 are isolated; their empty lists share offsets with
        // neighbors and must never be returned.
        let g = Graph::from_edges(5, &[(0, 2), (2, 4)]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2_000 {
            let v = g.sample_stationary(&mut rng);
            assert!(g.degree(v) > 0, "sampled isolated vertex {v}");
        }
    }
}
