//! The hub-cached hybrid topology backend: exact CSR adjacency for the
//! heavy tail, hashed derivation for everything else.
//!
//! [`HubCachedGraph`] layers over [`GeneratedGraph`] to remove the one
//! asymmetry that prices agent protocols out of large generated graphs:
//! a neighbor query on the hashed backend costs `O(deg)` Philox partner
//! evaluations plus a sort, and stationary random walks land on
//! high-degree vertices with probability proportional to their degree —
//! so the *most expensive* vertices are queried the *most often*. On a
//! Chung–Lu power-law instance the top few percent of vertices by degree
//! carry the majority of the stationary mass, which means a small exact
//! adjacency cache absorbs most agent steps.
//!
//! # Construction
//!
//! The builder selects the **top-k vertices by stub count** (ties broken
//! toward lower vertex ids, so selection is a pure function of the graph),
//! where `k` comes from an explicit count, a byte budget, or both
//! (whichever is smaller). A `RUMOR_THREADS`-aware parallel pass — the
//! same worker discipline as the generated backend's construction passes —
//! then materializes each hub's exact sorted neighbor list through the
//! *identical* enumeration path every hashed query takes
//! (`GeneratedGraph`'s shared enumerate-sort-dedup routine), storing them
//! in one CSR-style `(ids, offsets, adjacency)` triple.
//!
//! # Determinism contract
//!
//! Draw streams are **bit-identical** to the uncached [`GeneratedGraph`]
//! (and hence to the materialized CSR [`Graph`](crate::Graph)) by
//! construction, not by luck:
//!
//! * degrees are read from the inner backend's own offset table, so stream
//!   consumption per draw is unchanged;
//! * index sampling flows through the same shared degree-specialized
//!   sampler ([`crate::graph`]'s `index_word`/`sample_index`);
//! * a sampled index resolves to the *i*-th **sorted** neighbor, and the
//!   cached lists are produced by the same routine the hashed path sorts
//!   with — a hub hit and a hash miss return the same vertex.
//!
//! `k = 0` degenerates to the pure hashed backend and `k = n` to a fully
//! materialized adjacency, both bit-identical to each other — pinned by
//! the property suite in `tests/generated_properties.rs` and the
//! differential grids in `tests/generated_equivalence.rs`.
//!
//! # Cost model
//!
//! Memory adds `4·(k + 1) + 4·k + 4·Σ deg(hub)` bytes to the inner
//! backend's `≈ 8n`; the budget builder caps the cache at a byte ceiling
//! (accounted conservatively in pre-erasure stub counts, so the realized
//! cache never exceeds it). Queries on cached vertices cost an `O(log k)`
//! membership probe plus an `O(1)` array read instead of `O(deg)` Philox
//! evaluations; tail vertices take one `O(1)` stub-count comparison and
//! continue on the hashed path unchanged. The win is workload-dependent:
//! agent walks (visit/meet-exchange) spend most draws on hubs and speed up
//! by the cached fraction of stationary mass ([`HubCachedGraph::hub_hit_fraction`]);
//! vertex protocols (push/pull) query every vertex equally often and gain
//! little. `BENCH_random.json` records the measured speedups.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::generated::{configured_threads, GeneratedGraph};
use crate::graph::{index_word, sample_index, VertexId};
use crate::topology::Topology;

/// Fallback hub count when the builder gets neither a count nor a budget:
/// one cached vertex per this many graph vertices. On Chung–Lu exponents in
/// `(2, 3]` the top `n/64` vertices carry most of the stationary mass while
/// their adjacency stays well below the inner backend's own table
/// footprint.
const DEFAULT_HUB_DIVISOR: usize = 64;

/// Parallel cache fills below this many total adjacency entries stay on one
/// worker (mirrors the generated backend's per-worker chunk floor).
const PAR_FILL_FLOOR: usize = 16_384;

/// A hub-cached hybrid over [`GeneratedGraph`]: exact CSR adjacency for the
/// top-k vertices by stub count, hashed `O(deg)` derivation for the tail,
/// draw streams bit-identical to the uncached backend (see the module docs
/// above).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rumor_graphs::{GeneratedGraph, HubCachedGraph, Topology};
///
/// let inner = GeneratedGraph::chung_lu(10_000, 2.5, 8.0, 7)?;
/// let cached = HubCachedGraph::with_hub_count(inner.clone(), 256);
/// assert_eq!(cached.hub_count(), 256);
///
/// // Draws are bit-identical to the uncached backend.
/// let mut a = rand::rngs::StdRng::seed_from_u64(3);
/// let mut b = a.clone();
/// for u in 0..100 {
///     assert_eq!(cached.random_neighbor(u, &mut a), inner.random_neighbor(u, &mut b));
/// }
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HubCachedGraph {
    inner: GeneratedGraph,
    /// Stub count of the weakest hub — the `O(1)` tail quick-reject: a
    /// vertex with a smaller stub count is never cached. `u32::MAX` when
    /// the cache is empty (no stub count reaches it).
    threshold: u32,
    /// Cached vertex ids, ascending (binary-searched for membership).
    hub_ids: Vec<u32>,
    /// `hub_offsets[h]..hub_offsets[h + 1]` brackets hub `h`'s list in
    /// `hub_adj` — prefix sums of the hubs' simple degrees (the total is at
    /// most `2m ≤ u32::MAX`, inherited from the inner backend's check).
    hub_offsets: Vec<u32>,
    /// The concatenated exact sorted neighbor lists.
    hub_adj: Vec<u32>,
}

/// Builder for [`HubCachedGraph`]: choose the cache size by hub count, by
/// byte budget, or both (the effective size is the smaller).
///
/// # Examples
///
/// ```
/// use rumor_graphs::{GeneratedGraph, HubCacheBuilder};
///
/// let inner = GeneratedGraph::chung_lu(5_000, 2.5, 6.0, 1)?;
/// let cached = HubCacheBuilder::new()
///     .hub_count(500)
///     .cache_budget_bytes(64 << 10)
///     .build(inner);
/// assert!(cached.cache_bytes() <= (64 << 10) + 4 * (500 + 1) + 4 * 500);
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct HubCacheBuilder {
    hub_count: Option<usize>,
    budget_bytes: Option<usize>,
}

impl HubCacheBuilder {
    /// A builder with neither limit set; [`HubCacheBuilder::build`] then
    /// applies the default policy (`n / 64` hubs — see the module docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Caches the top `k` vertices by stub count (clamped to `n`).
    pub fn hub_count(mut self, k: usize) -> Self {
        self.hub_count = Some(k);
        self
    }

    /// Caps the cached **adjacency** at `bytes` (4 bytes per entry),
    /// accounted conservatively in pre-erasure stub counts — the realized
    /// cache (simple degrees) never exceeds the budget. The `ids` and
    /// `offsets` side tables (8 bytes per hub) are not charged against it.
    pub fn cache_budget_bytes(mut self, bytes: usize) -> Self {
        self.budget_bytes = Some(bytes);
        self
    }

    /// Builds the hub cache over `inner`. Deterministic: the selected hub
    /// set and every cached list are pure functions of the inner graph and
    /// the limits — thread counts cannot change a byte (the fill pass
    /// honors `RUMOR_THREADS` exactly like the inner construction passes).
    pub fn build(self, inner: GeneratedGraph) -> HubCachedGraph {
        let n = inner.num_vertices();
        let default_k = if self.hub_count.is_none() && self.budget_bytes.is_none() {
            Some(n.div_ceil(DEFAULT_HUB_DIVISOR))
        } else {
            None
        };
        let entry_budget = self.budget_bytes.map(|b| (b / 4) as u64);
        let (threshold, hub_ids) = select_hubs(&inner, self.hub_count.or(default_k), entry_budget);

        let mut hub_offsets = Vec::with_capacity(hub_ids.len() + 1);
        hub_offsets.push(0u32);
        let mut total = 0u32;
        for &u in &hub_ids {
            total += inner.degree(u as usize) as u32; // Σ deg ≤ 2m ≤ u32::MAX
            hub_offsets.push(total);
        }
        let mut hub_adj = vec![0u32; total as usize];
        fill_cache(&inner, &hub_ids, &hub_offsets, &mut hub_adj);
        HubCachedGraph {
            inner,
            threshold,
            hub_ids,
            hub_offsets,
            hub_adj,
        }
    }
}

/// Picks the hub set: the top-k vertices by stub count, ties broken toward
/// lower ids. Returns the stub-count threshold (the weakest hub's count;
/// `u32::MAX` for an empty cache) and the ascending hub id list.
fn select_hubs(
    inner: &GeneratedGraph,
    k_limit: Option<usize>,
    entry_budget: Option<u64>,
) -> (u32, Vec<u32>) {
    let n = inner.num_vertices();
    let k_budget = match entry_budget {
        None => n,
        Some(budget) => {
            // Largest k whose top-k stub counts fit the entry budget: sort
            // a copy descending and take the longest affordable prefix.
            let mut sorted: Vec<u32> = (0..n).map(|u| inner.stub_degree(u) as u32).collect();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let mut acc = 0u64;
            let mut k = 0usize;
            for &c in &sorted {
                acc += u64::from(c);
                if acc > budget {
                    break;
                }
                k += 1;
            }
            k
        }
    };
    let k = k_limit.unwrap_or(n).min(k_budget).min(n);
    if k == 0 {
        return (u32::MAX, Vec::new());
    }
    // The k-th largest stub count (O(n) selection, no full sort), then one
    // ascending sweep keeps everything strictly above it plus the
    // lowest-id ties — fully deterministic.
    let mut counts: Vec<u32> = (0..n).map(|u| inner.stub_degree(u) as u32).collect();
    let (_, &mut threshold, _) = counts.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
    let greater = (0..n)
        .filter(|&u| inner.stub_degree(u) as u32 > threshold)
        .count();
    let mut ties_left = k - greater;
    let mut hub_ids = Vec::with_capacity(k);
    for u in 0..n {
        let c = inner.stub_degree(u) as u32;
        if c > threshold {
            hub_ids.push(u as u32);
        } else if c == threshold && ties_left > 0 {
            hub_ids.push(u as u32);
            ties_left -= 1;
        }
    }
    (threshold, hub_ids)
}

/// Materializes every hub's exact sorted neighbor list into `hub_adj`,
/// splitting the hub range across scoped workers at entry-balanced
/// boundaries (honoring `RUMOR_THREADS`). Each worker writes a disjoint
/// slice, so the pass is deterministic at every thread count.
fn fill_cache(inner: &GeneratedGraph, hub_ids: &[u32], hub_offsets: &[u32], hub_adj: &mut [u32]) {
    let hubs = hub_ids.len();
    let total = hub_adj.len();
    if hubs == 0 {
        return;
    }
    let workers = configured_threads()
        .min(hubs)
        .min(total.div_ceil(PAR_FILL_FLOOR))
        .max(1);
    if workers == 1 {
        fill_range(inner, hub_ids, hub_offsets, 0..hubs, hub_adj);
        return;
    }
    // Worker w takes hubs [bounds[w], bounds[w + 1]): boundaries land at
    // the first hub at or past each equal share of the total entry count,
    // so one giant hub cannot serialize the pass behind it.
    let mut bounds = Vec::with_capacity(workers + 1);
    bounds.push(0usize);
    for w in 1..workers {
        let target = (total as u64 * w as u64 / workers as u64) as u32;
        let idx = hub_offsets[..=hubs].partition_point(|&o| o < target);
        bounds.push(idx.min(hubs).max(bounds[w - 1]));
    }
    bounds.push(hubs);
    std::thread::scope(|scope| {
        let mut rest = hub_adj;
        for w in 0..workers {
            let (lo, hi) = (bounds[w], bounds[w + 1]);
            let entries = (hub_offsets[hi] - hub_offsets[lo]) as usize;
            let (slice, tail) = rest.split_at_mut(entries);
            rest = tail;
            scope.spawn(move || fill_range(inner, hub_ids, hub_offsets, lo..hi, slice));
        }
    });
}

/// One worker's share of the cache fill: hubs `range`, writing into the
/// sub-slice of the adjacency that starts at `hub_offsets[range.start]`.
fn fill_range(
    inner: &GeneratedGraph,
    hub_ids: &[u32],
    hub_offsets: &[u32],
    range: std::ops::Range<usize>,
    out: &mut [u32],
) {
    let base = hub_offsets[range.start] as usize;
    let mut scratch: Vec<u32> = Vec::new();
    for h in range {
        let u = hub_ids[h] as usize;
        let stubs = inner.stub_degree(u);
        if scratch.len() < stubs {
            scratch.resize(stubs, 0);
        }
        let len = inner.neighbors_into_buf(u, &mut scratch);
        debug_assert_eq!(len, inner.degree(u), "cache/degree disagreement at {u}");
        let start = hub_offsets[h] as usize - base;
        out[start..start + len].copy_from_slice(&scratch[..len]);
    }
}

impl HubCachedGraph {
    /// The default policy: caches the top `n / 64` vertices by stub count
    /// (see the module docs for why that covers most stationary mass on
    /// power-law instances).
    pub fn over(inner: GeneratedGraph) -> Self {
        HubCacheBuilder::new().build(inner)
    }

    /// Caches exactly the top `k` vertices by stub count (clamped to `n`).
    /// `k = 0` is the pure hashed backend; `k = n` materializes every list.
    pub fn with_hub_count(inner: GeneratedGraph, k: usize) -> Self {
        HubCacheBuilder::new().hub_count(k).build(inner)
    }

    /// The wrapped hashed backend.
    pub fn inner(&self) -> &GeneratedGraph {
        &self.inner
    }

    /// Unwraps back to the hashed backend, dropping the cache.
    pub fn into_inner(self) -> GeneratedGraph {
        self.inner
    }

    /// How many vertices are cached.
    pub fn hub_count(&self) -> usize {
        self.hub_ids.len()
    }

    /// Whether `u`'s neighbor list is answered from the cache.
    pub fn is_hub(&self, u: VertexId) -> bool {
        self.hub_slot(u).is_some()
    }

    /// Bytes held by the cache itself (ids + offsets + adjacency), on top
    /// of the inner backend's footprint.
    pub fn cache_bytes(&self) -> usize {
        (self.hub_ids.capacity() + self.hub_offsets.capacity() + self.hub_adj.capacity())
            * std::mem::size_of::<u32>()
    }

    /// The fraction of stationary probability mass the cache absorbs —
    /// i.e. the expected hub-hit rate of a stationary agent's neighbor
    /// draws: `Σ deg(hub) / 2m`. `0.0` on edgeless graphs.
    pub fn hub_hit_fraction(&self) -> f64 {
        let total = self.inner.total_degree();
        if total == 0 {
            return 0.0;
        }
        f64::from(*self.hub_offsets.last().expect("offsets never empty")) / total as f64
    }

    /// The cache slot of `u`, or `None` for tail vertices. The stub-count
    /// comparison rejects the tail in `O(1)`; actual hubs pay one
    /// `O(log k)` binary search.
    #[inline]
    fn hub_slot(&self, u: VertexId) -> Option<usize> {
        if u >= self.inner.num_vertices() || (self.inner.stub_degree(u) as u32) < self.threshold {
            return None;
        }
        self.hub_ids.binary_search(&(u as u32)).ok()
    }

    /// The cached sorted neighbor list of hub slot `h`.
    #[inline]
    fn hub_list(&self, h: usize) -> &[u32] {
        &self.hub_adj[self.hub_offsets[h] as usize..self.hub_offsets[h + 1] as usize]
    }

    /// The `i`-th neighbor of `u` in ascending order — identical to the
    /// inner backend's [`GeneratedGraph::nth_neighbor`], read from the
    /// cache when `u` is a hub.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `i` is out of range.
    pub fn nth_neighbor(&self, u: VertexId, i: usize) -> VertexId {
        match self.hub_slot(u) {
            Some(h) => self.hub_list(h)[i] as VertexId,
            None => self.inner.nth_neighbor(u, i),
        }
    }

    /// Whether `(u, v)` is an edge — `O(log deg)` against a cached list
    /// when either endpoint is a hub, the inner `O(deg)` derivation
    /// otherwise. Agrees with [`GeneratedGraph::contains_edge`] everywhere.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        for (a, b) in [(u, v), (v, u)] {
            if a >= self.inner.num_vertices() {
                return false;
            }
            if let Some(h) = self.hub_slot(a) {
                return self.hub_list(h).binary_search(&(b as u32)).is_ok();
            }
        }
        self.inner.contains_edge(u, v)
    }
}

impl Topology for HubCachedGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.inner.num_edges()
    }

    #[inline]
    fn degree(&self, u: VertexId) -> usize {
        self.inner.degree(u)
    }

    fn for_each_neighbor(&self, u: VertexId, mut f: impl FnMut(VertexId)) {
        match self.hub_slot(u) {
            Some(h) => {
                for &v in self.hub_list(h) {
                    f(v as VertexId);
                }
            }
            None => self.inner.for_each_neighbor(u, f),
        }
    }

    #[inline]
    fn random_neighbor<R: Rng + ?Sized>(&self, u: VertexId, rng: &mut R) -> Option<VertexId> {
        let d = self.degree(u);
        if d == 0 {
            return None;
        }
        let i = sample_index(index_word(d), rng);
        Some(self.nth_neighbor(u, i as usize))
    }

    #[inline]
    fn random_neighbor_nonisolated<R: Rng + ?Sized>(&self, u: VertexId, rng: &mut R) -> VertexId {
        let d = self.degree(u);
        assert!(d != 0, "random_neighbor_nonisolated on isolated vertex {u}");
        let i = sample_index(index_word(d), rng);
        self.nth_neighbor(u, i as usize)
    }

    #[inline]
    fn random_neighbor_with<R: Rng, F: FnOnce() -> R>(
        &self,
        u: VertexId,
        make_rng: F,
    ) -> Option<VertexId> {
        let d = self.degree(u);
        if d == 0 {
            return None;
        }
        if d == 1 {
            // Forced outcome; the unused draw is never computed — matching
            // the inner backend's stream consumption exactly.
            return Some(self.nth_neighbor(u, 0));
        }
        let mut rng = make_rng();
        let i = sample_index(index_word(d), &mut rng);
        Some(self.nth_neighbor(u, i as usize))
    }

    #[inline]
    fn sample_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> VertexId {
        self.inner.sample_stationary(rng)
    }

    #[inline]
    fn sample_stationary_into<R: Rng + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
        out: &mut Vec<u32>,
    ) {
        self.inner.sample_stationary_into(count, rng, out);
    }

    fn is_bipartite(&self) -> bool {
        self.inner.is_bipartite()
    }

    fn regular_degree(&self) -> Option<usize> {
        self.inner.regular_degree()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes() + self.cache_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn chung_lu(n: usize, seed: u64) -> GeneratedGraph {
        GeneratedGraph::chung_lu(n, 2.5, 6.0, seed).unwrap()
    }

    #[test]
    fn hub_selection_takes_top_k_by_stub_count_with_low_id_ties() {
        let inner = chung_lu(400, 3);
        let k = 25;
        let cached = HubCachedGraph::with_hub_count(inner.clone(), k);
        assert_eq!(cached.hub_count(), k);
        // Every cached vertex's stub count is >= every uncached vertex's,
        // and among equal counts the cached ids are the smallest.
        let min_cached = (0..400)
            .filter(|&u| cached.is_hub(u))
            .map(|u| inner.stub_degree(u))
            .min()
            .unwrap();
        for u in 0..400 {
            if !cached.is_hub(u) {
                let c = inner.stub_degree(u);
                assert!(c <= min_cached, "uncached {u} outranks a hub");
                if c == min_cached {
                    let larger_tie_cached =
                        (0..u).any(|v| !cached.is_hub(v) && inner.stub_degree(v) == min_cached);
                    assert!(
                        !larger_tie_cached || !cached.is_hub(u),
                        "tie-break must prefer lower ids"
                    );
                }
            }
        }
    }

    #[test]
    fn cached_lists_equal_inner_lists_everywhere() {
        let inner = chung_lu(500, 7);
        for k in [0usize, 1, 13, 100, 500, 5000] {
            let cached = HubCachedGraph::with_hub_count(inner.clone(), k);
            assert_eq!(cached.hub_count(), k.min(500));
            for u in 0..500 {
                assert_eq!(cached.degree(u), inner.degree(u));
                let mut a = Vec::new();
                cached.for_each_neighbor(u, |v| a.push(v));
                let mut b = Vec::new();
                inner.for_each_neighbor(u, |v| b.push(v));
                assert_eq!(a, b, "neighbor list diverged at {u} (k={k})");
            }
        }
    }

    #[test]
    fn draw_streams_are_bit_identical_to_the_inner_backend() {
        let inner = chung_lu(300, 1);
        let cached = HubCachedGraph::with_hub_count(inner.clone(), 40);
        for u in 0..300 {
            let mut a = StdRng::seed_from_u64(u as u64);
            let mut b = a.clone();
            for _ in 0..20 {
                assert_eq!(
                    cached.random_neighbor(u, &mut a),
                    inner.random_neighbor(u, &mut b)
                );
            }
            assert_eq!(a.next_u64(), b.next_u64(), "stream position at {u}");
        }
        let mut a = StdRng::seed_from_u64(9);
        let mut b = a.clone();
        for _ in 0..500 {
            assert_eq!(
                cached.sample_stationary(&mut a),
                inner.sample_stationary(&mut b)
            );
        }
    }

    #[test]
    fn membership_agrees_with_the_inner_backend() {
        let inner = chung_lu(120, 5);
        let cached = HubCachedGraph::with_hub_count(inner.clone(), 12);
        for u in 0..120 {
            for v in 0..120 {
                assert_eq!(
                    cached.contains_edge(u, v),
                    inner.contains_edge(u, v),
                    "membership ({u}, {v})"
                );
            }
        }
        assert!(!cached.contains_edge(0, 120));
        assert!(!cached.contains_edge(120, 0));
    }

    #[test]
    fn budget_builder_respects_the_byte_ceiling() {
        let inner = chung_lu(1000, 2);
        let budget = 2 << 10; // 2 KiB of adjacency = 512 entries
        let cached = HubCacheBuilder::new()
            .cache_budget_bytes(budget)
            .build(inner.clone());
        assert!(cached.hub_count() > 0, "2 KiB must afford some hubs");
        let adj_bytes = cached
            .hub_adj
            .len()
            .checked_mul(std::mem::size_of::<u32>())
            .unwrap();
        assert!(
            adj_bytes <= budget,
            "cached adjacency {adj_bytes} bytes exceeds the {budget} budget"
        );
        // Adding a count limit takes the smaller cache.
        let both = HubCacheBuilder::new()
            .cache_budget_bytes(budget)
            .hub_count(3)
            .build(inner);
        assert_eq!(both.hub_count(), 3);
    }

    #[test]
    fn default_policy_caches_a_64th_of_the_graph() {
        let inner = chung_lu(640, 4);
        let cached = HubCachedGraph::over(inner);
        assert_eq!(cached.hub_count(), 10);
        assert!(cached.hub_hit_fraction() > 0.0);
        assert!(cached.cache_bytes() > 0);
        assert!(Topology::memory_bytes(&cached) > cached.inner().memory_bytes());
    }

    #[test]
    fn hub_hit_fraction_is_the_cached_stationary_mass() {
        let inner = chung_lu(500, 6);
        let cached = HubCachedGraph::with_hub_count(inner.clone(), 30);
        let cached_degree: usize = (0..500)
            .filter(|&u| cached.is_hub(u))
            .map(|u| inner.degree(u))
            .sum();
        let want = cached_degree as f64 / inner.total_degree() as f64;
        assert!((cached.hub_hit_fraction() - want).abs() < 1e-12);
        // Full cache absorbs everything; empty cache nothing.
        assert_eq!(
            HubCachedGraph::with_hub_count(inner.clone(), 500).hub_hit_fraction(),
            1.0
        );
        assert_eq!(
            HubCachedGraph::with_hub_count(inner, 0).hub_hit_fraction(),
            0.0
        );
    }

    #[test]
    fn fill_is_thread_invariant() {
        let inner = chung_lu(800, 8);
        let reference = HubCachedGraph::with_hub_count(inner.clone(), 200);
        let previous = std::env::var_os("RUMOR_THREADS");
        std::env::set_var("RUMOR_THREADS", "3");
        let threaded = HubCachedGraph::with_hub_count(inner, 200);
        match previous {
            Some(value) => std::env::set_var("RUMOR_THREADS", value),
            None => std::env::remove_var("RUMOR_THREADS"),
        }
        assert_eq!(reference.hub_ids, threaded.hub_ids);
        assert_eq!(reference.hub_offsets, threaded.hub_offsets);
        assert_eq!(reference.hub_adj, threaded.hub_adj);
    }

    #[test]
    fn edgeless_graphs_degenerate_cleanly() {
        let inner = GeneratedGraph::gnp(50, 0.0, 1).unwrap();
        let cached = HubCachedGraph::over(inner);
        assert_eq!(cached.hub_hit_fraction(), 0.0);
        assert_eq!(cached.degree(0), 0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(cached.random_neighbor(0, &mut rng), None);
    }
}
