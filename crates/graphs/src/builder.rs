//! Incremental construction of [`Graph`] values.

use std::collections::HashSet;

use crate::error::{GraphError, Result};
use crate::graph::{Graph, VertexId};

/// Builder for [`Graph`].
///
/// Collects undirected edges, rejects self-loops and duplicates, and produces
/// the CSR representation in one pass at [`GraphBuilder::build`].
///
/// # Examples
///
/// ```
/// use rumor_graphs::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(2, 3)?;
/// let g = b.build();
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(1), 2);
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
    seen: HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Creates a builder for `n` vertices, reserving space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
            seen: HashSet::with_capacity(m),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the undirected edge `(u, v)` has already been added.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        let key = Self::key(u, v);
        self.seen.contains(&key)
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`,
    /// [`GraphError::SelfLoop`] if `u == v`, and
    /// [`GraphError::DuplicateEdge`] if the edge was added before.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                n: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let key = Self::key(u, v);
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge {
                u: key.0 as usize,
                v: key.1 as usize,
            });
        }
        self.edges.push(key);
        Ok(())
    }

    /// Adds the edge `(u, v)` if it is not already present, ignoring duplicates.
    ///
    /// Useful for generators whose natural description produces some edges
    /// more than once (e.g. overlapping cliques).
    ///
    /// Returns `true` if the edge was newly added.
    ///
    /// # Errors
    ///
    /// Returns the same range and self-loop errors as [`GraphBuilder::add_edge`].
    pub fn add_edge_dedup(&mut self, u: VertexId, v: VertexId) -> Result<bool> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Adds every edge of `edges`.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`GraphBuilder::add_edge`].
    pub fn add_edges<I>(&mut self, edges: I) -> Result<()>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(())
    }

    /// Adds all `k * (k - 1) / 2` edges of a clique over `vertices`,
    /// skipping edges that already exist.
    ///
    /// # Errors
    ///
    /// Returns range/self-loop errors if `vertices` contains an out-of-range
    /// index or a repeated vertex.
    pub fn add_clique(&mut self, vertices: &[VertexId]) -> Result<()> {
        for (i, &u) in vertices.iter().enumerate() {
            for &v in &vertices[i + 1..] {
                if u == v {
                    return Err(GraphError::SelfLoop { vertex: u });
                }
                self.add_edge_dedup(u, v)?;
            }
        }
        Ok(())
    }

    /// Finalizes the builder into an immutable CSR [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.n;
        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![0u32; acc];
        for &(u, v) in &self.edges {
            adjacency[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency list so neighbor lookups can binary search.
        for u in 0..n {
            adjacency[offsets[u]..offsets[u + 1]].sort_unstable();
        }
        Graph::from_csr(offsets, adjacency, self.edges.len())
    }

    fn key(u: VertexId, v: VertexId) -> (u32, u32) {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        (a as u32, b as u32)
    }
}

impl Extend<(VertexId, VertexId)> for GraphBuilder {
    /// Adds edges, panicking on invalid edges.
    ///
    /// Prefer [`GraphBuilder::add_edges`] when the input is untrusted.
    fn extend<T: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: T) {
        for (u, v) in iter {
            self.add_edge(u, v)
                .expect("invalid edge passed to GraphBuilder::extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_adjacency() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 4).unwrap();
        b.add_edge(0, 2).unwrap();
        b.add_edge(0, 3).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn duplicate_edge_rejected_in_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert!(matches!(
            b.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert!(matches!(
            b.add_edge(0, 1),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn add_edge_dedup_reports_whether_added() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge_dedup(0, 1).unwrap());
        assert!(!b.add_edge_dedup(1, 0).unwrap());
        assert_eq!(b.num_edges(), 1);
    }

    #[test]
    fn add_edge_dedup_still_rejects_self_loops() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_edge_dedup(2, 2),
            Err(GraphError::SelfLoop { vertex: 2 })
        ));
    }

    #[test]
    fn add_clique_creates_all_pairs() {
        let mut b = GraphBuilder::new(5);
        b.add_clique(&[1, 2, 3, 4]).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 0);
        for u in 1..5 {
            assert_eq!(g.degree(u), 3);
        }
    }

    #[test]
    fn add_clique_tolerates_existing_edges() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_clique(&[0, 1, 2]).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn add_edges_bulk() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(b.num_edges(), 3);
    }

    #[test]
    fn contains_edge_checks_normalized_key() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(2, 1).unwrap();
        assert!(b.contains_edge(1, 2));
        assert!(b.contains_edge(2, 1));
        assert!(!b.contains_edge(0, 1));
    }

    #[test]
    fn extend_adds_edges() {
        let mut b = GraphBuilder::new(3);
        b.extend([(0, 1), (1, 2)]);
        assert_eq!(b.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn extend_panics_on_invalid_edge() {
        let mut b = GraphBuilder::new(2);
        b.extend([(0, 5)]);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(10, 20);
        assert_eq!(b.num_vertices(), 10);
        b.add_edge(0, 9).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn built_graph_validates() {
        let mut b = GraphBuilder::new(6);
        b.add_clique(&[0, 1, 2]).unwrap();
        b.add_edge(2, 3).unwrap();
        b.add_edge(3, 4).unwrap();
        b.add_edge(4, 5).unwrap();
        let g = b.build();
        g.validate().unwrap();
        assert_eq!(g.num_edges(), 6);
    }
}
