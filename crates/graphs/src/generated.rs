//! The generated topology backend: seed-keyed random families whose edges
//! are derived on demand from a counter-based hash.
//!
//! [`GeneratedGraph`] supports two random families — **G(n, p)**
//! (Erdős–Rényi-style binomial degrees) and **Chung–Lu power-law** expected
//! degrees — at scales where a CSR build would spend gigabytes on adjacency
//! arrays. The backend stores only two `u32` prefix-sum tables (8 bytes per
//! vertex, independent of the edge count) and computes every adjacency query
//! from the vendored Philox stream module (`rand::stream`), keyed by the
//! construction seed.
//!
//! # Construction
//!
//! The family is an **erased configuration model**, the standard sparse
//! emulation of the target distributions, chosen because it is the one
//! construction whose adjacency is *locally* computable in `O(deg)` with
//! `O(n)` memory (independent per-pair coin flips would force an `O(n)` scan
//! per neighbor query, and an `O(n²)` degree pass):
//!
//! 1. **Degrees.** Every vertex `u` draws a stub count from
//!    `Binomial(n − 1, q_u)` using its own counter-based Philox stream
//!    (`q_u = p` for G(n, p); `q_u = w_u / (n − 1)` for Chung–Lu weights
//!    `w_u ∝ (u + 1)^{−1/(β−1)}`, capped at `√(d̄·n)`). This matches the
//!    degree distribution of the target model exactly in the G(n, p) case
//!    and in expectation (`E[deg u] ≈ w_u`) for Chung–Lu. The pass is
//!    embarrassingly parallel — each vertex's draw is a pure function of
//!    `(seed, u)`.
//! 2. **Pairing.** The `S = Σ stubs` stub endpoints are matched by a
//!    keyed pseudorandom permutation: a 4-round Feistel network whose round
//!    function is `philox2x64_6`, cycle-walked onto `[0, S)`. Stubs at
//!    positions `2k` and `2k + 1` of the shuffled order form an edge, so the
//!    partner of a stub is a pure `O(1)` function of `(seed, stub)` and the
//!    partner relation is an involution — membership is symmetric by
//!    construction. (If `S` is odd, the stub at the last position stays
//!    unmatched.)
//! 3. **Erasure.** Self-loops are dropped and parallel stub pairs merged;
//!    the stored per-vertex degrees (a second parallel pass) are the
//!    *simple*-graph degrees, so the backend presents an ordinary simple
//!    undirected graph.
//!
//! # Determinism contract
//!
//! The whole graph is a pure function of `(family parameters, seed)`:
//! construction thread counts, query order, and platform do not change a
//! single edge (all floating-point steps use only IEEE-exactly-rounded
//! operations — `+ − × ÷ sqrt` — no libm). [`GeneratedGraph::materialize`]
//! rebuilds the identical edge set as a CSR [`Graph`], and neighbor draws go
//! through the same degree-specialized sampler both other backends use
//! ([`crate::graph`]'s `index_word`/`sample_index`), so a simulation on a
//! `GeneratedGraph` is **bit-identical** to the same simulation on its
//! materialized CSR — pinned by `tests/generated_equivalence.rs` (structure
//! and draw streams) and `rumor-core`'s `tests/generated_topology.rs` (whole
//! simulations across protocols, engines, and thread counts).
//!
//! # Cost model
//!
//! Memory is `≈ 8n` bytes (two `u32` offset tables, plus a coarse owner
//! index of one `u32` per 1024 stubs) — for average degree `d̄` the
//! equivalent CSR footprint (`8m + 16n = (4d̄ + 16)n` bytes) is
//! `≈ (d̄/2 + 2)` times larger, an order of magnitude from `d̄ ≈ 16` up
//! (`BENCH_random.json` records the measured ratio — 22× at `d̄ = 40`).
//! The price is per-query work: a neighbor
//! query re-derives the vertex's stub partners (`O(deg)` Philox block
//! evaluations) and sorts them, so a draw costs microseconds instead of
//! nanoseconds. Prefer the CSR backend when the graph fits in memory and is
//! reused across many trials; prefer `GeneratedGraph` for scenario sweeps at
//! scales where the CSR does not fit.

use std::sync::OnceLock;

use rand::stream::{philox2x64_6, StreamKey, StreamRng};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::error::{GraphError, Result};
use crate::graph::{index_word, sample_index, Graph, VertexId};
use crate::topology::Topology;

/// Key-derivation constant for the per-seed Philox keys (arbitrary odd
/// tag; fixed forever — changing it would silently change every generated
/// graph).
const DERIVE_KEY: u64 = 0x52554D_4F525F47;
/// Purpose tag for the stub-pairing permutation key.
const PAIR_PURPOSE: u64 = 1;
/// Purpose tag for the per-vertex degree streams.
const DEGREE_PURPOSE: u64 = 2;
/// Feistel round count for the stub-pairing permutation (each round is one
/// `philox2x64_6` evaluation; 4 rounds of a keyed PRF give a pseudorandom
/// permutation by the Luby–Rackoff bound).
const FEISTEL_ROUNDS: u64 = 4;
/// Neighbor lists up to this many stubs are assembled on the stack; larger
/// (hub) vertices fall back to a heap buffer.
const STACK_NEIGHBORS: usize = 96;
/// Log₂ of the stub-block size of the coarse owner index: one `u32` per
/// 1024 stubs (0.4% of the offsets table) confines each stub→owner lookup
/// to a couple of cache lines instead of a full binary search over the
/// offsets table — the dominant cost of a partner query at 10⁷ vertices.
const COARSE_BITS: u32 = 10;

/// A seed-keyed generated random topology (see the module docs above):
/// G(n, p) or Chung–Lu power-law degrees, `O(n)` memory, adjacency derived
/// on demand from Philox, bit-identical to its materialized CSR build.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rumor_graphs::{GeneratedGraph, Topology};
///
/// // A sparse G(n, p) instance: 10⁵ vertices at ~12 expected degree in
/// // ~800 KiB, where the CSR build would hold ~10⁶ adjacency entries.
/// let g = GeneratedGraph::gnp(100_000, 12.0 / 99_999.0, 7)?;
/// assert_eq!(g.num_vertices(), 100_000);
/// assert!(g.memory_bytes() < 1 << 20);
///
/// // Sampling works exactly like the CSR backend.
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let v = g.sample_stationary(&mut rng);
/// assert!(g.degree(v) > 0);
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedGraph {
    model: Model,
    seed: u64,
    n: usize,
    /// Simple-graph edge count (post-erasure).
    num_edges: usize,
    /// The stub-pairing permutation (key + cycle-walking domain).
    pairing: Pairing,
    /// `stub_offsets[u]..stub_offsets[u + 1]` are vertex `u`'s stub ids.
    stub_offsets: Vec<u32>,
    /// Coarse owner index: `stub_coarse[b]` is the owner of stub `b << 10`
    /// (see [`COARSE_BITS`]), bracketing every owner lookup.
    stub_coarse: Vec<u32>,
    /// Prefix sums of the **simple** degrees — the same offset table the
    /// materialized CSR stores, which is what makes stationary sampling
    /// bit-identical across backends.
    slot_offsets: Vec<u32>,
    /// `Some(d)` iff every vertex has simple degree `d` (cached, as in CSR).
    regular: Option<usize>,
    /// Lazily computed bipartiteness (a BFS 2-coloring is `O(n + m)` hash
    /// evaluations — only paid if a caller actually asks).
    bipartite: OnceLock<bool>,
}

/// The supported random families with their derived constants.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
enum Model {
    /// Binomial degrees `Binomial(n − 1, p)` — the G(n, p) degree law.
    Gnp {
        /// Per-pair edge probability.
        p: f64,
    },
    /// Chung–Lu power-law expected degrees `w_u = min(scale · (n/(u+1))^γ,
    /// cap)` with `γ = 1/(exponent − 1)`.
    ChungLu {
        /// Power-law exponent `β > 2`.
        exponent: f64,
        /// Target average degree `d̄`.
        mean_degree: f64,
        /// `γ = 1 / (β − 1)`.
        gamma: f64,
        /// Normalization making the weights average to `d̄` (before capping).
        scale: f64,
        /// Maximum weight `√(d̄ · n)` (the classic Chung–Lu cap).
        cap: f64,
    },
}

/// The keyed stub-pairing permutation: a 4-round Feistel network over a
/// power-of-two domain, cycle-walked onto `[0, stubs)`. Encrypt maps a stub
/// id to its position in the shuffled order; positions `2k` / `2k + 1` are
/// partners.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Pairing {
    key: u64,
    /// Total stub count `S` (the permutation's codomain is `[0, S)`).
    stubs: u64,
    /// Bits per Feistel half; the walked domain is `2^(2 · half_bits)`.
    half_bits: u32,
}

impl Pairing {
    fn new(key: u64, stubs: u64) -> Self {
        // Smallest bit count with 2^bits >= stubs, split into two equal
        // Feistel halves (the walked domain is < 4 · stubs, so cycle walks
        // terminate in ~2 expected steps).
        let bits = (64 - (stubs.max(2) - 1).leading_zeros()).max(2);
        let half_bits = bits.div_ceil(2);
        Pairing {
            key,
            stubs,
            half_bits,
        }
    }

    #[inline]
    fn half_mask(&self) -> u64 {
        (1u64 << self.half_bits) - 1
    }

    /// The walked power-of-two domain size (test diagnostics).
    #[cfg(test)]
    fn domain(&self) -> u64 {
        1u64 << (2 * self.half_bits)
    }

    /// One Feistel encryption over the power-of-two domain.
    #[inline]
    fn encrypt(&self, x: u64) -> u64 {
        let mask = self.half_mask();
        let mut l = x >> self.half_bits;
        let mut r = x & mask;
        for round in 0..FEISTEL_ROUNDS {
            let f = philox2x64_6([r, round], self.key)[0] & mask;
            (l, r) = (r, l ^ f);
        }
        (l << self.half_bits) | r
    }

    /// The inverse of [`Pairing::encrypt`].
    #[inline]
    fn decrypt(&self, x: u64) -> u64 {
        let mask = self.half_mask();
        let mut l = x >> self.half_bits;
        let mut r = x & mask;
        for round in (0..FEISTEL_ROUNDS).rev() {
            let f = philox2x64_6([l, round], self.key)[0] & mask;
            (l, r) = (r ^ f, l);
        }
        (l << self.half_bits) | r
    }

    /// The shuffled position of stub `s` (cycle-walked bijection on
    /// `[0, stubs)`).
    #[inline]
    fn position(&self, s: u64) -> u64 {
        debug_assert!(s < self.stubs);
        let mut y = self.encrypt(s);
        while y >= self.stubs {
            y = self.encrypt(y);
        }
        y
    }

    /// The stub at shuffled position `t` (inverse of [`Pairing::position`]).
    #[inline]
    fn stub_at(&self, t: u64) -> u64 {
        debug_assert!(t < self.stubs);
        let mut y = self.decrypt(t);
        while y >= self.stubs {
            y = self.decrypt(y);
        }
        y
    }

    /// The partner stub of `s` under the pairing, or `None` for the single
    /// unmatched stub of an odd total. An involution:
    /// `partner(partner(s)) == Some(s)` whenever defined — which is what
    /// makes edge membership symmetric.
    #[inline]
    fn partner(&self, s: u64) -> Option<u64> {
        let pos = self.position(s);
        let mate = pos ^ 1;
        if mate >= self.stubs {
            return None;
        }
        Some(self.stub_at(mate))
    }
}

/// Deterministic `x^e` for `x > 0`, `0 ≤ e < 1`, via the binary expansion of
/// the exponent and repeated square roots. Every step is an IEEE
/// exactly-rounded operation (`sqrt`, `×`), so the result is bit-identical
/// on every conforming platform — unlike libm `powf`.
fn det_pow_frac(x: f64, e: f64) -> f64 {
    debug_assert!(x > 0.0 && (0.0..1.0).contains(&e));
    let mut result = 1.0f64;
    let mut frac = e;
    let mut base = x.sqrt();
    for _ in 0..64 {
        if frac == 0.0 {
            break;
        }
        frac *= 2.0; // exact: scaling by a power of two
        if frac >= 1.0 {
            frac -= 1.0; // exact: frac < 2
            result *= base;
        }
        base = base.sqrt();
    }
    result
}

/// Deterministic `x^k` for integer `k ≥ 0` by binary exponentiation
/// (multiplications only — no libm).
fn pow_int(x: f64, mut k: usize) -> f64 {
    let mut base = x;
    let mut acc = 1.0f64;
    while k > 0 {
        if k & 1 == 1 {
            acc *= base;
        }
        base *= base;
        k >>= 1;
    }
    acc
}

/// A uniform draw in `[0, 1)` with 53 random bits (the standard `u64 → f64`
/// construction; deterministic).
#[inline]
fn uniform_f64(rng: &mut StreamRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Exact `Binomial(trials, q)` sampling by chunked CDF inversion: the trial
/// count is split into chunks with `chunk · q ≤ 32` so the starting pmf
/// `(1 − q)^chunk ≥ e⁻³²` never underflows, and each chunk is inverted with
/// one uniform draw and the multiplicative pmf recurrence (a sum of
/// binomials with a shared `q` is the binomial of the summed trials, so the
/// chunking is distribution-exact). All arithmetic is `+ − × ÷` — platform
/// deterministic. `O(trials · q + #chunks)` expected time.
fn sample_binomial(rng: &mut StreamRng, trials: usize, q: f64) -> usize {
    if trials == 0 || q <= 0.0 {
        return 0;
    }
    if q >= 1.0 {
        return trials;
    }
    let max_chunk = ((32.0 / q) as usize).clamp(1, trials);
    let odds = q / (1.0 - q);
    let mut remaining = trials;
    let mut total = 0usize;
    while remaining > 0 {
        let chunk = remaining.min(max_chunk);
        let u = uniform_f64(rng);
        let mut pmf = pow_int(1.0 - q, chunk);
        let mut cdf = pmf;
        let mut k = 0usize;
        while u >= cdf && k < chunk {
            pmf *= ((chunk - k) as f64 / (k + 1) as f64) * odds;
            cdf += pmf;
            k += 1;
        }
        total += k;
        remaining -= chunk;
    }
    total
}

/// The vertex owning stub (or slot) `pos` under the prefix table `offsets`:
/// the unique `u` with `offsets[u] <= pos < offsets[u + 1]` (runs of equal
/// offsets — empty lists — are skipped, exactly as in the CSR backend).
#[inline]
fn owner_of(offsets: &[u32], pos: u64) -> usize {
    offsets.partition_point(|&o| u64::from(o) <= pos) - 1
}

/// Borrowed view of the stub tables: the offsets plus the coarse owner
/// index that brackets every lookup (see [`COARSE_BITS`]).
#[derive(Clone, Copy)]
struct StubTable<'a> {
    offsets: &'a [u32],
    coarse: &'a [u32],
}

impl StubTable<'_> {
    /// The vertex owning stub `t` — the same value a full
    /// [`owner_of`] search returns, but confined by the coarse index to the
    /// couple of cache lines between two block anchors.
    #[inline]
    fn owner(&self, t: u64) -> usize {
        let b = (t >> COARSE_BITS) as usize;
        let lo = self.coarse[b] as usize;
        let hi = self
            .coarse
            .get(b + 1)
            .map_or(self.offsets.len() - 1, |&v| v as usize);
        // The answer lies in [lo, hi]; entries up to index lo are <= t and
        // entries past index hi + 1 are > t, so counting within the
        // bracket reproduces the global partition point.
        let slice = &self.offsets[lo + 1..(hi + 2).min(self.offsets.len())];
        lo + slice.partition_point(|&o| u64::from(o) <= t)
    }
}

/// Collects the sorted, deduplicated simple neighbors of `u` into `buf`
/// (which must hold at least `u`'s stub count) and returns how many there
/// are. Shared by the construction degree pass and every query, so the two
/// can never disagree.
fn neighbors_into(stubs: &StubTable<'_>, pairing: &Pairing, u: usize, buf: &mut [u32]) -> usize {
    let lo = u64::from(stubs.offsets[u]);
    let hi = u64::from(stubs.offsets[u + 1]);
    let mut len = 0usize;
    for s in lo..hi {
        if let Some(t) = pairing.partner(s) {
            let v = stubs.owner(t);
            if v != u {
                buf[len] = v as u32;
                len += 1;
            }
        }
    }
    let filled = &mut buf[..len];
    filled.sort_unstable();
    // In-place dedup of the sorted run (parallel stub pairs collapse).
    let mut out = 0usize;
    for i in 0..len {
        if i == 0 || buf[i] != buf[out - 1] {
            buf[out] = buf[i];
            out += 1;
        }
    }
    out
}

/// The worker count the parallel construction passes use: `RUMOR_THREADS`
/// if set (the same knob the simulation engines honor), else the host's
/// available parallelism.
pub(crate) fn configured_threads() -> usize {
    std::env::var("RUMOR_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
        })
}

/// Splits `0..n` into contiguous ranges and runs `f` on each range in a
/// scoped worker (honoring `RUMOR_THREADS` like the simulation engines);
/// each worker writes a disjoint sub-slice of `out`, so the pass is
/// deterministic at every thread count.
fn par_fill<F: Fn(usize, &mut [u32]) + Sync>(out: &mut [u32], f: F) {
    let n = out.len();
    let workers = configured_threads().min(n.div_ceil(16_384)).max(1);
    if workers == 1 {
        f(0, out);
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (i, slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || f(i * chunk, slice));
        }
    });
}

impl GeneratedGraph {
    fn invalid(reason: &str) -> GraphError {
        GraphError::InvalidParameters {
            reason: reason.into(),
        }
    }

    /// Derives an independent Philox key for one purpose from the
    /// construction seed and the model discriminant.
    fn derive_key(seed: u64, model_tag: u64, purpose: u64) -> u64 {
        philox2x64_6([seed, (model_tag << 32) | purpose], DERIVE_KEY)[0]
    }

    /// A G(n, p)-style random graph: every vertex's degree is
    /// `Binomial(n − 1, p)` (the exact G(n, p) degree law) and the stubs are
    /// matched by the seed-keyed pairing — the standard sparse G(n, p)
    /// emulation (see the module docs for why independent per-pair coins
    /// cannot support `O(n)`-memory local queries).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] if `n == 0` or `p` is
    /// outside `[0, 1]`, and [`GraphError::TooLarge`] if `n` exceeds `u32`
    /// vertex addressing or the (expected or sampled) stub total exceeds
    /// `u32` slot addressing — lower `p` or `n`.
    pub fn gnp(n: usize, p: f64, seed: u64) -> Result<Self> {
        if n == 0 {
            return Err(Self::invalid("gnp requires n >= 1"));
        }
        if !(0.0..=1.0).contains(&p) {
            return Err(Self::invalid("gnp requires p in [0, 1]"));
        }
        Self::build(Model::Gnp { p }, n, seed)
    }

    /// [`GeneratedGraph::gnp`] parameterized by expected average degree
    /// (`p = mean_degree / (n − 1)`), the natural way to hold density fixed
    /// across a size sweep.
    ///
    /// # Errors
    ///
    /// As for [`GeneratedGraph::gnp`] (in particular `mean_degree` must be
    /// in `[0, n − 1]`).
    pub fn gnp_with_mean_degree(n: usize, mean_degree: f64, seed: u64) -> Result<Self> {
        if n < 2 {
            return Err(Self::invalid("gnp_with_mean_degree requires n >= 2"));
        }
        Self::gnp(n, mean_degree / (n - 1) as f64, seed)
    }

    /// A Chung–Lu power-law random graph: vertex `u` has expected degree
    /// `w_u = min(scale · (n / (u + 1))^{1/(β−1)}, √(d̄·n))`, normalized so
    /// the uncapped weights average to `mean_degree`. Lower-indexed vertices
    /// are the hubs (vertex 0 is the largest). This is the degree profile of
    /// the power-law social networks studied in the rumor-spreading
    /// literature (exponents β ≈ 2–3).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] if `n < 2`, the exponent is
    /// not `> 2`, or `mean_degree` is not in `(0, n − 1]`, and
    /// [`GraphError::TooLarge`] if the (expected or sampled) stub total
    /// exceeds `u32` slot addressing.
    pub fn chung_lu(n: usize, exponent: f64, mean_degree: f64, seed: u64) -> Result<Self> {
        if n < 2 {
            return Err(Self::invalid("chung_lu requires n >= 2"));
        }
        // NaN parameters fail these explicit comparisons too.
        if exponent.is_nan() || exponent <= 2.0 || !exponent.is_finite() {
            return Err(Self::invalid("chung_lu requires exponent > 2"));
        }
        if mean_degree.is_nan() || mean_degree <= 0.0 || mean_degree > (n - 1) as f64 {
            return Err(Self::invalid("chung_lu requires mean_degree in (0, n-1]"));
        }
        let gamma = 1.0 / (exponent - 1.0);
        // Normalize the raw weights (n/(u+1))^γ to average mean_degree. The
        // sum is accumulated in ascending vertex order — a fixed, documented
        // order, so it is part of the determinism contract.
        let mut raw_sum = 0.0f64;
        for u in 0..n {
            raw_sum += det_pow_frac(n as f64 / (u + 1) as f64, gamma);
        }
        let scale = mean_degree * n as f64 / raw_sum;
        let cap = (mean_degree * n as f64).sqrt();
        Self::build(
            Model::ChungLu {
                exponent,
                mean_degree,
                gamma,
                scale,
                cap,
            },
            n,
            seed,
        )
    }

    /// The expected degree of `u` under the model: `p · (n − 1)` for
    /// G(n, p), the (capped) Chung–Lu weight `w_u` otherwise. Erasure of
    /// self-loops and parallel stubs pulls realized degrees slightly below
    /// this; the property tests bound the gap.
    pub fn expected_degree(&self, u: VertexId) -> f64 {
        (self.n - 1) as f64 * self.success_probability(u)
    }

    /// The per-trial success probability `q_u` of `u`'s binomial stub draw.
    fn success_probability(&self, u: VertexId) -> f64 {
        debug_assert!(u < self.n);
        match self.model {
            Model::Gnp { p } => p,
            Model::ChungLu {
                gamma, scale, cap, ..
            } => {
                let w = (scale * det_pow_frac(self.n as f64 / (u + 1) as f64, gamma)).min(cap);
                (w / (self.n - 1) as f64).min(1.0)
            }
        }
    }

    fn build(model: Model, n: usize, seed: u64) -> Result<Self> {
        const STUB_LIMIT: u64 = u32::MAX as u64;
        if n > u32::MAX as usize {
            return Err(GraphError::TooLarge {
                what: "vertex count".into(),
                value: n as u64,
                limit: STUB_LIMIT,
            });
        }
        // Fail fast when the *expected* stub total is already far beyond
        // u32 slot addressing: the degree pass costs O(stub total) work, so
        // waiting for the exact prefix-sum check below would burn minutes of
        // sampling before reporting an error the parameters imply up front.
        // The floor is a certain lower bound on E[S] (for Chung–Lu, every
        // capped weight is at least min(scale, cap)), and binomial
        // concentration makes S ≤ limit at E[S] > 1.25 · limit
        // astronomically unlikely, so nothing representable is rejected.
        let expected_stub_floor = match model {
            Model::Gnp { p } => n as f64 * (n - 1) as f64 * p,
            Model::ChungLu { scale, cap, .. } => n as f64 * scale.min(cap).min((n - 1) as f64),
        };
        if expected_stub_floor > 1.25 * STUB_LIMIT as f64 {
            return Err(GraphError::TooLarge {
                what: "expected stub total".into(),
                value: expected_stub_floor as u64,
                limit: STUB_LIMIT,
            });
        }
        let model_tag = match model {
            Model::Gnp { .. } => 1,
            Model::ChungLu { .. } => 2,
        };
        let degree_key = StreamKey::from_seed(Self::derive_key(seed, model_tag, DEGREE_PURPOSE));
        let shell = GeneratedGraph {
            model,
            seed,
            n,
            num_edges: 0,
            pairing: Pairing::new(Self::derive_key(seed, model_tag, PAIR_PURPOSE), 0),
            stub_offsets: Vec::new(),
            stub_coarse: Vec::new(),
            slot_offsets: Vec::new(),
            regular: None,
            bipartite: OnceLock::new(),
        };

        // Pass 1 (parallel): per-vertex stub degrees, each a pure function
        // of (seed, u) — one counter-based stream per vertex. Counts are
        // written straight into the offsets table (position u + 1) and
        // prefix-summed in place, so construction never allocates a
        // separate degree vector — peak RSS stays at the two tables the
        // finished graph keeps.
        let mut stub_offsets = vec![0u32; n + 1];
        par_fill(&mut stub_offsets[1..], |base, out| {
            let round = degree_key.round_key(0);
            for (i, slot) in out.iter_mut().enumerate() {
                let u = base + i;
                let q = shell.success_probability(u);
                let mut stream = round.stream(u as u64);
                *slot = sample_binomial(&mut stream, n - 1, q) as u32;
            }
        });
        let mut total: u64 = 0;
        for slot in stub_offsets.iter_mut().skip(1) {
            total += u64::from(*slot);
            if total > STUB_LIMIT {
                // The sampled total wandered past the limit even though the
                // expectation sat below the fast-fail threshold: reject with
                // the same typed error instead of wrapping the u32 table.
                return Err(GraphError::TooLarge {
                    what: "sampled stub total".into(),
                    value: total,
                    limit: STUB_LIMIT,
                });
            }
            *slot = total as u32;
        }
        let pairing = Pairing::new(Self::derive_key(seed, model_tag, PAIR_PURPOSE), total);

        // The coarse owner index: one anchor per stub block, built by a
        // single monotone sweep with exactly `owner_of`'s tie semantics.
        let blocks = (total >> COARSE_BITS) as usize + 1;
        let mut stub_coarse = Vec::with_capacity(blocks);
        let mut anchor = 0usize;
        for b in 0..blocks {
            let t = (b as u64) << COARSE_BITS;
            while anchor + 1 < stub_offsets.len() && u64::from(stub_offsets[anchor + 1]) <= t {
                anchor += 1;
            }
            stub_coarse.push(anchor as u32);
        }

        // Pass 2 (parallel): simple degrees through the shared
        // enumerate-sort-dedup path, so stored degrees and query-time
        // neighbor lists can never disagree. Same in-place prefix trick.
        let mut slot_offsets = vec![0u32; n + 1];
        let stubs_ref = StubTable {
            offsets: &stub_offsets,
            coarse: &stub_coarse,
        };
        let pairing_ref = &pairing;
        par_fill(&mut slot_offsets[1..], |base, out| {
            let mut buf: Vec<u32> = Vec::new();
            for (i, slot) in out.iter_mut().enumerate() {
                let u = base + i;
                let stubs = (stubs_ref.offsets[u + 1] - stubs_ref.offsets[u]) as usize;
                if buf.len() < stubs {
                    buf.resize(stubs, 0);
                }
                *slot = neighbors_into(&stubs_ref, pairing_ref, u, &mut buf) as u32;
            }
        });
        let mut slots: u64 = 0;
        let mut max_degree = 0u32;
        let first = slot_offsets.get(1).copied().unwrap_or(0);
        let mut regular = true;
        for slot in slot_offsets.iter_mut().skip(1) {
            let d = *slot;
            max_degree = max_degree.max(d);
            regular &= d == first;
            slots += u64::from(d);
            *slot = slots as u32; // slots <= total <= u32::MAX
        }
        if max_degree as usize > crate::graph::MAX_SAMPLER_DEGREE {
            return Err(Self::invalid(
                "generated graph's maximum degree exceeds the sampler word range",
            ));
        }
        debug_assert!(slots.is_multiple_of(2), "simple degree total must be even");
        Ok(GeneratedGraph {
            model,
            seed,
            n,
            num_edges: (slots / 2) as usize,
            pairing,
            stub_offsets,
            stub_coarse,
            slot_offsets,
            regular: regular.then_some(first as usize),
            bipartite: OnceLock::new(),
        })
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A short stable family name (for bench/report labels).
    pub fn family_name(&self) -> &'static str {
        match self.model {
            Model::Gnp { .. } => "gnp",
            Model::ChungLu { .. } => "chung-lu",
        }
    }

    /// The Chung–Lu power-law exponent, if this is a Chung–Lu instance.
    pub fn power_law_exponent(&self) -> Option<f64> {
        match self.model {
            Model::Gnp { .. } => None,
            Model::ChungLu { exponent, .. } => Some(exponent),
        }
    }

    /// The model's target average degree: `p · (n − 1)` for G(n, p), the
    /// configured pre-cap mean weight for Chung–Lu. Realized average degree
    /// sits slightly below this (weight capping and stub erasure).
    pub fn target_mean_degree(&self) -> f64 {
        match self.model {
            Model::Gnp { p } => p * (self.n - 1) as f64,
            Model::ChungLu { mean_degree, .. } => mean_degree,
        }
    }

    /// Vertex `u`'s stub count (its degree before self-loop/parallel-edge
    /// erasure). Bounds the work of one neighbor query.
    pub fn stub_degree(&self, u: VertexId) -> usize {
        (self.stub_offsets[u + 1] - self.stub_offsets[u]) as usize
    }

    /// Collects `u`'s sorted, deduplicated simple neighbors into `buf`
    /// (which must hold at least [`GeneratedGraph::stub_degree`]`(u)`
    /// entries) and returns how many there are — always exactly
    /// `self.degree(u)`. The hub-cache construction pass uses this to
    /// materialize exact adjacency through the same enumeration path every
    /// query takes, so the cache can never disagree with the hashed path.
    pub(crate) fn neighbors_into_buf(&self, u: VertexId, buf: &mut [u32]) -> usize {
        let table = StubTable {
            offsets: &self.stub_offsets,
            coarse: &self.stub_coarse,
        };
        neighbors_into(&table, &self.pairing, u, buf)
    }

    /// Maximum simple degree over all vertices (`None` only for `n == 0`,
    /// which the constructors reject).
    pub fn max_degree(&self) -> Option<usize> {
        (0..self.n).map(|u| self.degree(u)).max()
    }

    /// Whether `(u, v)` is an edge — `O(deg)` (re-derives the smaller-stub
    /// endpoint's neighbor list). Symmetric by the pairing involution; the
    /// property tests pin `contains_edge(u, v) == contains_edge(v, u)`.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u >= self.n || v >= self.n || u == v {
            return false;
        }
        let (probe, other) = if self.stub_degree(u) <= self.stub_degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.with_neighbors(probe, |ns| ns.binary_search(&(other as u32)).is_ok())
    }

    /// Runs `f` on `u`'s sorted simple neighbor list (assembled on the
    /// stack for ordinary vertices, on the heap for hubs beyond
    /// [`STACK_NEIGHBORS`] stubs).
    fn with_neighbors<T>(&self, u: VertexId, f: impl FnOnce(&[u32]) -> T) -> T {
        let table = StubTable {
            offsets: &self.stub_offsets,
            coarse: &self.stub_coarse,
        };
        let stubs = self.stub_degree(u);
        if stubs <= STACK_NEIGHBORS {
            let mut buf = [0u32; STACK_NEIGHBORS];
            let len = neighbors_into(&table, &self.pairing, u, &mut buf);
            debug_assert_eq!(len, self.degree(u));
            f(&buf[..len])
        } else {
            let mut buf = vec![0u32; stubs];
            let len = neighbors_into(&table, &self.pairing, u, &mut buf);
            debug_assert_eq!(len, self.degree(u));
            f(&buf[..len])
        }
    }

    /// The `i`-th neighbor of `u` in ascending (sorted) order — exactly the
    /// value the materialized CSR stores at `adjacency[offsets[u] + i]`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `i` is out of range.
    pub fn nth_neighbor(&self, u: VertexId, i: usize) -> VertexId {
        self.with_neighbors(u, |ns| ns[i] as VertexId)
    }

    /// Builds the CSR [`Graph`] with the identical vertex numbering and edge
    /// set — the differential-testing anchor. Intended for tests and small
    /// instances; the backend exists precisely because this does not fit in
    /// memory at target scales.
    ///
    /// # Errors
    ///
    /// Propagates builder errors (none are expected: the derived edge set is
    /// simple by construction).
    pub fn materialize(&self) -> Result<Graph> {
        let mut b = crate::builder::GraphBuilder::with_capacity(self.n, self.num_edges);
        for u in 0..self.n {
            self.with_neighbors(u, |ns| -> Result<()> {
                for &v in ns {
                    let v = v as usize;
                    if u < v {
                        b.add_edge(u, v)?;
                    }
                }
                Ok(())
            })?;
        }
        Ok(b.build())
    }

    /// The byte footprint the equivalent CSR build would need: adjacency
    /// (`2m` u32 entries), offsets (`n + 1` u32), and the per-vertex 12-byte
    /// sampler table. This is the length-based floor of
    /// [`Graph::memory_bytes`] (which reports capacities), so the bench's
    /// memory-ratio claims are conservative.
    pub fn csr_equivalent_bytes(&self) -> usize {
        2 * self.num_edges * std::mem::size_of::<u32>()
            + (self.n + 1) * std::mem::size_of::<u32>()
            + self.n * 12
    }

    /// BFS 2-coloring over every component (identical semantics to
    /// [`crate::algorithms::is_bipartite`] on the materialized CSR).
    fn compute_bipartite(&self) -> bool {
        let mut color = vec![u8::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        for start in 0..self.n {
            if color[start] != u8::MAX {
                continue;
            }
            color[start] = 0;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                let cu = color[u];
                let conflict = self.with_neighbors(u, |ns| {
                    for &v in ns {
                        let v = v as usize;
                        if color[v] == u8::MAX {
                            color[v] = 1 - cu;
                            queue.push_back(v);
                        } else if color[v] == cu {
                            return true;
                        }
                    }
                    false
                });
                if conflict {
                    return false;
                }
            }
        }
        true
    }
}

impl Topology for GeneratedGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn degree(&self, u: VertexId) -> usize {
        (self.slot_offsets[u + 1] - self.slot_offsets[u]) as usize
    }

    fn for_each_neighbor(&self, u: VertexId, mut f: impl FnMut(VertexId)) {
        self.with_neighbors(u, |ns| {
            for &v in ns {
                f(v as VertexId);
            }
        });
    }

    #[inline]
    fn random_neighbor<R: Rng + ?Sized>(&self, u: VertexId, rng: &mut R) -> Option<VertexId> {
        let d = self.degree(u);
        if d == 0 {
            return None;
        }
        let i = sample_index(index_word(d), rng);
        Some(self.nth_neighbor(u, i as usize))
    }

    #[inline]
    fn random_neighbor_nonisolated<R: Rng + ?Sized>(&self, u: VertexId, rng: &mut R) -> VertexId {
        let d = self.degree(u);
        assert!(d != 0, "random_neighbor_nonisolated on isolated vertex {u}");
        let i = sample_index(index_word(d), rng);
        self.nth_neighbor(u, i as usize)
    }

    #[inline]
    fn random_neighbor_with<R: Rng, F: FnOnce() -> R>(
        &self,
        u: VertexId,
        make_rng: F,
    ) -> Option<VertexId> {
        let d = self.degree(u);
        if d == 0 {
            return None;
        }
        if d == 1 {
            // Forced outcome; under counter-based streams the unused draw is
            // simply never computed (see `Graph::random_neighbor_with`).
            return Some(self.nth_neighbor(u, 0));
        }
        let mut rng = make_rng();
        let i = sample_index(index_word(d), &mut rng);
        Some(self.nth_neighbor(u, i as usize))
    }

    fn sample_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> VertexId {
        assert!(
            self.num_edges > 0,
            "stationary sampling undefined without edges"
        );
        let pos = rng.gen_range(0..2 * self.num_edges);
        owner_of(&self.slot_offsets, pos as u64)
    }

    fn sample_stationary_into<R: Rng + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
        out: &mut Vec<u32>,
    ) {
        assert!(
            self.num_edges > 0,
            "stationary sampling undefined without edges"
        );
        let slots = 2 * self.num_edges;
        out.clear();
        out.reserve(count);
        if let Some(d) = self.regular {
            // Mirrors the CSR regular fast path bit for bit.
            out.extend((0..count).map(|_| (rng.gen_range(0..slots) / d) as u32));
        } else {
            out.extend(
                (0..count)
                    .map(|_| owner_of(&self.slot_offsets, rng.gen_range(0..slots) as u64) as u32),
            );
        }
    }

    fn is_bipartite(&self) -> bool {
        *self.bipartite.get_or_init(|| self.compute_bipartite())
    }

    fn regular_degree(&self) -> Option<usize> {
        self.regular
    }

    fn memory_bytes(&self) -> usize {
        self.stub_offsets.capacity() * std::mem::size_of::<u32>()
            + self.slot_offsets.capacity() * std::mem::size_of::<u32>()
            + self.stub_coarse.capacity() * std::mem::size_of::<u32>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pairing_is_an_involution_without_fixed_points() {
        for stubs in [2u64, 3, 7, 64, 65, 1000] {
            for key in [0u64, 1, 0xDEAD_BEEF] {
                let p = Pairing::new(key, stubs);
                assert!(p.domain() >= stubs);
                for s in 0..stubs {
                    // position/stub_at invert each other.
                    assert_eq!(p.stub_at(p.position(s)), s, "S={stubs} key={key}");
                    match p.partner(s) {
                        Some(t) => {
                            assert_ne!(t, s, "a stub cannot partner itself");
                            assert_eq!(p.partner(t), Some(s), "not an involution");
                        }
                        None => {
                            assert!(stubs % 2 == 1, "unmatched stub in an even total");
                            assert_eq!(p.position(s), stubs - 1);
                        }
                    }
                }
                // Exactly one unmatched stub iff S is odd.
                let unmatched = (0..stubs).filter(|&s| p.partner(s).is_none()).count();
                assert_eq!(unmatched as u64, stubs % 2);
            }
        }
    }

    #[test]
    fn det_pow_frac_matches_powf_closely() {
        for &(x, e) in &[
            (2.0, 0.5),
            (10.0, 0.25),
            (1.0, 0.9),
            (123_456.0, 1.0 / 1.5),
            (3.3, 0.666_666),
        ] {
            let got = det_pow_frac(x, e);
            let want = f64::powf(x, e);
            assert!(
                (got - want).abs() <= 1e-12 * want.max(1.0),
                "{x}^{e}: {got} vs {want}"
            );
        }
        assert_eq!(det_pow_frac(7.0, 0.0), 1.0);
    }

    #[test]
    fn binomial_sampler_matches_moments() {
        let key = StreamKey::from_seed(99).round_key(0);
        let (trials, q) = (500usize, 0.03f64);
        let draws = 4000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for i in 0..draws {
            let k = sample_binomial(&mut key.stream(i), trials, q) as f64;
            sum += k;
            sum_sq += k * k;
        }
        let mean = sum / draws as f64;
        let var = sum_sq / draws as f64 - mean * mean;
        let want_mean = trials as f64 * q;
        let want_var = want_mean * (1.0 - q);
        assert!((mean - want_mean).abs() < 0.5, "mean {mean} vs {want_mean}");
        assert!((var - want_var).abs() < 2.0, "var {var} vs {want_var}");
        // Extremes are exact.
        assert_eq!(sample_binomial(&mut key.stream(0), 50, 0.0), 0);
        assert_eq!(sample_binomial(&mut key.stream(0), 50, 1.0), 50);
        assert_eq!(sample_binomial(&mut key.stream(0), 0, 0.7), 0);
    }

    #[test]
    fn coarse_owner_index_matches_the_full_search() {
        // Hub-heavy Chung–Lu instances give offset tables with multi-block
        // rows *and* runs of empty rows — the two shapes the coarse
        // bracket must handle. Every stub's owner must match the plain
        // partition-point search.
        for g in [
            GeneratedGraph::chung_lu(3000, 2.2, 6.0, 1).unwrap(),
            GeneratedGraph::gnp(500, 0.01, 2).unwrap(),
            GeneratedGraph::gnp(40, 0.9, 3).unwrap(),
        ] {
            let table = StubTable {
                offsets: &g.stub_offsets,
                coarse: &g.stub_coarse,
            };
            let total = u64::from(*g.stub_offsets.last().unwrap());
            for t in 0..total {
                assert_eq!(
                    table.owner(t),
                    owner_of(&g.stub_offsets, t),
                    "owner of stub {t} ({})",
                    g.family_name()
                );
            }
        }
    }

    #[test]
    fn construction_is_a_pure_function_of_parameters() {
        let a = GeneratedGraph::gnp(300, 0.03, 5).unwrap();
        let b = GeneratedGraph::gnp(300, 0.03, 5).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.slot_offsets, b.slot_offsets);
        assert_eq!(a.stub_offsets, b.stub_offsets);
        // Thread counts cannot change the pass output: force one worker,
        // restoring whatever setting the process was launched with (the CI
        // invariance jobs pin RUMOR_THREADS for the whole run).
        let previous = std::env::var_os("RUMOR_THREADS");
        std::env::set_var("RUMOR_THREADS", "1");
        let c = GeneratedGraph::gnp(300, 0.03, 5).unwrap();
        match previous {
            Some(value) => std::env::set_var("RUMOR_THREADS", value),
            None => std::env::remove_var("RUMOR_THREADS"),
        }
        assert_eq!(a.slot_offsets, c.slot_offsets);
    }

    #[test]
    fn degree_sum_is_twice_the_edge_count() {
        for seed in 0..3u64 {
            let g = GeneratedGraph::gnp(250, 0.04, seed).unwrap();
            let total: usize = (0..g.num_vertices()).map(|u| g.degree(u)).sum();
            assert_eq!(total, 2 * g.num_edges());
            let g = GeneratedGraph::chung_lu(250, 2.5, 6.0, seed).unwrap();
            let total: usize = (0..g.num_vertices()).map(|u| g.degree(u)).sum();
            assert_eq!(total, 2 * g.num_edges());
        }
    }

    #[test]
    fn neighbor_lists_are_sorted_dedup_and_loop_free() {
        let g = GeneratedGraph::chung_lu(400, 2.2, 8.0, 3).unwrap();
        for u in 0..g.num_vertices() {
            let mut ns = Vec::new();
            g.for_each_neighbor(u, |v| ns.push(v));
            assert_eq!(ns.len(), g.degree(u), "degree mismatch at {u}");
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted/dup at {u}");
            assert!(!ns.contains(&u), "self-loop at {u}");
            for &v in &ns {
                assert!(g.contains_edge(u, v) && g.contains_edge(v, u));
            }
        }
    }

    #[test]
    fn hubs_get_hub_degrees_under_chung_lu() {
        let g = GeneratedGraph::chung_lu(2000, 2.5, 6.0, 11).unwrap();
        // Vertex 0 is the heaviest; its expected degree dwarfs the tail's.
        assert!(g.expected_degree(0) > 10.0 * g.expected_degree(1999));
        assert!(g.degree(0) > g.degree(1999));
        assert!(g.max_degree().unwrap() >= g.degree(0));
        assert_eq!(g.power_law_exponent(), Some(2.5));
        assert_eq!(g.family_name(), "chung-lu");
    }

    #[test]
    fn constructors_reject_invalid_parameters() {
        assert!(GeneratedGraph::gnp(0, 0.5, 0).is_err());
        assert!(GeneratedGraph::gnp(10, -0.1, 0).is_err());
        assert!(GeneratedGraph::gnp(10, 1.5, 0).is_err());
        assert!(GeneratedGraph::gnp_with_mean_degree(1, 1.0, 0).is_err());
        assert!(GeneratedGraph::chung_lu(1, 2.5, 1.0, 0).is_err());
        assert!(GeneratedGraph::chung_lu(10, 2.0, 3.0, 0).is_err());
        assert!(GeneratedGraph::chung_lu(10, 2.5, 0.0, 0).is_err());
        assert!(GeneratedGraph::chung_lu(10, 2.5, 100.0, 0).is_err());
        assert!(GeneratedGraph::gnp(10, f64::NAN, 0).is_err());
    }

    #[test]
    fn overflowing_stub_totals_fail_fast_with_too_large() {
        // n·(n−1)·p ≈ 10¹⁰ stubs — far past u32 slot addressing. Sampling
        // that many stubs costs ~10¹⁰ operations, so the regression test
        // only passes quickly because the expected-total check rejects the
        // spec *before* the degree pass (the bug was a silent u32 wrap at
        // prefix-sum time after minutes of sampling).
        let t0 = std::time::Instant::now();
        let err = GeneratedGraph::gnp(100_000, 1.0, 1).unwrap_err();
        assert!(
            matches!(
                err,
                GraphError::TooLarge { ref what, value, limit }
                    if what == "expected stub total"
                        && value > limit
                        && limit == u64::from(u32::MAX)
            ),
            "want TooLarge, got {err:?}"
        );
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "overflow rejection must not sample the degree pass"
        );

        // Same fast path for a Chung–Lu spec whose weight floor already
        // certifies overflow (n = 10⁶ at mean degree 3·10⁴).
        let err = GeneratedGraph::chung_lu(1_000_000, 2.5, 30_000.0, 1).unwrap_err();
        assert!(
            matches!(err, GraphError::TooLarge { ref what, .. } if what == "expected stub total"),
            "want TooLarge, got {err:?}"
        );

        // Representable specs at the same n are untouched.
        assert!(GeneratedGraph::gnp_with_mean_degree(100_000, 12.0, 1).is_ok());
    }

    #[test]
    fn empty_and_extreme_probabilities() {
        let empty = GeneratedGraph::gnp(50, 0.0, 1).unwrap();
        assert_eq!(empty.num_edges(), 0);
        assert_eq!(empty.degree(7), 0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(empty.random_neighbor(0, &mut rng), None);
        assert!(empty.is_bipartite());
        assert_eq!(empty.regular_degree(), Some(0));
        // n = 1: no possible stubs.
        let single = GeneratedGraph::gnp(1, 0.9, 1).unwrap();
        assert_eq!(single.num_edges(), 0);
    }

    #[test]
    fn memory_is_linear_in_n_not_m() {
        let sparse = GeneratedGraph::gnp_with_mean_degree(20_000, 4.0, 2).unwrap();
        let dense = GeneratedGraph::gnp_with_mean_degree(20_000, 24.0, 2).unwrap();
        assert!(dense.num_edges() > 4 * sparse.num_edges());
        // The offset tables are the same size either way; only the coarse
        // owner index (one u32 per 1024 stubs, ~0.4% of a CSR adjacency)
        // grows with density.
        assert!(dense.memory_bytes() <= sparse.memory_bytes() + sparse.memory_bytes() / 20);
        // And the CSR-equivalent footprint grows with m.
        assert!(dense.csr_equivalent_bytes() > 3 * sparse.csr_equivalent_bytes());
        assert!(dense.csr_equivalent_bytes() > 10 * dense.memory_bytes());
    }

    #[test]
    fn stationary_sampling_respects_empty_lists_and_degree_bias() {
        let g = GeneratedGraph::gnp(120, 0.02, 9).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2_000 {
            let v = g.sample_stationary(&mut rng);
            assert!(g.degree(v) > 0, "sampled isolated vertex {v}");
        }
        let mut bulk = Vec::new();
        g.sample_stationary_into(300, &mut StdRng::seed_from_u64(8), &mut bulk);
        let mut singles_rng = StdRng::seed_from_u64(8);
        let singles: Vec<u32> = (0..300)
            .map(|_| g.sample_stationary(&mut singles_rng) as u32)
            .collect();
        assert_eq!(bulk, singles, "bulk must replay single draws");
    }
}
