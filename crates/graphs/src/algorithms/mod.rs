//! Graph algorithms used by the experiments: traversal, connectivity,
//! distance/diameter computation, bipartiteness, degree statistics, cut
//! conductance, and spectral-gap / mixing-time estimates.

mod bipartite;
mod conductance;
mod degree;
mod spectral;
mod traversal;

pub use bipartite::{bipartition, bipartition_sizes, crosses, is_bipartite, Side};
pub use conductance::{cut_conductance, edge_boundary, graph_conductance_estimate};
pub use degree::{degree_histogram, DegreeStats};
pub use spectral::{spectral_gap_estimate, SpectralEstimate};
pub use traversal::{
    bfs_distances, connected_components, diameter_exact, diameter_lower_bound, eccentricity,
    is_connected, UNREACHABLE,
};
