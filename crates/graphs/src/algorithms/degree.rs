//! Degree statistics. Degree heterogeneity is the mechanism behind every
//! separation example in the paper, so the experiment reports include these
//! summaries for each graph.

use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// Summary statistics of a graph's degree sequence.
///
/// # Examples
///
/// ```
/// use rumor_graphs::{algorithms::DegreeStats, generators::star};
/// let stats = DegreeStats::of(&star(9)?);
/// assert_eq!(stats.min, 1);
/// assert_eq!(stats.max, 9);
/// assert!(!stats.is_regular());
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree `2m / n`.
    pub mean: f64,
    /// Population variance of the degree sequence.
    pub variance: f64,
}

impl DegreeStats {
    /// Computes the statistics for `graph`. For the empty graph all fields
    /// are zero.
    pub fn of(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        if n == 0 {
            return DegreeStats {
                n: 0,
                m: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                variance: 0.0,
            };
        }
        let degrees: Vec<usize> = graph.vertices().map(|u| graph.degree(u)).collect();
        let min = *degrees.iter().min().expect("non-empty");
        let max = *degrees.iter().max().expect("non-empty");
        let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
        let variance = degrees
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        DegreeStats {
            n,
            m: graph.num_edges(),
            min,
            max,
            mean,
            variance,
        }
    }

    /// `true` when every vertex has the same degree.
    pub fn is_regular(&self) -> bool {
        self.min == self.max
    }

    /// Ratio `max / min`; `f64::INFINITY` when the minimum degree is zero,
    /// `1.0` for the empty graph. A crude heterogeneity measure.
    pub fn heterogeneity(&self) -> f64 {
        if self.n == 0 {
            1.0
        } else if self.min == 0 {
            f64::INFINITY
        } else {
            self.max as f64 / self.min as f64
        }
    }
}

/// Histogram of the degree sequence: `histogram[d]` = number of vertices with
/// degree `d` (length `max_degree + 1`; empty for the empty graph).
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let max = match graph.max_degree() {
        Some(m) => m,
        None => return Vec::new(),
    };
    let mut hist = vec![0usize; max + 1];
    for u in graph.vertices() {
        hist[graph.degree(u)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, double_star, star};
    use crate::Graph;

    #[test]
    fn stats_of_star() {
        let s = DegreeStats::of(&star(9).unwrap());
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 9);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert!((s.mean - 1.8).abs() < 1e-12);
        assert!(s.variance > 0.0);
        assert!(!s.is_regular());
        assert!((s.heterogeneity() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_regular_graph() {
        let s = DegreeStats::of(&complete(6).unwrap());
        assert!(s.is_regular());
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 5);
        assert!((s.variance).abs() < 1e-12);
        assert!((s.heterogeneity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = DegreeStats::of(&Graph::from_edges(0, &[]).unwrap());
        assert_eq!(s.n, 0);
        assert!(s.is_regular());
        assert_eq!(s.heterogeneity(), 1.0);
    }

    #[test]
    fn stats_with_isolated_vertex() {
        let s = DegreeStats::of(&Graph::from_edges(3, &[(0, 1)]).unwrap());
        assert_eq!(s.min, 0);
        assert!(s.heterogeneity().is_infinite());
    }

    #[test]
    fn histogram_of_double_star() {
        let hist = degree_histogram(&double_star(4).unwrap());
        // 8 leaves of degree 1, 2 centers of degree 5.
        assert_eq!(hist[1], 8);
        assert_eq!(hist[5], 2);
        assert_eq!(hist.iter().sum::<usize>(), 10);
    }

    #[test]
    fn histogram_of_empty_graph() {
        assert!(degree_histogram(&Graph::from_edges(0, &[]).unwrap()).is_empty());
    }
}
