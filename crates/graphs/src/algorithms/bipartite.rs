//! Bipartiteness testing (two-coloring by BFS).
//!
//! Bipartiteness matters for the agent-based protocols: on a bipartite graph,
//! simple random walks preserve the parity of their starting side, so two
//! agents started on opposite sides of the bipartition never co-locate and
//! `meet-exchange` may never complete. The paper's remedy (Section 3) is to
//! use *lazy* walks in that case; [`is_bipartite`] lets callers detect when
//! the remedy is needed.

use std::collections::VecDeque;

use crate::graph::{Graph, VertexId};

/// The side of the bipartition a vertex belongs to (see [`bipartition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The side containing the smallest vertex of its connected component.
    Left,
    /// The other side.
    Right,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// Two-colors the graph if it is bipartite.
///
/// Returns `Some(sides)` with one [`Side`] per vertex when the graph has no
/// odd cycle, and `None` otherwise. In every connected component the smallest
/// vertex is assigned [`Side::Left`]. Isolated vertices are `Left`. The empty
/// graph yields `Some(vec![])`.
///
/// # Examples
///
/// ```
/// use rumor_graphs::algorithms::{bipartition, Side};
/// use rumor_graphs::generators::{complete, path};
///
/// let sides = bipartition(&path(4)?).expect("paths are bipartite");
/// assert_eq!(sides, vec![Side::Left, Side::Right, Side::Left, Side::Right]);
///
/// assert!(bipartition(&complete(3)?).is_none(), "triangles are odd cycles");
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
pub fn bipartition(graph: &Graph) -> Option<Vec<Side>> {
    let n = graph.num_vertices();
    let mut side: Vec<Option<Side>> = vec![None; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if side[start].is_some() {
            continue;
        }
        side[start] = Some(Side::Left);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let su = side[u].expect("queued vertices are colored");
            for &v in graph.neighbors(u) {
                let v = v as usize;
                match side[v] {
                    None => {
                        side[v] = Some(su.other());
                        queue.push_back(v);
                    }
                    Some(sv) if sv == su => return None,
                    Some(_) => {}
                }
            }
        }
    }
    Some(
        side.into_iter()
            .map(|s| s.expect("all vertices colored"))
            .collect(),
    )
}

/// `true` if the graph contains no odd cycle.
///
/// # Examples
///
/// ```
/// use rumor_graphs::algorithms::is_bipartite;
/// use rumor_graphs::generators::{complete, hypercube, star};
///
/// assert!(is_bipartite(&star(10)?));
/// assert!(is_bipartite(&hypercube(5)?));
/// assert!(!is_bipartite(&complete(4)?));
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
pub fn is_bipartite(graph: &Graph) -> bool {
    bipartition(graph).is_some()
}

/// Returns the sizes `(left, right)` of the two sides of the bipartition, or
/// `None` if the graph is not bipartite.
///
/// # Examples
///
/// ```
/// use rumor_graphs::algorithms::bipartition_sizes;
/// use rumor_graphs::generators::star;
///
/// // The star's center is on one side, its 10 leaves on the other.
/// assert_eq!(bipartition_sizes(&star(10)?), Some((1, 10)));
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
pub fn bipartition_sizes(graph: &Graph) -> Option<(usize, usize)> {
    let sides = bipartition(graph)?;
    let left = sides.iter().filter(|&&s| s == Side::Left).count();
    Some((left, sides.len() - left))
}

/// `true` if edge `(u, v)` crosses the given bipartition.
///
/// Every edge of a bipartite graph crosses its bipartition; the helper exists
/// for assertions and tests.
pub fn crosses(sides: &[Side], u: VertexId, v: VertexId) -> bool {
    sides[u] != sides[v]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{
        complete, cycle, double_star, grid, hypercube, path, star, CycleOfStarsOfCliques,
        HeavyBinaryTree,
    };

    #[test]
    fn paths_stars_grids_and_hypercubes_are_bipartite() {
        assert!(is_bipartite(&path(17).unwrap()));
        assert!(is_bipartite(&star(40).unwrap()));
        assert!(is_bipartite(&double_star(40).unwrap()));
        assert!(is_bipartite(&grid(5, 7).unwrap()));
        assert!(is_bipartite(&hypercube(6).unwrap()));
    }

    #[test]
    fn even_cycles_are_bipartite_odd_cycles_are_not() {
        assert!(is_bipartite(&cycle(8).unwrap()));
        assert!(!is_bipartite(&cycle(9).unwrap()));
    }

    #[test]
    fn cliques_and_clique_bearing_families_are_not_bipartite() {
        assert!(!is_bipartite(&complete(3).unwrap()));
        assert!(!is_bipartite(&complete(10).unwrap()));
        assert!(!is_bipartite(HeavyBinaryTree::new(4).unwrap().graph()));
        assert!(!is_bipartite(
            CycleOfStarsOfCliques::new(4).unwrap().graph()
        ));
    }

    #[test]
    fn trivial_graphs_are_bipartite() {
        assert!(is_bipartite(&Graph::from_edges(0, &[]).unwrap()));
        assert!(is_bipartite(&Graph::from_edges(1, &[]).unwrap()));
        assert!(is_bipartite(&Graph::from_edges(3, &[]).unwrap()));
    }

    #[test]
    fn every_edge_crosses_the_bipartition() {
        let g = hypercube(5).unwrap();
        let sides = bipartition(&g).unwrap();
        for (u, v) in g.edges() {
            assert!(crosses(&sides, u, v), "edge ({u}, {v}) does not cross");
        }
    }

    #[test]
    fn bipartition_sizes_split_the_hypercube_evenly() {
        let g = hypercube(7).unwrap();
        assert_eq!(bipartition_sizes(&g), Some((64, 64)));
        assert_eq!(bipartition_sizes(&complete(5).unwrap()), None);
    }

    #[test]
    fn smallest_vertex_of_each_component_is_left() {
        // Two disjoint edges: vertices 0-1 and 2-3.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let sides = bipartition(&g).unwrap();
        assert_eq!(sides[0], Side::Left);
        assert_eq!(sides[2], Side::Left);
        assert_eq!(sides[1], Side::Right);
        assert_eq!(sides[3], Side::Right);
    }

    #[test]
    fn side_other_is_an_involution() {
        assert_eq!(Side::Left.other(), Side::Right);
        assert_eq!(Side::Right.other(), Side::Left);
        assert_eq!(Side::Left.other().other(), Side::Left);
    }
}
