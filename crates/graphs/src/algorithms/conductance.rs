//! Cut and conductance computations.
//!
//! The paper attributes the speed of the agent protocols on the double star to
//! their *fair bandwidth use*: every edge is crossed at the same rate, so thin
//! cuts (low conductance) are crossed as often as their size allows, whereas
//! `push-pull` crosses a cut at a rate controlled by the degrees of its
//! endpoints. These helpers let the experiments report the conductance of the
//! cuts their graphs are built around.

use std::collections::HashSet;

use rand::Rng;

use crate::graph::{Graph, VertexId};

/// Number of edges with exactly one endpoint in `side`.
pub fn edge_boundary(graph: &Graph, side: &[VertexId]) -> usize {
    let set: HashSet<VertexId> = side.iter().copied().collect();
    let mut count = 0;
    for &u in side {
        for &v in graph.neighbors(u) {
            if !set.contains(&(v as usize)) {
                count += 1;
            }
        }
    }
    count
}

/// Conductance of the cut `(side, V \ side)`:
/// `|∂S| / min(vol(S), vol(V \ S))`, where `vol` is the sum of degrees.
///
/// Returns `None` if either side has zero volume (the conductance is
/// undefined).
pub fn cut_conductance(graph: &Graph, side: &[VertexId]) -> Option<f64> {
    let set: HashSet<VertexId> = side.iter().copied().collect();
    let vol_s: usize = side.iter().map(|&u| graph.degree(u)).sum();
    let vol_rest = graph.total_degree().checked_sub(vol_s)?;
    if vol_s == 0 || vol_rest == 0 {
        return None;
    }
    let boundary = side
        .iter()
        .flat_map(|&u| graph.neighbors(u).iter().map(move |&v| (u, v as usize)))
        .filter(|&(_, v)| !set.contains(&v))
        .count();
    Some(boundary as f64 / vol_s.min(vol_rest) as f64)
}

/// A cheap upper-bound estimate of the graph conductance obtained by testing
/// `samples` random "ball" cuts (BFS balls around random vertices grown to a
/// random radius) and returning the smallest conductance seen.
///
/// This is *not* the exact conductance (which is NP-hard); it is a diagnostic
/// that reliably exposes the thin cuts in the paper's example graphs
/// (double star, barbell, cycle of cliques).
///
/// Returns `None` for graphs with fewer than two vertices or no edges.
pub fn graph_conductance_estimate<R: Rng + ?Sized>(
    graph: &Graph,
    samples: usize,
    rng: &mut R,
) -> Option<f64> {
    let n = graph.num_vertices();
    if n < 2 || graph.num_edges() == 0 {
        return None;
    }
    let mut best: Option<f64> = None;
    for _ in 0..samples {
        let center = rng.gen_range(0..n);
        let dist = crate::algorithms::bfs_distances(graph, center);
        let max_dist = dist
            .iter()
            .filter(|&&d| d != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        if max_dist == 0 {
            continue;
        }
        let radius = rng.gen_range(0..max_dist);
        let side: Vec<VertexId> = (0..n)
            .filter(|&u| dist[u] != u32::MAX && dist[u] <= radius)
            .collect();
        if let Some(phi) = cut_conductance(graph, &side) {
            best = Some(match best {
                Some(b) => b.min(phi),
                None => phi,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barbell, complete, double_star, DOUBLE_STAR_CENTER_A};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edge_boundary_of_barbell_bridge_cut() {
        let g = barbell(5).unwrap();
        let left: Vec<usize> = (0..5).collect();
        assert_eq!(edge_boundary(&g, &left), 1);
    }

    #[test]
    fn edge_boundary_of_whole_graph_is_zero() {
        let g = complete(4).unwrap();
        let all: Vec<usize> = (0..4).collect();
        assert_eq!(edge_boundary(&g, &all), 0);
    }

    #[test]
    fn conductance_of_double_star_half() {
        let l = 10;
        let g = double_star(l).unwrap();
        // One star (center A and its leaves) against the other.
        let mut side = vec![DOUBLE_STAR_CENTER_A];
        side.extend(2..2 + l);
        let phi = cut_conductance(&g, &side).unwrap();
        // Boundary is the single center-center edge; volume of each side is l + 1... + leaves.
        let vol = (l + 1) + l;
        assert!((phi - 1.0 / vol as f64).abs() < 1e-12);
    }

    #[test]
    fn conductance_of_clique_half() {
        let g = complete(8).unwrap();
        let side: Vec<usize> = (0..4).collect();
        let phi = cut_conductance(&g, &side).unwrap();
        // Each of 4 vertices has 4 cross edges; volume of side is 4 * 7.
        assert!((phi - 16.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn conductance_undefined_for_empty_side() {
        let g = complete(4).unwrap();
        assert_eq!(cut_conductance(&g, &[]), None);
        let all: Vec<usize> = (0..4).collect();
        assert_eq!(cut_conductance(&g, &all), None);
    }

    #[test]
    fn estimate_detects_thin_cut_of_barbell() {
        let g = barbell(12).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let phi = graph_conductance_estimate(&g, 50, &mut rng).unwrap();
        // The bridge cut has conductance 1 / (12 * 11 + 1) ≈ 0.0076; the
        // estimate should find something small.
        assert!(phi < 0.05, "estimate {phi} did not expose the thin cut");
    }

    #[test]
    fn estimate_is_large_for_expander_like_clique() {
        let g = complete(16).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let phi = graph_conductance_estimate(&g, 30, &mut rng).unwrap();
        assert!(
            phi > 0.4,
            "clique conductance estimate {phi} unexpectedly small"
        );
    }

    #[test]
    fn estimate_none_for_degenerate_graphs() {
        let mut rng = StdRng::seed_from_u64(0);
        let empty = crate::Graph::from_edges(0, &[]).unwrap();
        assert_eq!(graph_conductance_estimate(&empty, 5, &mut rng), None);
        let single = crate::Graph::from_edges(1, &[]).unwrap();
        assert_eq!(graph_conductance_estimate(&single, 5, &mut rng), None);
    }
}
