//! Breadth-first traversal, connectivity, and diameter computations.

use std::collections::VecDeque;

use crate::graph::{Graph, VertexId};

/// Distance marker for unreachable vertices in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `source` to every vertex; unreachable vertices get
/// [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use rumor_graphs::{algorithms::bfs_distances, generators::path};
/// let g = path(4)?;
/// assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
pub fn bfs_distances(graph: &Graph, source: VertexId) -> Vec<u32> {
    assert!(source < graph.num_vertices(), "source out of range");
    let mut dist = vec![UNREACHABLE; graph.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &v in graph.neighbors(u) {
            let v = v as usize;
            if dist[v] == UNREACHABLE {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Returns `true` if the graph is connected. The empty graph and the
/// single-vertex graph count as connected.
pub fn is_connected(graph: &Graph) -> bool {
    let n = graph.num_vertices();
    if n <= 1 {
        return true;
    }
    bfs_distances(graph, 0).iter().all(|&d| d != UNREACHABLE)
}

/// Assigns a component id to every vertex and returns `(ids, component_count)`.
/// Component ids are consecutive integers starting at 0, in order of the
/// smallest vertex in each component.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                let v = v as usize;
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (comp, next)
}

/// The eccentricity of `source`: the largest BFS distance to any reachable
/// vertex. Returns `None` if some vertex is unreachable from `source`.
pub fn eccentricity(graph: &Graph, source: VertexId) -> Option<u32> {
    let dist = bfs_distances(graph, source);
    let mut max = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        max = max.max(d);
    }
    Some(max)
}

/// Exact diameter by running BFS from every vertex — `O(n (n + m))`, intended
/// for the modest graph sizes used in tests and experiment sanity checks.
///
/// Returns `None` for disconnected or empty graphs.
pub fn diameter_exact(graph: &Graph) -> Option<u32> {
    let n = graph.num_vertices();
    if n == 0 {
        return None;
    }
    let mut best = 0;
    for u in 0..n {
        best = best.max(eccentricity(graph, u)?);
    }
    Some(best)
}

/// Fast diameter lower bound by a double BFS sweep (exact on trees, a good
/// estimate elsewhere). Returns `None` for disconnected or empty graphs.
pub fn diameter_lower_bound(graph: &Graph) -> Option<u32> {
    let n = graph.num_vertices();
    if n == 0 {
        return None;
    }
    let first = bfs_distances(graph, 0);
    if first.contains(&UNREACHABLE) {
        return None;
    }
    let far = first
        .iter()
        .enumerate()
        .max_by_key(|(_, &d)| d)
        .map(|(u, _)| u)
        .unwrap_or(0);
    eccentricity(graph, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle, double_star, path, star};
    use crate::Graph;

    #[test]
    fn bfs_on_path() {
        let g = path(5).unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable_marked() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&path(6).unwrap()));
        assert!(is_connected(&Graph::from_edges(1, &[]).unwrap()));
        assert!(is_connected(&Graph::from_edges(0, &[]).unwrap()));
        assert!(!is_connected(&Graph::from_edges(3, &[(0, 1)]).unwrap()));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (3, 4)]).unwrap();
        let (ids, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[2], ids[3]);
        assert_eq!(ids[3], ids[4]);
        assert_ne!(ids[0], ids[2]);
        assert_ne!(ids[2], ids[5]);
    }

    #[test]
    fn components_of_connected_graph() {
        let (ids, count) = connected_components(&cycle(5).unwrap());
        assert_eq!(count, 1);
        assert!(ids.iter().all(|&c| c == 0));
    }

    #[test]
    fn eccentricity_and_diameter_on_path() {
        let g = path(7).unwrap();
        assert_eq!(eccentricity(&g, 0), Some(6));
        assert_eq!(eccentricity(&g, 3), Some(3));
        assert_eq!(diameter_exact(&g), Some(6));
        assert_eq!(diameter_lower_bound(&g), Some(6));
    }

    #[test]
    fn diameter_of_standard_graphs() {
        assert_eq!(diameter_exact(&complete(8).unwrap()), Some(1));
        assert_eq!(diameter_exact(&star(9).unwrap()), Some(2));
        assert_eq!(diameter_exact(&double_star(5).unwrap()), Some(3));
        assert_eq!(diameter_exact(&cycle(8).unwrap()), Some(4));
        assert_eq!(diameter_exact(&cycle(9).unwrap()), Some(4));
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        assert_eq!(diameter_exact(&g), None);
        assert_eq!(diameter_lower_bound(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
    }

    #[test]
    fn diameter_of_empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(diameter_exact(&g), None);
        assert_eq!(diameter_lower_bound(&g), None);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bfs_panics_on_bad_source() {
        let g = path(3).unwrap();
        let _ = bfs_distances(&g, 10);
    }
}
