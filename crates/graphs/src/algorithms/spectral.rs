//! Spectral estimates for the lazy random-walk transition matrix: second
//! eigenvalue, spectral gap, and the classical mixing-time bound.
//!
//! Rumor-spreading broadcast times on regular graphs are governed by expansion
//! (conductance / spectral gap): the paper cites bounds of this form for
//! `push-pull` ([11, 26]) and for asynchronous spreading ([41]), and its own
//! Theorem 1 transfers any such bound to `visit-exchange`. The experiments use
//! these estimates to line broadcast times up against the expansion of each
//! family (random regular graphs are expanders, the cycle of cliques is not).
//!
//! The estimate uses power iteration on the *lazy* transition matrix
//! `P = (I + D^{-1} A) / 2`, whose spectrum lies in `[0, 1]`, deflating the
//! known top eigenvector (the stationary distribution). No linear-algebra
//! dependency is required; for the sizes used in the experiments (up to a few
//! thousand vertices) the iteration converges in a few hundred matrix–vector
//! products.

use rand::Rng;

use crate::graph::Graph;

/// Result of [`spectral_gap_estimate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralEstimate {
    /// Estimated second-largest eigenvalue of the lazy transition matrix
    /// (in `[0, 1]`; smaller means better expansion).
    pub lambda_2: f64,
    /// Spectral gap `1 − λ₂` of the lazy walk.
    pub gap: f64,
    /// Number of power iterations performed.
    pub iterations: usize,
}

impl SpectralEstimate {
    /// The classical upper bound on the ε-mixing time of the lazy walk,
    /// `t_mix(ε) ≤ (1 / gap) · ln(n / ε)` (valid for reversible chains; see
    /// e.g. Levin–Peres). Returns `f64::INFINITY` when the gap estimate is
    /// not positive.
    pub fn mixing_time_bound(&self, n: usize, epsilon: f64) -> f64 {
        if self.gap <= 0.0 || n == 0 {
            return f64::INFINITY;
        }
        (1.0 / self.gap) * ((n as f64) / epsilon).ln()
    }
}

/// Multiplies a vector by the lazy transition matrix `P = (I + D^{-1} A) / 2`.
fn lazy_step(graph: &Graph, x: &[f64], out: &mut [f64]) {
    for u in 0..graph.num_vertices() {
        let deg = graph.degree(u);
        let mut acc = 0.0;
        if deg > 0 {
            for &v in graph.neighbors(u) {
                acc += x[v as usize];
            }
            acc /= deg as f64;
        }
        out[u] = 0.5 * (x[u] + acc);
    }
}

/// Removes the component of `x` along the top eigenvector of the lazy walk.
///
/// For the random-walk transition matrix the top right-eigenvector is the
/// all-ones vector under the degree-weighted inner product
/// `⟨x, y⟩_π = Σ_u π(u) x(u) y(u)`, so deflation subtracts the π-weighted mean.
fn deflate(graph: &Graph, x: &mut [f64]) {
    let total = graph.total_degree() as f64;
    if total == 0.0 {
        return;
    }
    let mean: f64 = (0..graph.num_vertices())
        .map(|u| graph.degree(u) as f64 * x[u])
        .sum::<f64>()
        / total;
    for value in x.iter_mut() {
        *value -= mean;
    }
}

/// The π-weighted norm used for normalization during power iteration.
fn pi_norm(graph: &Graph, x: &[f64]) -> f64 {
    let total = graph.total_degree() as f64;
    if total == 0.0 {
        return 0.0;
    }
    (0..graph.num_vertices())
        .map(|u| graph.degree(u) as f64 / total * x[u] * x[u])
        .sum::<f64>()
        .sqrt()
}

/// Estimates the second eigenvalue and spectral gap of the lazy random walk on
/// `graph` by deflated power iteration.
///
/// `max_iterations` caps the work; `tolerance` stops the iteration early once
/// the eigenvalue estimate is stable between consecutive iterations. The
/// estimate is a *lower* bound on λ₂ in exact arithmetic (power iteration
/// converges from below through Rayleigh quotients), which makes the derived
/// gap an upper bound — adequate for the qualitative expander/non-expander
/// comparisons the experiments make.
///
/// Returns `None` for graphs with fewer than two vertices or no edges.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rumor_graphs::algorithms::spectral_gap_estimate;
/// use rumor_graphs::generators::complete;
///
/// let g = complete(32)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let est = spectral_gap_estimate(&g, 500, 1e-9, &mut rng).unwrap();
/// // The complete graph is the best possible expander: the lazy walk's gap
/// // is close to 1/2.
/// assert!(est.gap > 0.4);
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
pub fn spectral_gap_estimate<R: Rng + ?Sized>(
    graph: &Graph,
    max_iterations: usize,
    tolerance: f64,
    rng: &mut R,
) -> Option<SpectralEstimate> {
    let n = graph.num_vertices();
    if n < 2 || graph.num_edges() == 0 {
        return None;
    }

    // Random start, deflated so it is π-orthogonal to the top eigenvector.
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    deflate(graph, &mut x);
    let norm = pi_norm(graph, &x);
    if norm == 0.0 {
        return None;
    }
    for value in x.iter_mut() {
        *value /= norm;
    }

    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    let mut iterations = 0;
    for it in 1..=max_iterations.max(1) {
        iterations = it;
        lazy_step(graph, &x, &mut y);
        deflate(graph, &mut y);
        let norm = pi_norm(graph, &y);
        if norm <= f64::MIN_POSITIVE {
            // The iterate collapsed into the top eigenspace: the rest of the
            // spectrum is (numerically) zero, i.e. the gap is as large as the
            // lazy walk allows.
            return Some(SpectralEstimate {
                lambda_2: 0.0,
                gap: 1.0,
                iterations,
            });
        }
        let new_lambda = norm; // ‖P x‖_π for a π-normalized, deflated x.
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
        if (new_lambda - lambda).abs() < tolerance && it > 1 {
            lambda = new_lambda;
            break;
        }
        lambda = new_lambda;
    }

    let lambda_2 = lambda.clamp(0.0, 1.0);
    Some(SpectralEstimate {
        lambda_2,
        gap: 1.0 - lambda_2,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle, double_star, hypercube, path, random_regular};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn estimate(graph: &Graph) -> SpectralEstimate {
        spectral_gap_estimate(graph, 3_000, 1e-10, &mut rng(11)).expect("valid graph")
    }

    #[test]
    fn complete_graph_has_a_large_gap() {
        // Lazy walk on K_n: eigenvalues are 1 and (1 − n/(2(n−1))) ≈ 1/2, so
        // λ₂ ≈ 0.48 and the gap ≈ 0.52 for n = 24.
        let est = estimate(&complete(24).unwrap());
        assert!(est.gap > 0.45, "gap {} too small for a clique", est.gap);
        assert!(est.lambda_2 < 0.55);
    }

    #[test]
    fn long_cycle_has_a_tiny_gap() {
        // Lazy walk on C_n: gap = (1 − cos(2π/n)) / 2 ≈ π²/n², i.e. ~0.002
        // for n = 64.
        let est = estimate(&cycle(64).unwrap());
        assert!(est.gap < 0.02, "gap {} too large for a long cycle", est.gap);
        let exact = (1.0 - (2.0 * std::f64::consts::PI / 64.0).cos()) / 2.0;
        assert!(
            (est.lambda_2 - (1.0 - exact)).abs() < 0.01,
            "λ₂ {} far from the exact value {}",
            est.lambda_2,
            1.0 - exact
        );
    }

    #[test]
    fn path_gap_matches_known_value() {
        // Lazy walk on P_n: λ₂ = (1 + cos(π/n)) / 2.
        let n = 40;
        let est = estimate(&path(n).unwrap());
        let exact = (1.0 + (std::f64::consts::PI / n as f64).cos()) / 2.0;
        assert!(
            (est.lambda_2 - exact).abs() < 0.01,
            "λ₂ {} vs exact {exact}",
            est.lambda_2
        );
    }

    #[test]
    fn random_regular_graph_is_an_expander() {
        let g = random_regular(256, 12, &mut rng(3)).unwrap();
        let est = estimate(&g);
        // Friedman's theorem: λ₂ of the non-lazy walk ≈ 2√(d−1)/d ≈ 0.55, so
        // the lazy gap is ≈ (1 − 0.55)/2 ≈ 0.22. Anything clearly bounded
        // away from zero is what the experiments rely on.
        assert!(
            est.gap > 0.1,
            "random regular graph gap {} unexpectedly small",
            est.gap
        );
    }

    #[test]
    fn double_star_gap_is_tiny() {
        let est = estimate(&double_star(64).unwrap());
        assert!(
            est.gap < 0.05,
            "double star gap {} should be tiny (thin bridge)",
            est.gap
        );
    }

    #[test]
    fn hypercube_gap_matches_dimension() {
        // Lazy walk on the d-dimensional hypercube: gap = 1/(2d)... the
        // non-lazy gap is 2/d, halved by laziness.
        let d = 7;
        let est = estimate(&hypercube(d).unwrap());
        let exact = 1.0 / d as f64;
        assert!(
            (est.gap - exact).abs() < 0.02,
            "gap {} vs exact {exact}",
            est.gap
        );
    }

    #[test]
    fn mixing_time_bound_behaves() {
        let est = estimate(&complete(16).unwrap());
        let bound = est.mixing_time_bound(16, 0.01);
        assert!(bound.is_finite() && bound > 0.0);
        // A zero gap yields an infinite bound rather than a panic.
        let degenerate = SpectralEstimate {
            lambda_2: 1.0,
            gap: 0.0,
            iterations: 1,
        };
        assert!(degenerate.mixing_time_bound(16, 0.01).is_infinite());
    }

    #[test]
    fn degenerate_graphs_yield_none() {
        let mut r = rng(0);
        assert!(
            spectral_gap_estimate(&Graph::from_edges(0, &[]).unwrap(), 10, 1e-6, &mut r).is_none()
        );
        assert!(
            spectral_gap_estimate(&Graph::from_edges(1, &[]).unwrap(), 10, 1e-6, &mut r).is_none()
        );
        assert!(
            spectral_gap_estimate(&Graph::from_edges(3, &[]).unwrap(), 10, 1e-6, &mut r).is_none()
        );
    }

    #[test]
    fn estimate_is_deterministic_for_a_fixed_seed() {
        let g = random_regular(128, 8, &mut rng(4)).unwrap();
        let a = spectral_gap_estimate(&g, 1_000, 1e-9, &mut rng(9)).unwrap();
        let b = spectral_gap_estimate(&g, 1_000, 1e-9, &mut rng(9)).unwrap();
        assert_eq!(a, b);
    }
}
