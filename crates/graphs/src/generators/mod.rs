//! Graph generators for every family used in the paper's analysis plus a set
//! of standard regular and random families used by the regular-graph theorems.
//!
//! | Paper reference | Generator |
//! |---|---|
//! | Fig. 1(a), Lemma 2 (star) | [`star`] |
//! | Fig. 1(b), Lemma 3 (double star) | [`double_star`] |
//! | Fig. 1(c), Lemma 4 (heavy binary tree) | [`HeavyBinaryTree`] |
//! | Fig. 1(d), Lemma 8 (Siamese heavy trees) | [`SiameseHeavyBinaryTree`] |
//! | Fig. 1(e), Lemma 9 (cycle of stars of cliques) | [`CycleOfStarsOfCliques`] |
//! | Theorem 1 regime (`d`-regular, `d = Ω(log n)`) | [`random_regular`], [`hypercube`], [`complete`], [`cycle_of_cliques`], [`matched_communities`] |
//! | Extra non-regular stress tests | [`erdos_renyi`], [`barbell`], [`lollipop`], [`grid`], [`binary_tree`] |

mod basic;
mod paper;
mod random;
mod regular;

pub use basic::{
    binary_tree, binary_tree_leaves, binary_tree_size, complete, cycle, double_star, grid,
    hypercube, path, star, torus, DOUBLE_STAR_CENTER_A, DOUBLE_STAR_CENTER_B, STAR_CENTER,
};
pub use paper::{CycleOfStarsOfCliques, HeavyBinaryTree, SiameseHeavyBinaryTree};
pub use random::{barbell, connected_erdos_renyi, erdos_renyi, lollipop};
pub use regular::{cycle_of_cliques, logarithmic_degree, matched_communities, random_regular};
