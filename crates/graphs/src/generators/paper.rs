//! The separation-example graphs of the paper's Figure 1(c)–(e).
//!
//! Figure 1(a) (star) and 1(b) (double star) are in
//! [`basic`](crate::generators::basic); this module holds the three composite
//! families that need structural metadata alongside the graph:
//!
//! * the *heavy binary tree* `B_n` (Fig. 1c, Lemma 4),
//! * the *Siamese heavy binary tree* `D_n` (Fig. 1d, Lemma 8), and
//! * the *cycle of stars of cliques* (Fig. 1e, Lemma 9).

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::{Graph, VertexId};

/// The heavy binary tree `B_n` of Fig. 1(c): a balanced binary tree whose
/// leaves are additionally connected into a clique.
///
/// `push` is fast (`O(log n)`), `visit-exchange` is slow (`Ω(n)`) because the
/// stationary distribution concentrates almost all agents on the leaf clique
/// and the root is visited only every `Ω(n)` rounds, and `meet-exchange`
/// started at a leaf is fast (`O(log n)`).
///
/// Vertices use heap numbering: the root is `0`, vertex `u` has children
/// `2u + 1`, `2u + 2`, and the leaves are the last `2^depth` vertices.
#[derive(Debug, Clone)]
pub struct HeavyBinaryTree {
    graph: Graph,
    depth: u32,
}

impl HeavyBinaryTree {
    /// Builds the heavy binary tree of the given depth
    /// (`2^(depth+1) - 1` vertices).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] if `depth == 0` or
    /// `depth > 28`.
    pub fn new(depth: u32) -> Result<Self> {
        if depth == 0 || depth > 28 {
            return Err(GraphError::InvalidParameters {
                reason: "heavy binary tree requires 1 <= depth <= 28".into(),
            });
        }
        let n = (1usize << (depth + 1)) - 1;
        let first_leaf = (1usize << depth) - 1;
        let leaf_count = n - first_leaf;
        let mut b = GraphBuilder::with_capacity(n, (n - 1) + leaf_count * (leaf_count - 1) / 2);
        for u in 1..n {
            b.add_edge(u, (u - 1) / 2)?;
        }
        let leaves: Vec<VertexId> = (first_leaf..n).collect();
        b.add_clique(&leaves)?;
        Ok(HeavyBinaryTree {
            graph: b.build(),
            depth,
        })
    }

    /// Builds the smallest heavy binary tree with at least `min_vertices`
    /// vertices (convenience for size sweeps).
    ///
    /// # Errors
    ///
    /// Propagates the constraints of [`HeavyBinaryTree::new`].
    pub fn with_at_least(min_vertices: usize) -> Result<Self> {
        let mut depth = 1;
        while ((1usize << (depth + 1)) - 1) < min_vertices {
            depth += 1;
        }
        Self::new(depth)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes `self`, returning the underlying graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Tree depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The root vertex (the slow bottleneck for `visit-exchange`).
    pub fn root(&self) -> VertexId {
        0
    }

    /// The leaf vertices (which induce a clique).
    pub fn leaves(&self) -> std::ops::Range<VertexId> {
        let n = self.graph.num_vertices();
        ((1usize << self.depth) - 1)..n
    }

    /// An arbitrary leaf, used as the source in Lemma 4(c).
    pub fn a_leaf(&self) -> VertexId {
        self.leaves().start
    }

    /// The internal (non-leaf) vertices.
    pub fn internal_vertices(&self) -> std::ops::Range<VertexId> {
        0..((1usize << self.depth) - 1)
    }
}

/// The Siamese heavy binary tree `D_n` of Fig. 1(d): two heavy binary trees
/// whose roots are merged into a single vertex.
///
/// Here *both* agent protocols are slow (`Ω(n)` in expectation) because the
/// rumor must cross the merged root, which agents rarely visit; `push` is
/// still `O(log n)`.
#[derive(Debug, Clone)]
pub struct SiameseHeavyBinaryTree {
    graph: Graph,
    depth: u32,
    tree_size: usize,
}

impl SiameseHeavyBinaryTree {
    /// Builds the Siamese heavy binary tree whose halves have the given depth.
    ///
    /// The shared root is vertex `0`. The first copy occupies vertices
    /// `0..T` in heap order (`T = 2^(depth+1) - 1`); the second copy's
    /// non-root vertices occupy `T..2T - 1`, mirroring the heap order of the
    /// first copy shifted by `T - 1`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] if `depth == 0` or `depth > 27`.
    pub fn new(depth: u32) -> Result<Self> {
        if depth == 0 || depth > 27 {
            return Err(GraphError::InvalidParameters {
                reason: "siamese heavy binary tree requires 1 <= depth <= 27".into(),
            });
        }
        let tree_size = (1usize << (depth + 1)) - 1;
        let n = 2 * tree_size - 1;
        let first_leaf = (1usize << depth) - 1;
        let leaf_count = tree_size - first_leaf;
        let mut b = GraphBuilder::with_capacity(
            n,
            2 * ((tree_size - 1) + leaf_count * (leaf_count - 1) / 2),
        );

        // First copy: heap numbering 0..tree_size.
        for u in 1..tree_size {
            b.add_edge(u, (u - 1) / 2)?;
        }
        let leaves_a: Vec<VertexId> = (first_leaf..tree_size).collect();
        b.add_clique(&leaves_a)?;

        // Second copy: vertex `u` of the abstract tree (1..tree_size) maps to
        // `tree_size - 1 + u`; the abstract root 0 maps to the shared root 0.
        let map = |u: usize| if u == 0 { 0 } else { tree_size - 1 + u };
        for u in 1..tree_size {
            b.add_edge(map(u), map((u - 1) / 2))?;
        }
        let leaves_b: Vec<VertexId> = (first_leaf..tree_size).map(map).collect();
        b.add_clique(&leaves_b)?;

        Ok(SiameseHeavyBinaryTree {
            graph: b.build(),
            depth,
            tree_size,
        })
    }

    /// Builds the smallest instance with at least `min_vertices` vertices.
    ///
    /// # Errors
    ///
    /// Propagates the constraints of [`SiameseHeavyBinaryTree::new`].
    pub fn with_at_least(min_vertices: usize) -> Result<Self> {
        let mut depth = 1;
        while 2 * ((1usize << (depth + 1)) - 1) - 1 < min_vertices {
            depth += 1;
        }
        Self::new(depth)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes `self`, returning the underlying graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Depth of each half.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The shared root vertex.
    pub fn root(&self) -> VertexId {
        0
    }

    /// Leaves of the first copy.
    pub fn leaves_first(&self) -> std::ops::Range<VertexId> {
        ((1usize << self.depth) - 1)..self.tree_size
    }

    /// Leaves of the second copy.
    pub fn leaves_second(&self) -> std::ops::Range<VertexId> {
        let first_leaf = (1usize << self.depth) - 1;
        (self.tree_size - 1 + first_leaf)..self.graph.num_vertices()
    }

    /// An arbitrary leaf of the first copy (a natural source choice).
    pub fn a_leaf(&self) -> VertexId {
        self.leaves_first().start
    }
}

/// The cycle-of-stars-of-cliques graph of Fig. 1(e) and Lemma 9: an (almost)
/// regular graph on which `visit-exchange` beats `meet-exchange` by a
/// `Θ(log n)` factor.
///
/// Structure, for a parameter `m` (the paper uses `m = n^{1/3}`):
/// a cycle of `m` *ring* vertices `c_i`; each `c_i` is the center of a star
/// with `m` *leaf* vertices `l_{i,j}`; and each `l_{i,j}` is attached to a
/// clique of `m` extra vertices `q_{i,j,k}` (so each `Q_{i,j}` is an
/// `(m+1)`-clique containing `l_{i,j}`).
#[derive(Debug, Clone)]
pub struct CycleOfStarsOfCliques {
    graph: Graph,
    m: usize,
}

impl CycleOfStarsOfCliques {
    /// Builds the graph with cycle length / star size / clique size all `m`.
    ///
    /// Total vertex count is `m + m^2 + m^3 = Θ(m^3)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] if `m < 3` (the cycle needs
    /// at least three vertices) or if `m > 1000` (size safety valve).
    pub fn new(m: usize) -> Result<Self> {
        if m < 3 {
            return Err(GraphError::InvalidParameters {
                reason: "cycle_of_stars_of_cliques requires m >= 3".into(),
            });
        }
        if m > 1000 {
            return Err(GraphError::InvalidParameters {
                reason: "cycle_of_stars_of_cliques requires m <= 1000".into(),
            });
        }
        let n = m + m * m + m * m * m;
        let edge_estimate = m + m * m + m * m * (m * (m + 1) / 2);
        let mut b = GraphBuilder::with_capacity(n, edge_estimate);

        // Ring vertices c_i are 0..m.
        for i in 0..m {
            b.add_edge(i, (i + 1) % m)?;
        }
        // Star leaves l_{i,j} are m + i*m + j.
        for i in 0..m {
            for j in 0..m {
                b.add_edge(i, Self::leaf_index(m, i, j))?;
            }
        }
        // Clique vertices q_{i,j,k} are m + m^2 + (i*m + j)*m + k; each clique
        // Q_{i,j} is {l_{i,j}} ∪ {q_{i,j,*}}.
        for i in 0..m {
            for j in 0..m {
                let mut clique = Vec::with_capacity(m + 1);
                clique.push(Self::leaf_index(m, i, j));
                for k in 0..m {
                    clique.push(Self::clique_index(m, i, j, k));
                }
                b.add_clique(&clique)?;
            }
        }
        Ok(CycleOfStarsOfCliques {
            graph: b.build(),
            m,
        })
    }

    /// Builds the smallest instance with at least `min_vertices` vertices,
    /// i.e. `m ≈ min_vertices^{1/3}`.
    ///
    /// # Errors
    ///
    /// Propagates the constraints of [`CycleOfStarsOfCliques::new`].
    pub fn with_at_least(min_vertices: usize) -> Result<Self> {
        let mut m = 3usize;
        while m + m * m + m * m * m < min_vertices {
            m += 1;
        }
        Self::new(m)
    }

    fn leaf_index(m: usize, i: usize, j: usize) -> VertexId {
        m + i * m + j
    }

    fn clique_index(m: usize, i: usize, j: usize, k: usize) -> VertexId {
        m + m * m + (i * m + j) * m + k
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes `self`, returning the underlying graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// The structural parameter `m` (cycle length = star size = clique size).
    pub fn m(&self) -> usize {
        self.m
    }

    /// The `i`-th ring vertex `c_i`.
    pub fn ring_vertex(&self, i: usize) -> VertexId {
        assert!(i < self.m);
        i
    }

    /// All ring vertices.
    pub fn ring_vertices(&self) -> std::ops::Range<VertexId> {
        0..self.m
    }

    /// The star-leaf vertex `l_{i,j}` (also a member of clique `Q_{i,j}`).
    pub fn leaf_vertex(&self, i: usize, j: usize) -> VertexId {
        assert!(i < self.m && j < self.m);
        Self::leaf_index(self.m, i, j)
    }

    /// The clique-interior vertex `q_{i,j,k}`.
    pub fn clique_vertex(&self, i: usize, j: usize, k: usize) -> VertexId {
        assert!(i < self.m && j < self.m && k < self.m);
        Self::clique_index(self.m, i, j, k)
    }

    /// A natural source vertex inside clique `Q_{0,0}`, as in Lemma 9.
    pub fn a_clique_source(&self) -> VertexId {
        self.clique_vertex(0, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::is_connected;

    #[test]
    fn heavy_tree_shape() {
        let t = HeavyBinaryTree::new(4).unwrap();
        let g = t.graph();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 31);
        // Tree edges + clique over 16 leaves.
        assert_eq!(g.num_edges(), 30 + 16 * 15 / 2);
        assert_eq!(t.leaves(), 15..31);
        assert_eq!(t.root(), 0);
        assert!(is_connected(g));
        // Root degree 2, internal degree 3, leaf degree = 1 (parent) + 15 (clique).
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        for leaf in t.leaves() {
            assert_eq!(g.degree(leaf), 16);
        }
    }

    #[test]
    fn heavy_tree_volume_concentrates_on_leaves() {
        let t = HeavyBinaryTree::new(6).unwrap();
        let g = t.graph();
        let leaf_degree: usize = t.leaves().map(|u| g.degree(u)).sum();
        let total = g.total_degree();
        assert!(leaf_degree as f64 / total as f64 > 0.9);
    }

    #[test]
    fn heavy_tree_with_at_least() {
        let t = HeavyBinaryTree::with_at_least(100).unwrap();
        assert!(t.graph().num_vertices() >= 100);
        let smaller = HeavyBinaryTree::new(t.depth() - 1).unwrap();
        assert!(smaller.graph().num_vertices() < 100);
    }

    #[test]
    fn heavy_tree_rejects_bad_depth() {
        assert!(HeavyBinaryTree::new(0).is_err());
        assert!(HeavyBinaryTree::new(29).is_err());
    }

    #[test]
    fn siamese_shape() {
        let s = SiameseHeavyBinaryTree::new(3).unwrap();
        let g = s.graph();
        g.validate().unwrap();
        // Two copies of 15 vertices sharing the root.
        assert_eq!(g.num_vertices(), 29);
        assert!(is_connected(g));
        // Shared root has degree 4 (two children per copy).
        assert_eq!(g.degree(s.root()), 4);
        assert_eq!(s.leaves_first().len(), 8);
        assert_eq!(s.leaves_second().len(), 8);
        for leaf in s.leaves_first().chain(s.leaves_second()) {
            assert_eq!(g.degree(leaf), 8); // 1 parent + 7 clique neighbors
        }
    }

    #[test]
    fn siamese_halves_are_disjoint_except_root() {
        let s = SiameseHeavyBinaryTree::new(4).unwrap();
        let g = s.graph();
        // No edge between a first-copy leaf and a second-copy leaf.
        for u in s.leaves_first() {
            for v in s.leaves_second() {
                assert!(!g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn siamese_with_at_least() {
        let s = SiameseHeavyBinaryTree::with_at_least(200).unwrap();
        assert!(s.graph().num_vertices() >= 200);
    }

    #[test]
    fn siamese_rejects_bad_depth() {
        assert!(SiameseHeavyBinaryTree::new(0).is_err());
        assert!(SiameseHeavyBinaryTree::new(28).is_err());
    }

    #[test]
    fn cycle_of_stars_of_cliques_shape() {
        let m = 4;
        let c = CycleOfStarsOfCliques::new(m).unwrap();
        let g = c.graph();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), m + m * m + m * m * m);
        assert!(is_connected(g));
        // Ring vertex degree: 2 ring neighbors + m star leaves.
        for i in 0..m {
            assert_eq!(g.degree(c.ring_vertex(i)), 2 + m);
        }
        // Leaf vertex degree: ring center + m clique members.
        assert_eq!(g.degree(c.leaf_vertex(1, 2)), 1 + m);
        // Clique-interior vertex degree: m (other clique members + leaf).
        assert_eq!(g.degree(c.clique_vertex(1, 2, 3)), m);
    }

    #[test]
    fn cycle_of_stars_is_almost_regular() {
        let c = CycleOfStarsOfCliques::new(8).unwrap();
        let g = c.graph();
        // All degrees are within a factor ~1.25 of m = 8: the graph is
        // "(almost) regular" as the paper says.
        assert!(g.min_degree().unwrap() >= 8);
        assert!(g.max_degree().unwrap() <= 10);
    }

    #[test]
    fn cycle_of_stars_with_at_least() {
        let c = CycleOfStarsOfCliques::with_at_least(500).unwrap();
        assert!(c.graph().num_vertices() >= 500);
        assert!(c.m() >= 3);
    }

    #[test]
    fn cycle_of_stars_rejects_bad_m() {
        assert!(CycleOfStarsOfCliques::new(2).is_err());
        assert!(CycleOfStarsOfCliques::new(1001).is_err());
    }

    #[test]
    fn clique_membership_is_correct() {
        let c = CycleOfStarsOfCliques::new(5).unwrap();
        let g = c.graph();
        // Every pair inside clique Q_{2,3} is adjacent.
        let mut members = vec![c.leaf_vertex(2, 3)];
        members.extend((0..5).map(|k| c.clique_vertex(2, 3, k)));
        for (a, &u) in members.iter().enumerate() {
            for &v in &members[a + 1..] {
                assert!(g.has_edge(u, v), "missing clique edge ({u}, {v})");
            }
        }
        // But vertices in different cliques are not adjacent.
        assert!(!g.has_edge(c.clique_vertex(2, 3, 0), c.clique_vertex(2, 4, 0)));
    }
}
