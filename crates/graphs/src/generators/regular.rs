//! Regular-graph generators used by the Theorem 1 / 23 / 24 / 25 experiments.
//!
//! The paper's main technical results hold for every `d`-regular graph with
//! `d = Ω(log n)`. The experiments exercise them on:
//!
//! * uniformly random `d`-regular graphs (configuration model),
//! * the hypercube (`d = log2 n`, in [`basic`](crate::generators::basic)),
//! * a cycle of `(d+1)`-cliques (a regular graph with *polynomial* broadcast
//!   time, the "path of d-cliques" example mentioned after Theorem 1), and
//! * the complete graph (`d = n − 1`).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::algorithms::is_connected;
use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;

/// Maximum number of outer restarts (full re-pairings) before giving up.
const RANDOM_REGULAR_MAX_ATTEMPTS: usize = 50;

/// Generates a random simple connected `d`-regular graph on `n` vertices.
///
/// The construction is the configuration (pairing) model followed by a repair
/// phase: stubs are paired uniformly at random, and then self-loops and
/// parallel edges are eliminated by random double-edge swaps (each swap
/// replaces a defective pair `(u,v)` and a random good pair `(x,y)` by
/// `(u,x)` and `(v,y)` when that keeps the graph simple). The repair phase
/// preserves the degree sequence exactly. If the result is disconnected the
/// whole pairing restarts. This is the standard practical sampler for random
/// regular graphs; it is not exactly uniform but is asymptotically so for
/// fixed `d`, and its mixing/expansion behaviour is indistinguishable for the
/// purposes of the experiments.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `d == 0`, `d >= n`, or
/// `n * d` is odd; [`GraphError::GenerationFailed`] if no simple connected
/// graph was produced within the retry budget.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = rumor_graphs::generators::random_regular(100, 6, &mut rng)?;
/// assert_eq!(g.regular_degree(), Some(6));
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Result<Graph> {
    if d == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "random_regular requires d >= 1".into(),
        });
    }
    if d >= n {
        return Err(GraphError::InvalidParameters {
            reason: format!("random_regular requires d < n (got d = {d}, n = {n})"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameters {
            reason: "random_regular requires n * d to be even".into(),
        });
    }

    for _ in 0..RANDOM_REGULAR_MAX_ATTEMPTS {
        if let Some(g) = pair_and_repair(n, d, rng) {
            if is_connected(&g) {
                return Ok(g);
            }
        }
    }
    Err(GraphError::GenerationFailed {
        reason: format!("configuration model failed for n = {n}, d = {d} after {RANDOM_REGULAR_MAX_ATTEMPTS} attempts"),
    })
}

/// One pairing attempt followed by double-edge-swap repair; `None` if repair
/// did not converge.
fn pair_and_repair<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Option<Graph> {
    use std::collections::HashSet;

    let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
    for u in 0..n {
        for _ in 0..d {
            stubs.push(u as u32);
        }
    }
    stubs.shuffle(rng);

    let m = n * d / 2;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
    for pair in stubs.chunks_exact(2) {
        edges.push((pair[0], pair[1]));
    }

    let key = |u: u32, v: u32| if u < v { (u, v) } else { (v, u) };
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(m);
    // Indices of edges that are self-loops or duplicates of an earlier edge.
    let mut defective: Vec<usize> = Vec::new();
    for (i, &(u, v)) in edges.iter().enumerate() {
        if u == v || !seen.insert(key(u, v)) {
            defective.push(i);
        }
    }

    // Repair defective edges by random double-edge swaps. Each iteration
    // either fixes a defective edge or burns one unit of budget.
    let mut budget = 200 * (defective.len() + 1) + 100;
    while let Some(&i) = defective.last() {
        if budget == 0 {
            return None;
        }
        budget -= 1;
        let (u, v) = edges[i];
        let j = rng.gen_range(0..edges.len());
        if j == i || defective.contains(&j) {
            continue;
        }
        let (x, y) = edges[j];
        // Propose replacing (u,v),(x,y) with (u,x),(v,y); randomize orientation
        // of the partner edge so both swap variants are reachable.
        let (x, y) = if rng.gen_bool(0.5) { (x, y) } else { (y, x) };
        if u == x || v == y {
            continue;
        }
        if seen.contains(&key(u, x)) || seen.contains(&key(v, y)) {
            continue;
        }
        // The partner edge (x,y) is a good edge: remove it from the seen set.
        seen.remove(&key(x, y));
        // The defective edge may or may not be present in `seen` (self-loops
        // and duplicates never were); removal is a no-op in that case because
        // the surviving original copy keeps its entry.
        seen.insert(key(u, x));
        seen.insert(key(v, y));
        edges[i] = (u, x);
        edges[j] = (v, y);
        defective.pop();
    }

    let mut b = GraphBuilder::with_capacity(n, m);
    for &(u, v) in &edges {
        b.add_edge(u as usize, v as usize).ok()?;
    }
    Some(b.build())
}

/// A cycle of `num_cliques` cliques, each on `d + 1` vertices, giving a
/// connected `d`-regular graph with `num_cliques * (d + 1)` vertices.
///
/// Construction: inside clique `i` (vertices `i*(d+1) .. (i+1)*(d+1)`), all
/// pairs are connected *except* the pair (first, second); the "second" vertex
/// of clique `i` is instead connected to the "first" vertex of clique
/// `i + 1 mod num_cliques`. Every vertex therefore has degree exactly `d`.
///
/// This is the regular family on which broadcast is slow (`Ω(num_cliques)` for
/// every protocol): it plays the role of the "path of `d`-cliques" the paper
/// mentions as the slow extreme among regular graphs.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `num_cliques < 3` or `d < 2`.
pub fn cycle_of_cliques(num_cliques: usize, d: usize) -> Result<Graph> {
    if num_cliques < 3 {
        return Err(GraphError::InvalidParameters {
            reason: "cycle_of_cliques requires num_cliques >= 3".into(),
        });
    }
    if d < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "cycle_of_cliques requires d >= 2".into(),
        });
    }
    let k = d + 1;
    let n = num_cliques * k;
    let mut b = GraphBuilder::with_capacity(n, num_cliques * (k * (k - 1) / 2));
    for i in 0..num_cliques {
        let base = i * k;
        for a in 0..k {
            for c in (a + 1)..k {
                // Omit the (first, second) pair: its two endpoints get the
                // inter-clique edges instead.
                if a == 0 && c == 1 {
                    continue;
                }
                b.add_edge(base + a, base + c)?;
            }
        }
        // Connect this clique's "second" vertex to the next clique's "first".
        let next_base = ((i + 1) % num_cliques) * k;
        b.add_edge(base + 1, next_base)?;
    }
    Ok(b.build())
}

/// A `d`-regular "two-community" graph: two random `d/2`-regular-ish halves
/// joined by a perfect matching, built so that the whole graph is exactly
/// `d`-regular. Used as an extra regular topology with a sparse cut, stressing
/// the `T_push ≍ T_visitx` equivalence away from expanders.
///
/// Each half has `half_n` vertices with an internal random `(d-1)`-regular
/// graph; the matching between halves contributes the final degree unit.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `d < 3`, `half_n <= d`, or
/// `half_n * (d - 1)` is odd; [`GraphError::GenerationFailed`] if the
/// internal random-regular generation fails.
pub fn matched_communities<R: Rng + ?Sized>(half_n: usize, d: usize, rng: &mut R) -> Result<Graph> {
    if d < 3 {
        return Err(GraphError::InvalidParameters {
            reason: "matched_communities requires d >= 3".into(),
        });
    }
    if half_n <= d {
        return Err(GraphError::InvalidParameters {
            reason: "matched_communities requires half_n > d".into(),
        });
    }
    if !(half_n * (d - 1)).is_multiple_of(2) {
        return Err(GraphError::InvalidParameters {
            reason: "matched_communities requires half_n * (d - 1) to be even".into(),
        });
    }
    let a = random_regular(half_n, d - 1, rng)?;
    let b_half = random_regular(half_n, d - 1, rng)?;
    let n = 2 * half_n;
    let mut builder = GraphBuilder::with_capacity(n, half_n * (d - 1) + half_n);
    for (u, v) in a.edges() {
        builder.add_edge(u, v)?;
    }
    for (u, v) in b_half.edges() {
        builder.add_edge(u + half_n, v + half_n)?;
    }
    // Perfect matching across the cut.
    let mut right: Vec<usize> = (half_n..n).collect();
    right.shuffle(rng);
    for (u, &v) in right.iter().enumerate() {
        builder.add_edge(u, v)?;
    }
    Ok(builder.build())
}

/// Chooses an even degree close to `factor * log2(n)`, suitable for the
/// `d = Θ(log n)` regime of Theorem 1. The returned degree is at least 4 and
/// always makes `n * d` even.
pub fn logarithmic_degree(n: usize, factor: f64) -> usize {
    let log = (n.max(2) as f64).log2();
    let mut d = (factor * log).round() as usize;
    if d < 4 {
        d = 4;
    }
    if d % 2 == 1 {
        d += 1;
    }
    if d >= n {
        d = if n > 2 { ((n - 1) / 2) * 2 } else { 2 };
    }
    d.max(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_regular_basic_properties() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = random_regular(64, 6, &mut rng).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 64);
        assert_eq!(g.regular_degree(), Some(6));
        assert!(is_connected(&g));
    }

    #[test]
    fn random_regular_various_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(n, d) in &[(10, 3), (50, 4), (128, 8), (200, 11)] {
            if (n * d) % 2 == 1 {
                continue;
            }
            let g = random_regular(n, d, &mut rng).unwrap();
            assert_eq!(g.regular_degree(), Some(d), "n={n} d={d}");
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn random_regular_rejects_invalid_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_regular(10, 0, &mut rng).is_err());
        assert!(random_regular(10, 10, &mut rng).is_err());
        assert!(random_regular(5, 3, &mut rng).is_err()); // n*d odd
    }

    #[test]
    fn random_regular_is_reproducible_with_same_seed() {
        let g1 = random_regular(40, 4, &mut StdRng::seed_from_u64(5)).unwrap();
        let g2 = random_regular(40, 4, &mut StdRng::seed_from_u64(5)).unwrap();
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn cycle_of_cliques_is_regular_and_connected() {
        let g = cycle_of_cliques(5, 6).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 5 * 7);
        assert_eq!(g.regular_degree(), Some(6));
        assert!(is_connected(&g));
    }

    #[test]
    fn cycle_of_cliques_small_degree() {
        let g = cycle_of_cliques(4, 2).unwrap();
        assert_eq!(g.regular_degree(), Some(2));
        assert!(is_connected(&g));
    }

    #[test]
    fn cycle_of_cliques_rejects_invalid() {
        assert!(cycle_of_cliques(2, 4).is_err());
        assert!(cycle_of_cliques(5, 1).is_err());
    }

    #[test]
    fn matched_communities_is_regular() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = matched_communities(30, 5, &mut rng).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 60);
        assert_eq!(g.regular_degree(), Some(5));
        assert!(is_connected(&g));
    }

    #[test]
    fn matched_communities_rejects_invalid() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matched_communities(30, 2, &mut rng).is_err());
        assert!(matched_communities(4, 5, &mut rng).is_err());
        assert!(matched_communities(31, 4, &mut rng).is_err()); // odd product
    }

    #[test]
    fn logarithmic_degree_is_even_and_reasonable() {
        for &n in &[16usize, 100, 1000, 10_000, 100_000] {
            let d = logarithmic_degree(n, 2.0);
            assert!(d >= 4);
            assert_eq!(d % 2, 0);
            assert!(d < n);
            let log = (n as f64).log2();
            assert!((d as f64) <= 2.0 * log + 2.0, "n = {n}, d = {d}");
        }
    }

    #[test]
    fn logarithmic_degree_tiny_graphs() {
        assert!(logarithmic_degree(5, 2.0) >= 2);
        assert!(logarithmic_degree(5, 2.0) < 5);
    }
}
