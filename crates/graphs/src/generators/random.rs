//! Random graph models used as additional non-regular test beds.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;

/// Erdős–Rényi random graph `G(n, p)`: each of the `n(n-1)/2` possible edges
/// is present independently with probability `p`.
///
/// The result may be disconnected; use
/// [`connected_erdos_renyi`] when a connected instance is required.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n == 0` or `p` is not in
/// `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let g = rumor_graphs::generators::erdos_renyi(50, 0.2, &mut rng)?;
/// assert_eq!(g.num_vertices(), 50);
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "erdos_renyi requires n >= 1".into(),
        });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameters {
            reason: format!("erdos_renyi requires p in [0, 1], got {p}"),
        });
    }
    let expected_edges = (p * (n * (n - 1) / 2) as f64).ceil() as usize;
    let mut b = GraphBuilder::with_capacity(n, expected_edges);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u, v)?;
            }
        }
    }
    Ok(b.build())
}

/// Maximum number of retries for [`connected_erdos_renyi`].
const ER_CONNECT_MAX_ATTEMPTS: usize = 100;

/// Erdős–Rényi `G(n, p)` conditioned on being connected, by rejection sampling.
///
/// # Errors
///
/// In addition to the parameter errors of [`erdos_renyi`], returns
/// [`GraphError::GenerationFailed`] if no connected instance appears within
/// the retry budget (use `p` comfortably above the `ln n / n` connectivity
/// threshold).
pub fn connected_erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    for _ in 0..ER_CONNECT_MAX_ATTEMPTS {
        let g = erdos_renyi(n, p, rng)?;
        if n <= 1 || crate::algorithms::is_connected(&g) {
            return Ok(g);
        }
    }
    Err(GraphError::GenerationFailed {
        reason: format!(
            "no connected G({n}, {p}) instance in {ER_CONNECT_MAX_ATTEMPTS} attempts; increase p"
        ),
    })
}

/// A "barbell": two `k`-cliques joined by a single bridge edge.
///
/// A classic worst case for push-pull-style protocols relative to their
/// bandwidth-fair alternatives: the bridge is sampled with probability
/// `Θ(1/k)` per round per endpoint.
///
/// Vertices `0..k` form the first clique, `k..2k` the second; the bridge is
/// `(k - 1, k)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `k < 2`.
pub fn barbell(k: usize) -> Result<Graph> {
    if k < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "barbell requires k >= 2".into(),
        });
    }
    let n = 2 * k;
    let mut b = GraphBuilder::with_capacity(n, k * (k - 1) + 1);
    let left: Vec<usize> = (0..k).collect();
    let right: Vec<usize> = (k..n).collect();
    b.add_clique(&left)?;
    b.add_clique(&right)?;
    b.add_edge(k - 1, k)?;
    Ok(b.build())
}

/// A "lollipop": a `k`-clique with a path of `tail` extra vertices attached.
///
/// Vertices `0..k` form the clique; the tail is `k, k+1, ..., k+tail-1`
/// attached at clique vertex `k - 1`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `k < 2` or `tail == 0`.
pub fn lollipop(k: usize, tail: usize) -> Result<Graph> {
    if k < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "lollipop requires k >= 2".into(),
        });
    }
    if tail == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "lollipop requires tail >= 1".into(),
        });
    }
    let n = k + tail;
    let mut b = GraphBuilder::with_capacity(n, k * (k - 1) / 2 + tail);
    let clique: Vec<usize> = (0..k).collect();
    b.add_clique(&clique)?;
    b.add_edge(k - 1, k)?;
    for u in k + 1..n {
        b.add_edge(u - 1, u)?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        let mut rng = StdRng::seed_from_u64(0);
        let empty = erdos_renyi(20, 0.0, &mut rng).unwrap();
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi(20, 1.0, &mut rng).unwrap();
        assert_eq!(full.num_edges(), 20 * 19 / 2);
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200;
        let p = 0.1;
        let g = erdos_renyi(n, p, &mut rng).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = g.num_edges() as f64;
        assert!(
            (actual - expected).abs() < 0.15 * expected,
            "expected ~{expected}, got {actual}"
        );
    }

    #[test]
    fn erdos_renyi_rejects_invalid() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(erdos_renyi(0, 0.5, &mut rng).is_err());
        assert!(erdos_renyi(10, 1.5, &mut rng).is_err());
        assert!(erdos_renyi(10, -0.1, &mut rng).is_err());
    }

    #[test]
    fn connected_erdos_renyi_is_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = connected_erdos_renyi(80, 0.1, &mut rng).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn connected_erdos_renyi_gives_up_for_tiny_p() {
        let mut rng = StdRng::seed_from_u64(5);
        let res = connected_erdos_renyi(200, 0.0, &mut rng);
        assert!(matches!(res, Err(GraphError::GenerationFailed { .. })));
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(5).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 2 * 10 + 1);
        assert!(g.has_edge(4, 5));
        assert_eq!(g.degree(4), 5);
        assert_eq!(g.degree(0), 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn barbell_rejects_small_k() {
        assert!(barbell(1).is_err());
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 6 + 3);
        assert_eq!(g.degree(6), 1);
        assert_eq!(g.degree(3), 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn lollipop_rejects_invalid() {
        assert!(lollipop(1, 3).is_err());
        assert!(lollipop(4, 0).is_err());
    }
}
