//! Elementary graph families: paths, cycles, cliques, stars, trees, grids.
//!
//! Vertex numbering conventions are documented per generator so that callers
//! (e.g. the experiment harness) can pick specific source vertices such as
//! "the center of the star" or "a leaf of the tree".

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;

/// A path `0 - 1 - ... - (n-1)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n == 0`.
///
/// # Examples
///
/// ```
/// let g = rumor_graphs::generators::path(5)?;
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.degree(0), 1);
/// assert_eq!(g.degree(2), 2);
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
pub fn path(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "path requires n >= 1".into(),
        });
    }
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for u in 1..n {
        b.add_edge(u - 1, u)?;
    }
    Ok(b.build())
}

/// A cycle `0 - 1 - ... - (n-1) - 0`. The smallest 2-regular graph family.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n < 3`.
pub fn cycle(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(GraphError::InvalidParameters {
            reason: "cycle requires n >= 3".into(),
        });
    }
    let mut b = GraphBuilder::with_capacity(n, n);
    for u in 1..n {
        b.add_edge(u - 1, u)?;
    }
    b.add_edge(n - 1, 0)?;
    Ok(b.build())
}

/// The complete graph `K_n`, an `(n-1)`-regular graph.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n < 2`.
pub fn complete(n: usize) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "complete requires n >= 2".into(),
        });
    }
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
    let vertices: Vec<usize> = (0..n).collect();
    b.add_clique(&vertices)?;
    Ok(b.build())
}

/// The star `S_n` of Fig. 1(a): one center (vertex `0`) connected to
/// `leaves` leaf vertices `1..=leaves`.
///
/// On this graph `push` needs `Ω(n log n)` rounds (coupon collector at the
/// center) while `push-pull`, `visit-exchange` and `meet-exchange` are fast.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `leaves == 0`.
pub fn star(leaves: usize) -> Result<Graph> {
    if leaves == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "star requires >= 1 leaf".into(),
        });
    }
    let n = leaves + 1;
    let mut b = GraphBuilder::with_capacity(n, leaves);
    for leaf in 1..n {
        b.add_edge(0, leaf)?;
    }
    Ok(b.build())
}

/// The center vertex of a graph produced by [`star`].
pub const STAR_CENTER: usize = 0;

/// The double star `S²_n` of Fig. 1(b): two stars whose centers are joined by
/// an edge. Vertex `0` and vertex `1` are the two centers; vertices
/// `2 ..= leaves_per_star + 1` hang off center `0` and the rest off center `1`.
///
/// On this graph even `push-pull` needs `Ω(n)` rounds in expectation (the
/// center-center edge is sampled with probability `O(1/n)` per round), while
/// both agent-based protocols finish in `O(log n)` rounds w.h.p.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `leaves_per_star == 0`.
pub fn double_star(leaves_per_star: usize) -> Result<Graph> {
    if leaves_per_star == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "double_star requires >= 1 leaf per star".into(),
        });
    }
    let n = 2 * leaves_per_star + 2;
    let mut b = GraphBuilder::with_capacity(n, 2 * leaves_per_star + 1);
    b.add_edge(DOUBLE_STAR_CENTER_A, DOUBLE_STAR_CENTER_B)?;
    for i in 0..leaves_per_star {
        b.add_edge(DOUBLE_STAR_CENTER_A, 2 + i)?;
    }
    for i in 0..leaves_per_star {
        b.add_edge(DOUBLE_STAR_CENTER_B, 2 + leaves_per_star + i)?;
    }
    Ok(b.build())
}

/// First center of a [`double_star`] graph.
pub const DOUBLE_STAR_CENTER_A: usize = 0;
/// Second center of a [`double_star`] graph.
pub const DOUBLE_STAR_CENTER_B: usize = 1;

/// A complete (balanced) binary tree with `n = 2^(depth+1) - 1` vertices in
/// heap order: vertex `0` is the root and vertex `u` has children `2u + 1`
/// and `2u + 2`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `depth > 40` (would overflow
/// practical sizes).
pub fn binary_tree(depth: u32) -> Result<Graph> {
    if depth > 40 {
        return Err(GraphError::InvalidParameters {
            reason: "binary_tree depth too large".into(),
        });
    }
    let n = (1usize << (depth + 1)) - 1;
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for u in 1..n {
        b.add_edge(u, (u - 1) / 2)?;
    }
    Ok(b.build())
}

/// Number of vertices in a complete binary tree of the given depth.
pub fn binary_tree_size(depth: u32) -> usize {
    (1usize << (depth + 1)) - 1
}

/// Indices of the leaves of a [`binary_tree`] of the given depth
/// (the last `2^depth` heap positions).
pub fn binary_tree_leaves(depth: u32) -> std::ops::Range<usize> {
    let n = binary_tree_size(depth);
    let first_leaf = (1usize << depth) - 1;
    first_leaf..n
}

/// A 2-dimensional grid with `rows * cols` vertices. Vertex `(r, c)` is
/// numbered `r * cols + c`. Not regular (border effects); see [`torus`] for
/// the 4-regular variant.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if either dimension is `0`.
pub fn grid(rows: usize, cols: usize) -> Result<Graph> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "grid requires rows, cols >= 1".into(),
        });
    }
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let u = r * cols + c;
            if c + 1 < cols {
                b.add_edge(u, u + 1)?;
            }
            if r + 1 < rows {
                b.add_edge(u, u + cols)?;
            }
        }
    }
    Ok(b.build())
}

/// A 2-dimensional torus (grid with wrap-around), 4-regular when both
/// dimensions are at least 3.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if either dimension is `< 3`.
pub fn torus(rows: usize, cols: usize) -> Result<Graph> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::InvalidParameters {
            reason: "torus requires rows, cols >= 3".into(),
        });
    }
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let u = r * cols + c;
            let right = r * cols + (c + 1) % cols;
            let down = ((r + 1) % rows) * cols + c;
            b.add_edge_dedup(u, right)?;
            b.add_edge_dedup(u, down)?;
        }
    }
    Ok(b.build())
}

/// The `dim`-dimensional hypercube: `2^dim` vertices, each of degree `dim`.
/// Vertices are adjacent iff their indices differ in exactly one bit.
///
/// A standard regular graph with `d = log2 n`, i.e. exactly the logarithmic
/// degree regime of the paper's Theorem 1.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `dim == 0` or `dim > 30`.
pub fn hypercube(dim: u32) -> Result<Graph> {
    if dim == 0 || dim > 30 {
        return Err(GraphError::InvalidParameters {
            reason: "hypercube requires 1 <= dim <= 30".into(),
        });
    }
    let n = 1usize << dim;
    let mut b = GraphBuilder::with_capacity(n, n * dim as usize / 2);
    for u in 0..n {
        for bit in 0..dim {
            let v = u ^ (1usize << bit);
            if u < v {
                b.add_edge(u, v)?;
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::is_connected;

    #[test]
    fn path_shape() {
        let g = path(6).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(5), 1);
        assert_eq!(g.degree(3), 2);
        assert!(is_connected(&g));
    }

    #[test]
    fn path_of_one_vertex() {
        let g = path(1).unwrap();
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn path_rejects_zero() {
        assert!(path(0).is_err());
    }

    #[test]
    fn cycle_is_two_regular() {
        let g = cycle(7).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.regular_degree(), Some(2));
        assert!(is_connected(&g));
    }

    #[test]
    fn cycle_rejects_small() {
        assert!(cycle(2).is_err());
    }

    #[test]
    fn complete_is_n_minus_one_regular() {
        let g = complete(6).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.regular_degree(), Some(5));
    }

    #[test]
    fn complete_rejects_single_vertex() {
        assert!(complete(1).is_err());
    }

    #[test]
    fn star_shape() {
        let g = star(9).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(STAR_CENTER), 9);
        for leaf in 1..10 {
            assert_eq!(g.degree(leaf), 1);
            assert!(g.has_edge(STAR_CENTER, leaf));
        }
    }

    #[test]
    fn star_rejects_zero_leaves() {
        assert!(star(0).is_err());
    }

    #[test]
    fn double_star_shape() {
        let l = 5;
        let g = double_star(l).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 2 * l + 2);
        assert_eq!(g.num_edges(), 2 * l + 1);
        assert_eq!(g.degree(DOUBLE_STAR_CENTER_A), l + 1);
        assert_eq!(g.degree(DOUBLE_STAR_CENTER_B), l + 1);
        assert!(g.has_edge(DOUBLE_STAR_CENTER_A, DOUBLE_STAR_CENTER_B));
        assert!(is_connected(&g));
        // Leaves of A attach only to A, leaves of B only to B.
        for i in 0..l {
            assert!(g.has_edge(DOUBLE_STAR_CENTER_A, 2 + i));
            assert!(g.has_edge(DOUBLE_STAR_CENTER_B, 2 + l + i));
        }
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(3).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.degree(0), 2);
        assert_eq!(binary_tree_leaves(3), 7..15);
        for leaf in binary_tree_leaves(3) {
            assert_eq!(g.degree(leaf), 1);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn binary_tree_size_matches() {
        assert_eq!(binary_tree_size(0), 1);
        assert_eq!(binary_tree_size(4), 31);
        assert_eq!(binary_tree(4).unwrap().num_vertices(), 31);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(1), 3); // border
        assert_eq!(g.degree(5), 4); // interior
        assert!(is_connected(&g));
    }

    #[test]
    fn torus_is_four_regular() {
        let g = torus(4, 5).unwrap();
        g.validate().unwrap();
        assert_eq!(g.regular_degree(), Some(4));
        assert_eq!(g.num_edges(), 2 * 20);
        assert!(is_connected(&g));
    }

    #[test]
    fn torus_rejects_small_dimensions() {
        assert!(torus(2, 5).is_err());
        assert!(torus(5, 2).is_err());
    }

    #[test]
    fn hypercube_is_log_regular() {
        let g = hypercube(5).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 32);
        assert_eq!(g.regular_degree(), Some(5));
        assert_eq!(g.num_edges(), 32 * 5 / 2);
        assert!(is_connected(&g));
    }

    #[test]
    fn hypercube_adjacency_is_single_bit_flips() {
        let g = hypercube(4).unwrap();
        for (u, v) in g.edges() {
            assert_eq!((u ^ v).count_ones(), 1);
        }
    }

    #[test]
    fn hypercube_rejects_bad_dims() {
        assert!(hypercube(0).is_err());
        assert!(hypercube(31).is_err());
    }
}
