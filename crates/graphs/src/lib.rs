//! # rumor-graphs
//!
//! Graph substrate for the `rumor` workspace, which reproduces the PODC 2019
//! paper *“How to Spread a Rumor: Call Your Neighbors or Take a Walk?”*
//! (Giakkoupis, Mallmann-Trenn, Saribekyan).
//!
//! The crate provides:
//!
//! * the sealed [`Topology`] abstraction with four backends: an immutable
//!   CSR [`Graph`] optimized for the one operation every rumor protocol
//!   performs millions of times — sampling a uniformly random neighbor
//!   ([`Graph::random_neighbor`]) — the closed-form [`ImplicitGraph`]
//!   storing the paper's structured families as `O(1)` parameters (48 bytes
//!   at any size; a 10⁸-vertex cycle-of-stars whose CSR build would not even
//!   fit `u32` adjacency indexing simulates bit-identically to a
//!   materialized build), the seed-keyed [`GeneratedGraph`] deriving
//!   random families — G(n, p) and Chung–Lu power-law — on demand from a
//!   counter-based Philox hash in `O(n)` memory, and the hub-cached hybrid
//!   [`HubCachedGraph`] layering exact CSR adjacency for the top-k
//!   highest-degree vertices over the hashed path (the heavy tail
//!   stationary agent walks revisit constantly). [`AnyTopology`] selects a
//!   backend at runtime; all backends offer degree-proportional
//!   (stationary) vertex sampling for placing random-walk agents
//!   ([`Graph::sample_stationary`]);
//! * [`GraphBuilder`] for incremental construction;
//! * [`generators`] for every graph family appearing in the paper (star,
//!   double star, heavy binary tree, Siamese heavy binary trees, cycle of
//!   stars of cliques) and the regular families used by its theorems
//!   (random regular graphs, hypercubes, cycles of cliques, complete graphs);
//! * [`algorithms`] for BFS, connectivity, diameter, degree statistics and cut
//!   conductance, used by the experiment harness for sanity checks and
//!   reporting.
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use rumor_graphs::{algorithms, generators};
//!
//! // The double star of Fig. 1(b): push-pull is slow here, the agent-based
//! // protocols are fast.
//! let g = generators::double_star(500)?;
//! assert_eq!(g.num_vertices(), 1002);
//! assert_eq!(algorithms::diameter_exact(&g), Some(3));
//!
//! // A random 8-regular graph for the Theorem 1 regime.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let r = generators::random_regular(256, 8, &mut rng)?;
//! assert_eq!(r.regular_degree(), Some(8));
//! # Ok::<(), rumor_graphs::GraphError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Unsafe is denied by default; the only exception is the bounds-check-free
// adjacency read in `Graph::random_neighbor{,_nonisolated}` (the innermost
// simulation loop), which carries its own safety argument.
#![deny(unsafe_code)]

mod builder;
mod error;
mod generated;
mod graph;
mod hub_cached;
mod implicit;
mod topology;

pub mod algorithms;
pub mod codec;
pub mod generators;

pub use builder::GraphBuilder;
pub use error::{GraphError, Result};
pub use generated::GeneratedGraph;
pub use graph::{Edges, Graph, VertexId};
pub use hub_cached::{HubCacheBuilder, HubCachedGraph};
pub use implicit::ImplicitGraph;
pub use topology::{AnyTopology, Topology};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Every generated random-regular graph is simple, connected and regular.
        #[test]
        fn random_regular_invariants(n in 8usize..80, half_d in 1usize..4, seed in 0u64..50) {
            let mut d = 2 * half_d; // even degree keeps n*d even for all n
            if d >= n { d = ((n - 1) / 2) * 2; }
            prop_assume!(d >= 2);
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::random_regular(n, d, &mut rng).unwrap();
            prop_assert!(g.validate().is_ok());
            prop_assert_eq!(g.regular_degree(), Some(d));
            prop_assert!(algorithms::is_connected(&g));
            prop_assert_eq!(g.num_edges(), n * d / 2);
        }

        /// CSR round-trip: building from an arbitrary edge set preserves the
        /// edge set exactly (as a sorted, deduplicated undirected set).
        #[test]
        fn builder_preserves_edge_set(edges in proptest::collection::hash_set((0usize..30, 0usize..30), 0..120)) {
            let normalized: std::collections::BTreeSet<(usize, usize)> = edges
                .iter()
                .filter(|(u, v)| u != v)
                .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
                .collect();
            let mut b = GraphBuilder::new(30);
            for &(u, v) in &normalized {
                b.add_edge(u, v).unwrap();
            }
            let g = b.build();
            prop_assert!(g.validate().is_ok());
            let rebuilt: std::collections::BTreeSet<(usize, usize)> = g.edges().collect();
            prop_assert_eq!(rebuilt, normalized);
        }

        /// Stationary distribution always sums to 1 and is degree proportional.
        #[test]
        fn stationary_distribution_sums_to_one(n in 2usize..40, seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_erdos_renyi(n, 0.4, &mut rng).unwrap();
            prop_assume!(g.num_edges() > 0);
            let pi = g.stationary_distribution();
            let sum: f64 = pi.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            for u in g.vertices() {
                prop_assert!((pi[u] - g.degree(u) as f64 / g.total_degree() as f64).abs() < 1e-12);
            }
        }

        /// BFS distances satisfy the triangle-ish property along edges:
        /// adjacent vertices' distances differ by at most 1.
        #[test]
        fn bfs_distance_lipschitz_along_edges(n in 2usize..40, seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_erdos_renyi(n, 0.3, &mut rng).unwrap();
            let dist = algorithms::bfs_distances(&g, 0);
            for (u, v) in g.edges() {
                let du = dist[u] as i64;
                let dv = dist[v] as i64;
                prop_assert!((du - dv).abs() <= 1, "edge ({}, {}) has distances {} and {}", u, v, du, dv);
            }
        }

        /// When `bipartition` succeeds, every edge crosses the two sides; and
        /// the verdict is consistent with the parity of BFS distances
        /// (a graph is bipartite iff no edge joins two vertices at equal BFS
        /// parity in the same component).
        #[test]
        fn bipartition_is_a_proper_two_coloring(n in 2usize..40, seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_erdos_renyi(n, 0.25, &mut rng).unwrap();
            let dist = algorithms::bfs_distances(&g, 0);
            let parity_clash = g
                .edges()
                .any(|(u, v)| dist[u] % 2 == dist[v] % 2);
            match algorithms::bipartition(&g) {
                Some(sides) => {
                    prop_assert!(!parity_clash);
                    for (u, v) in g.edges() {
                        prop_assert!(algorithms::crosses(&sides, u, v));
                    }
                }
                None => prop_assert!(parity_clash),
            }
        }

        /// Subdividing every edge of any graph (replacing it by a length-2
        /// path through a fresh vertex) always yields a bipartite graph.
        #[test]
        fn edge_subdivision_makes_any_graph_bipartite(n in 2usize..25, seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_erdos_renyi(n, 0.4, &mut rng).unwrap();
            prop_assume!(g.num_edges() > 0);
            let mut builder = GraphBuilder::new(n + g.num_edges());
            for (i, (u, v)) in g.edges().enumerate() {
                let mid = n + i;
                builder.add_edge(u, mid).unwrap();
                builder.add_edge(mid, v).unwrap();
            }
            let subdivided = builder.build();
            prop_assert!(algorithms::is_bipartite(&subdivided));
            let (left, right) = algorithms::bipartition_sizes(&subdivided).unwrap();
            prop_assert_eq!(left + right, subdivided.num_vertices());
        }

        /// The spectral-gap estimate always lies in [0, 1] and is at most the
        /// conductance of any sampled cut (Cheeger's easy direction:
        /// gap ≤ 2·Φ, and the lazy gap is ≤ Φ for any specific cut... we use
        /// the safe form gap ≤ 2·Φ_estimate with numerical slack).
        #[test]
        fn spectral_gap_is_bounded_by_cheeger(n in 8usize..48, seed in 0u64..40) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_erdos_renyi(n, 0.3, &mut rng).unwrap();
            prop_assume!(g.num_edges() > 0);
            let est = algorithms::spectral_gap_estimate(&g, 1_500, 1e-9, &mut rng).unwrap();
            prop_assert!((0.0..=1.0).contains(&est.gap));
            prop_assert!((0.0..=1.0).contains(&est.lambda_2));
            if let Some(phi) = algorithms::graph_conductance_estimate(&g, 20, &mut rng) {
                // Cheeger (lazy form): gap ≤ Φ; allow generous numerical slack
                // because both sides are estimates.
                prop_assert!(
                    est.gap <= 2.0 * phi + 0.05,
                    "gap {} exceeds Cheeger bound from conductance {}",
                    est.gap,
                    phi
                );
            }
        }
    }
}
