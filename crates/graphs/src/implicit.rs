//! The implicit topology backend: structured families as arithmetic, not
//! arrays.
//!
//! Every headline instance of the paper — stars, double stars, heavy binary
//! trees, Siamese trees, the cycle of stars of cliques, cycles of cliques,
//! paths/cycles, complete graphs, hypercubes — has adjacency that is pure
//! arithmetic on the vertex id. [`ImplicitGraph`] stores only the family
//! parameters (a few machine words) and computes `degree(u)`, the *i*-th
//! sorted neighbor, and stationary slot→vertex mapping in closed form, so a
//! 10⁸-vertex cycle-of-stars costs bytes where the CSR build would need
//! hundreds of gigabytes (its adjacency would not even fit `u32` indexing).
//!
//! **Bit-identity contract.** Vertex numbering matches the corresponding
//! [`generators`](crate::generators) build exactly, neighbor resolution
//! returns the identical *i*-th **sorted** neighbor the CSR stores, and
//! index draws go through the same degree-specialized sampler
//! ([`crate::graph`]'s shared `index_word`/`sample_index`), whose stream
//! consumption depends only on the degree. A simulation on an
//! `ImplicitGraph` is therefore bit-identical to the same simulation on
//! [`ImplicitGraph::materialize`]'s CSR — pinned per family by the tests
//! below and across whole protocol runs by `rumor-core`'s cross-backend
//! equivalence suite.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{GraphError, Result};
use crate::graph::{index_word, sample_index, Graph, VertexId};
use crate::topology::Topology;

/// A structured graph family stored as `O(1)` parameters (see the
/// module-level documentation above).
///
/// Construct through the family constructors ([`ImplicitGraph::star`],
/// [`ImplicitGraph::cycle_of_stars_of_cliques`], …); each mirrors the
/// validation and vertex numbering of its [`generators`](crate::generators)
/// counterpart, and [`ImplicitGraph::materialize`] recovers the identical
/// CSR build (where it fits in memory).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rumor_graphs::{ImplicitGraph, Topology};
///
/// // Fig. 1(e) at paper scale: ~10⁸ vertices in a few bytes.
/// let g = ImplicitGraph::cycle_of_stars_of_cliques(464)?;
/// assert!(g.num_vertices() > 100_000_000);
/// assert!(g.memory_bytes() < 100);
///
/// // Sampling works exactly like the CSR backend.
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let v = g.random_neighbor(0, &mut rng).unwrap();
/// assert!(v < g.num_vertices());
/// # Ok::<(), rumor_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImplicitGraph {
    family: Family,
    n: usize,
    num_edges: usize,
}

/// The supported families, with derived structural constants precomputed at
/// construction so the per-draw closed forms stay branch-light.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Family {
    /// `0 - 1 - … - (n-1)` ([`generators::path`](crate::generators::path)).
    Path,
    /// `0 - 1 - … - (n-1) - 0` ([`generators::cycle`](crate::generators::cycle)).
    Cycle,
    /// `K_n` ([`generators::complete`](crate::generators::complete)).
    Complete,
    /// Center `0`, leaves `1..=leaves` ([`generators::star`](crate::generators::star)).
    Star { leaves: usize },
    /// Centers `0`/`1`, leaves split between them
    /// ([`generators::double_star`](crate::generators::double_star)).
    DoubleStar { leaves_per_star: usize },
    /// Heap-numbered heavy binary tree, leaves `first_leaf..n` forming a
    /// clique ([`HeavyBinaryTree`](crate::generators::HeavyBinaryTree)).
    HeavyTree {
        depth: u32,
        first_leaf: usize,
        leaf_count: usize,
    },
    /// Two heavy trees sharing root `0`
    /// ([`SiameseHeavyBinaryTree`](crate::generators::SiameseHeavyBinaryTree)).
    Siamese {
        depth: u32,
        tree_size: usize,
        first_leaf: usize,
        leaf_count: usize,
    },
    /// Fig. 1(e): ring `0..m`, star leaves `m..m+m²`, clique interiors after
    /// ([`CycleOfStarsOfCliques`](crate::generators::CycleOfStarsOfCliques)).
    CycleOfStarsOfCliques { m: usize },
    /// `num_cliques` cliques of `k = d + 1` vertices chained into a
    /// `d`-regular ring
    /// ([`generators::cycle_of_cliques`](crate::generators::cycle_of_cliques)).
    CycleOfCliques { num_cliques: usize, k: usize },
    /// The `dim`-dimensional hypercube
    /// ([`generators::hypercube`](crate::generators::hypercube)).
    Hypercube { dim: u32 },
}

/// The `j`-th (0-based) set bit of `x`, which must have more than `j` set
/// bits.
#[inline]
fn nth_set_bit(mut x: u64, mut j: usize) -> u32 {
    loop {
        debug_assert!(x != 0);
        if j == 0 {
            return x.trailing_zeros();
        }
        x &= x - 1;
        j -= 1;
    }
}

impl ImplicitGraph {
    fn invalid(reason: &str) -> GraphError {
        GraphError::InvalidParameters {
            reason: reason.into(),
        }
    }

    /// Vertex ids must fit the protocol engines' `u32` dense lists.
    fn check_addressable(n: usize) -> Result<()> {
        if n > u32::MAX as usize {
            return Err(Self::invalid("implicit graph exceeds u32 vertex ids"));
        }
        Ok(())
    }

    /// The shared sampler word encodes degrees only up to
    /// `MAX_SAMPLER_DEGREE` (2²⁹ − 2; larger payloads would collide with
    /// the word's tag bits). The CSR build asserts this per vertex; the
    /// unbounded implicit families (complete, star, double star, cycle of
    /// cliques) must refuse such parameters up front rather than sample
    /// garbage.
    fn check_degree(d: usize) -> Result<()> {
        if d > crate::graph::MAX_SAMPLER_DEGREE {
            return Err(Self::invalid(
                "implicit graph's maximum degree exceeds the sampler word range",
            ));
        }
        Ok(())
    }

    /// A path `0 - 1 - … - (n-1)`; requires `n >= 1`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] under the same conditions
    /// as [`generators::path`](crate::generators::path).
    pub fn path(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(Self::invalid("path requires n >= 1"));
        }
        Self::check_addressable(n)?;
        Ok(ImplicitGraph {
            family: Family::Path,
            n,
            num_edges: n - 1,
        })
    }

    /// A cycle on `n >= 3` vertices.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] under the same conditions
    /// as [`generators::cycle`](crate::generators::cycle).
    pub fn cycle(n: usize) -> Result<Self> {
        if n < 3 {
            return Err(Self::invalid("cycle requires n >= 3"));
        }
        Self::check_addressable(n)?;
        Ok(ImplicitGraph {
            family: Family::Cycle,
            n,
            num_edges: n,
        })
    }

    /// The complete graph `K_n`, `n >= 2`. At `n = 10⁵` the CSR build would
    /// hold 10¹⁰ adjacency entries; the implicit form holds three words.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] under the same conditions
    /// as [`generators::complete`](crate::generators::complete).
    pub fn complete(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(Self::invalid("complete requires n >= 2"));
        }
        Self::check_addressable(n)?;
        Self::check_degree(n - 1)?;
        Ok(ImplicitGraph {
            family: Family::Complete,
            n,
            num_edges: n * (n - 1) / 2,
        })
    }

    /// The star with center `0` and `leaves >= 1` leaves.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] under the same conditions
    /// as [`generators::star`](crate::generators::star).
    pub fn star(leaves: usize) -> Result<Self> {
        if leaves == 0 {
            return Err(Self::invalid("star requires >= 1 leaf"));
        }
        Self::check_addressable(leaves + 1)?;
        Self::check_degree(leaves)?;
        Ok(ImplicitGraph {
            family: Family::Star { leaves },
            n: leaves + 1,
            num_edges: leaves,
        })
    }

    /// The double star of Fig. 1(b) with `leaves_per_star >= 1` leaves per
    /// center.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] under the same conditions
    /// as [`generators::double_star`](crate::generators::double_star).
    pub fn double_star(leaves_per_star: usize) -> Result<Self> {
        if leaves_per_star == 0 {
            return Err(Self::invalid("double_star requires >= 1 leaf per star"));
        }
        Self::check_addressable(2 * leaves_per_star + 2)?;
        Self::check_degree(leaves_per_star + 1)?;
        Ok(ImplicitGraph {
            family: Family::DoubleStar { leaves_per_star },
            n: 2 * leaves_per_star + 2,
            num_edges: 2 * leaves_per_star + 1,
        })
    }

    /// The heavy binary tree `B_n` of Fig. 1(c), `1 <= depth <= 28`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] under the same conditions
    /// as [`HeavyBinaryTree::new`](crate::generators::HeavyBinaryTree::new).
    pub fn heavy_tree(depth: u32) -> Result<Self> {
        if depth == 0 || depth > 28 {
            return Err(Self::invalid("heavy binary tree requires 1 <= depth <= 28"));
        }
        let n = (1usize << (depth + 1)) - 1;
        let first_leaf = (1usize << depth) - 1;
        let leaf_count = n - first_leaf;
        Ok(ImplicitGraph {
            family: Family::HeavyTree {
                depth,
                first_leaf,
                leaf_count,
            },
            n,
            num_edges: (n - 1) + leaf_count * (leaf_count - 1) / 2,
        })
    }

    /// The Siamese heavy binary tree `D_n` of Fig. 1(d), `1 <= depth <= 27`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] under the same conditions as
    /// [`SiameseHeavyBinaryTree::new`](crate::generators::SiameseHeavyBinaryTree::new).
    pub fn siamese(depth: u32) -> Result<Self> {
        if depth == 0 || depth > 27 {
            return Err(Self::invalid(
                "siamese heavy binary tree requires 1 <= depth <= 27",
            ));
        }
        let tree_size = (1usize << (depth + 1)) - 1;
        let first_leaf = (1usize << depth) - 1;
        let leaf_count = tree_size - first_leaf;
        Ok(ImplicitGraph {
            family: Family::Siamese {
                depth,
                tree_size,
                first_leaf,
                leaf_count,
            },
            n: 2 * tree_size - 1,
            num_edges: 2 * ((tree_size - 1) + leaf_count * (leaf_count - 1) / 2),
        })
    }

    /// The cycle of stars of cliques of Fig. 1(e), `3 <= m <= 1000`
    /// (`n = m + m² + m³`). `m = 464` is the ~10⁸-vertex paper-scale
    /// instance whose CSR build is unrepresentable (adjacency would exceed
    /// `u32` indexing).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] under the same conditions as
    /// [`CycleOfStarsOfCliques::new`](crate::generators::CycleOfStarsOfCliques::new).
    pub fn cycle_of_stars_of_cliques(m: usize) -> Result<Self> {
        if m < 3 {
            return Err(Self::invalid("cycle_of_stars_of_cliques requires m >= 3"));
        }
        if m > 1000 {
            return Err(Self::invalid(
                "cycle_of_stars_of_cliques requires m <= 1000",
            ));
        }
        let n = m + m * m + m * m * m;
        Self::check_addressable(n)?;
        // Ring + star edges + m² cliques on m + 1 vertices each.
        let num_edges = m + m * m + m * m * ((m + 1) * m / 2);
        Ok(ImplicitGraph {
            family: Family::CycleOfStarsOfCliques { m },
            n,
            num_edges,
        })
    }

    /// A `d`-regular cycle of `num_cliques >= 3` cliques on `d + 1 >= 3`
    /// vertices each.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] under the same conditions
    /// as [`generators::cycle_of_cliques`](crate::generators::cycle_of_cliques).
    pub fn cycle_of_cliques(num_cliques: usize, d: usize) -> Result<Self> {
        if num_cliques < 3 {
            return Err(Self::invalid("cycle_of_cliques requires num_cliques >= 3"));
        }
        if d < 2 {
            return Err(Self::invalid("cycle_of_cliques requires d >= 2"));
        }
        let k = d + 1;
        let n = num_cliques * k;
        Self::check_addressable(n)?;
        Self::check_degree(d)?;
        Ok(ImplicitGraph {
            family: Family::CycleOfCliques { num_cliques, k },
            n,
            num_edges: n * d / 2,
        })
    }

    /// The `dim`-dimensional hypercube, `1 <= dim <= 30`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] under the same conditions
    /// as [`generators::hypercube`](crate::generators::hypercube).
    pub fn hypercube(dim: u32) -> Result<Self> {
        if dim == 0 || dim > 30 {
            return Err(Self::invalid("hypercube requires 1 <= dim <= 30"));
        }
        let n = 1usize << dim;
        Ok(ImplicitGraph {
            family: Family::Hypercube { dim },
            n,
            num_edges: n * dim as usize / 2,
        })
    }

    /// The smallest cycle-of-stars-of-cliques with at least `min_vertices`
    /// vertices (mirrors
    /// [`CycleOfStarsOfCliques::with_at_least`](crate::generators::CycleOfStarsOfCliques::with_at_least)).
    ///
    /// # Errors
    ///
    /// Propagates the constraints of
    /// [`ImplicitGraph::cycle_of_stars_of_cliques`].
    pub fn cycle_of_stars_with_at_least(min_vertices: usize) -> Result<Self> {
        let mut m = 3usize;
        while m + m * m + m * m * m < min_vertices {
            m += 1;
        }
        Self::cycle_of_stars_of_cliques(m)
    }

    /// The structural parameter of the family, where one exists: `m` for the
    /// cycle of stars, leaves for the stars, depth for the trees, `dim` for
    /// the hypercube, `(num_cliques, d)` folded to `num_cliques` for the
    /// cycle of cliques, `n` otherwise. Handy for labelling sweeps.
    pub fn parameter(&self) -> usize {
        match self.family {
            Family::Path | Family::Cycle | Family::Complete => self.n,
            Family::Star { leaves } => leaves,
            Family::DoubleStar { leaves_per_star } => leaves_per_star,
            Family::HeavyTree { depth, .. } | Family::Siamese { depth, .. } => depth as usize,
            Family::CycleOfStarsOfCliques { m } => m,
            Family::CycleOfCliques { num_cliques, .. } => num_cliques,
            Family::Hypercube { dim } => dim as usize,
        }
    }

    /// A short stable family name (for bench/report labels).
    pub fn family_name(&self) -> &'static str {
        match self.family {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::Complete => "complete",
            Family::Star { .. } => "star",
            Family::DoubleStar { .. } => "double-star",
            Family::HeavyTree { .. } => "heavy-tree",
            Family::Siamese { .. } => "siamese",
            Family::CycleOfStarsOfCliques { .. } => "cycle-of-stars-of-cliques",
            Family::CycleOfCliques { .. } => "cycle-of-cliques",
            Family::Hypercube { .. } => "hypercube",
        }
    }

    /// Builds the CSR [`Graph`] with the identical vertex numbering and edge
    /// set. Intended for tests and small instances; the paper-scale implicit
    /// instances exist precisely because this does not fit in memory there.
    ///
    /// # Errors
    ///
    /// Propagates the corresponding generator's errors (e.g. a size-safety
    /// rejection).
    pub fn materialize(&self) -> Result<Graph> {
        use crate::generators;
        match self.family {
            Family::Path => generators::path(self.n),
            Family::Cycle => generators::cycle(self.n),
            Family::Complete => generators::complete(self.n),
            Family::Star { leaves } => generators::star(leaves),
            Family::DoubleStar { leaves_per_star } => generators::double_star(leaves_per_star),
            Family::HeavyTree { depth, .. } => {
                generators::HeavyBinaryTree::new(depth).map(|t| t.into_graph())
            }
            Family::Siamese { depth, .. } => {
                generators::SiameseHeavyBinaryTree::new(depth).map(|t| t.into_graph())
            }
            Family::CycleOfStarsOfCliques { m } => {
                generators::CycleOfStarsOfCliques::new(m).map(|c| c.into_graph())
            }
            Family::CycleOfCliques { num_cliques, k } => {
                generators::cycle_of_cliques(num_cliques, k - 1)
            }
            Family::Hypercube { dim } => generators::hypercube(dim),
        }
    }

    /// The `i`-th neighbor of `u` in ascending (sorted) order — exactly the
    /// value the materialized CSR stores at `adjacency[offsets[u] + i]`.
    ///
    /// # Panics
    ///
    /// May panic (or return garbage in release builds) if `u` or `i` is out
    /// of range; callers sample `i < degree(u)`.
    #[inline]
    pub fn nth_neighbor(&self, u: VertexId, i: usize) -> VertexId {
        debug_assert!(u < self.n && i < self.degree(u));
        let n = self.n;
        match self.family {
            Family::Path => {
                if u == 0 {
                    1
                } else if u == n - 1 {
                    n - 2
                } else {
                    u - 1 + 2 * i
                }
            }
            Family::Cycle => {
                if u == 0 {
                    if i == 0 {
                        1
                    } else {
                        n - 1
                    }
                } else if u == n - 1 {
                    if i == 0 {
                        0
                    } else {
                        n - 2
                    }
                } else {
                    u - 1 + 2 * i
                }
            }
            Family::Complete => i + usize::from(i >= u),
            Family::Star { .. } => {
                if u == 0 {
                    i + 1
                } else {
                    0
                }
            }
            Family::DoubleStar { leaves_per_star: l } => {
                if u == 0 {
                    // {1} ∪ leaves 2..2+l is the contiguous range 1..=l+1.
                    i + 1
                } else if u == 1 {
                    if i == 0 {
                        0
                    } else {
                        l + 1 + i
                    }
                } else if u < 2 + l {
                    0
                } else {
                    1
                }
            }
            Family::HeavyTree { first_leaf, .. } => {
                if u == 0 {
                    i + 1
                } else if u < first_leaf {
                    if i == 0 {
                        (u - 1) / 2
                    } else {
                        2 * u + i
                    }
                } else if i == 0 {
                    (u - 1) / 2
                } else {
                    // Leaf clique range with the hole at u itself.
                    let x = first_leaf + (i - 1);
                    x + usize::from(x >= u)
                }
            }
            Family::Siamese {
                tree_size,
                first_leaf,
                ..
            } => {
                let t = tree_size;
                if u == 0 {
                    // Children of both copies: {1, 2, T, T + 1}.
                    if i < 2 {
                        i + 1
                    } else {
                        t + (i - 2)
                    }
                } else if u < t {
                    // First copy: plain heavy-tree numbering.
                    if u < first_leaf {
                        if i == 0 {
                            (u - 1) / 2
                        } else {
                            2 * u + i
                        }
                    } else if i == 0 {
                        (u - 1) / 2
                    } else {
                        let x = first_leaf + (i - 1);
                        x + usize::from(x >= u)
                    }
                } else {
                    // Second copy: abstract vertex a maps to T - 1 + a.
                    let a = u - (t - 1);
                    let pa = (a - 1) / 2;
                    let parent = if pa == 0 { 0 } else { t - 1 + pa };
                    if a < first_leaf {
                        if i == 0 {
                            parent
                        } else {
                            t - 1 + 2 * a + i
                        }
                    } else if i == 0 {
                        parent
                    } else {
                        let x = (t - 1 + first_leaf) + (i - 1);
                        x + usize::from(x >= u)
                    }
                }
            }
            Family::CycleOfStarsOfCliques { m } => {
                let m2 = m * m;
                if u < m {
                    // Ring vertex: two ring neighbors, then its leaf range.
                    let r1 = (u + m - 1) % m;
                    let r2 = (u + 1) % m;
                    let (a, b) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
                    match i {
                        0 => a,
                        1 => b,
                        _ => m + u * m + (i - 2),
                    }
                } else if u < m + m2 {
                    // Star leaf: its ring center, then its clique interior.
                    let idx = u - m;
                    if i == 0 {
                        idx / m
                    } else {
                        m + m2 + idx * m + (i - 1)
                    }
                } else {
                    // Clique interior: its leaf, then the clique range with
                    // the hole at u itself.
                    let idx = (u - m - m2) / m;
                    if i == 0 {
                        m + idx
                    } else {
                        let x = m + m2 + idx * m + (i - 1);
                        x + usize::from(x >= u)
                    }
                }
            }
            Family::CycleOfCliques { num_cliques, k } => {
                let c = u / k;
                let r = u % k;
                let base = c * k;
                if r == 0 {
                    // Clique members except the "second", plus the previous
                    // clique's "second" (below the range except at wrap).
                    let p = ((c + num_cliques - 1) % num_cliques) * k + 1;
                    if p < base {
                        if i == 0 {
                            p
                        } else {
                            base + 2 + (i - 1)
                        }
                    } else if i < k - 2 {
                        base + 2 + i
                    } else {
                        p
                    }
                } else if r == 1 {
                    // Clique members except the "first", plus the next
                    // clique's "first" (contiguous above except at wrap).
                    let q = ((c + 1) % num_cliques) * k;
                    if q > base {
                        base + 2 + i
                    } else if i == 0 {
                        q
                    } else {
                        base + 2 + (i - 1)
                    }
                } else {
                    // Interior member: whole clique range, hole at u.
                    let x = base + i;
                    x + usize::from(x >= u)
                }
            }
            Family::Hypercube { dim } => {
                let bits = u as u64;
                let s = bits.count_ones() as usize;
                if i < s {
                    // Lower neighbors ascend as the flipped set bit descends.
                    u ^ (1usize << nth_set_bit(bits, s - 1 - i))
                } else {
                    let unset = !bits & ((1u64 << dim) - 1);
                    u ^ (1usize << nth_set_bit(unset, i - s))
                }
            }
        }
    }

    /// Maps a position in the virtual concatenated adjacency array (vertex
    /// blocks in vertex order, block sizes equal to degrees — the CSR slot
    /// layout) back to its owning vertex: the closed-form inverse of the
    /// degree prefix sum, which is what makes stationary sampling
    /// draw-identical to the CSR backend.
    #[inline]
    fn vertex_of_slot(&self, pos: usize) -> VertexId {
        debug_assert!(pos < 2 * self.num_edges);
        let n = self.n;
        match self.family {
            Family::Path => {
                if pos == 0 {
                    0
                } else {
                    // Interior vertices own two slots each: offsets run
                    // 0, 1, 3, 5, …, so slot `pos` belongs to ⌈pos / 2⌉.
                    pos.div_ceil(2)
                }
            }
            Family::Cycle => pos / 2,
            Family::Complete => pos / (n - 1),
            Family::Star { leaves } => {
                if pos < leaves {
                    0
                } else {
                    1 + (pos - leaves)
                }
            }
            Family::DoubleStar { leaves_per_star: l } => {
                if pos < l + 1 {
                    0
                } else if pos < 2 * l + 2 {
                    1
                } else {
                    2 + (pos - (2 * l + 2))
                }
            }
            Family::HeavyTree {
                first_leaf,
                leaf_count,
                ..
            } => {
                let leaf_start = 2 + 3 * (first_leaf - 1);
                if pos < 2 {
                    0
                } else if pos < leaf_start {
                    1 + (pos - 2) / 3
                } else {
                    first_leaf + (pos - leaf_start) / leaf_count
                }
            }
            Family::Siamese {
                tree_size,
                first_leaf,
                leaf_count,
                ..
            } => {
                let a = 4 + 3 * (first_leaf - 1);
                let b = a + leaf_count * leaf_count;
                let c = b + 3 * (first_leaf - 1);
                if pos < 4 {
                    0
                } else if pos < a {
                    1 + (pos - 4) / 3
                } else if pos < b {
                    first_leaf + (pos - a) / leaf_count
                } else if pos < c {
                    tree_size + (pos - b) / 3
                } else {
                    (tree_size - 1 + first_leaf) + (pos - c) / leaf_count
                }
            }
            Family::CycleOfStarsOfCliques { m } => {
                let ring_slots = m * (m + 2);
                let leaf_slots = ring_slots + m * m * (m + 1);
                if pos < ring_slots {
                    pos / (m + 2)
                } else if pos < leaf_slots {
                    m + (pos - ring_slots) / (m + 1)
                } else {
                    m + m * m + (pos - leaf_slots) / m
                }
            }
            Family::CycleOfCliques { k, .. } => pos / (k - 1),
            Family::Hypercube { dim } => pos / dim as usize,
        }
    }
}

impl Topology for ImplicitGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn degree(&self, u: VertexId) -> usize {
        debug_assert!(u < self.n);
        let n = self.n;
        match self.family {
            Family::Path => {
                if n == 1 {
                    0
                } else if u == 0 || u == n - 1 {
                    1
                } else {
                    2
                }
            }
            Family::Cycle => 2,
            Family::Complete => n - 1,
            Family::Star { leaves } => {
                if u == 0 {
                    leaves
                } else {
                    1
                }
            }
            Family::DoubleStar { leaves_per_star } => {
                if u < 2 {
                    leaves_per_star + 1
                } else {
                    1
                }
            }
            Family::HeavyTree {
                first_leaf,
                leaf_count,
                ..
            } => {
                if u == 0 {
                    2
                } else if u < first_leaf {
                    3
                } else {
                    leaf_count
                }
            }
            Family::Siamese {
                tree_size,
                first_leaf,
                leaf_count,
                ..
            } => {
                if u == 0 {
                    4
                } else {
                    let a = if u < tree_size {
                        u
                    } else {
                        u - (tree_size - 1)
                    };
                    if a < first_leaf {
                        3
                    } else {
                        leaf_count
                    }
                }
            }
            Family::CycleOfStarsOfCliques { m } => {
                if u < m {
                    m + 2
                } else if u < m + m * m {
                    m + 1
                } else {
                    m
                }
            }
            Family::CycleOfCliques { k, .. } => k - 1,
            Family::Hypercube { dim } => dim as usize,
        }
    }

    fn for_each_neighbor(&self, u: VertexId, mut f: impl FnMut(VertexId)) {
        for i in 0..self.degree(u) {
            f(self.nth_neighbor(u, i));
        }
    }

    #[inline(always)]
    fn random_neighbor<R: Rng + ?Sized>(&self, u: VertexId, rng: &mut R) -> Option<VertexId> {
        let d = self.degree(u);
        if d == 0 {
            return None;
        }
        let i = sample_index(index_word(d), rng);
        Some(self.nth_neighbor(u, i as usize))
    }

    #[inline(always)]
    fn random_neighbor_nonisolated<R: Rng + ?Sized>(&self, u: VertexId, rng: &mut R) -> VertexId {
        let d = self.degree(u);
        assert!(d != 0, "random_neighbor_nonisolated on isolated vertex {u}");
        let i = sample_index(index_word(d), rng);
        self.nth_neighbor(u, i as usize)
    }

    #[inline(always)]
    fn random_neighbor_with<R: Rng, F: FnOnce() -> R>(
        &self,
        u: VertexId,
        make_rng: F,
    ) -> Option<VertexId> {
        let d = self.degree(u);
        if d == 0 {
            return None;
        }
        if d == 1 {
            // The draw's outcome is forced; under counter-based streams the
            // unused draw is simply never computed (see
            // `Graph::random_neighbor_with`).
            return Some(self.nth_neighbor(u, 0));
        }
        let mut rng = make_rng();
        let i = sample_index(index_word(d), &mut rng);
        Some(self.nth_neighbor(u, i as usize))
    }

    fn sample_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> VertexId {
        assert!(
            self.num_edges > 0,
            "stationary sampling undefined without edges"
        );
        let pos = rng.gen_range(0..2 * self.num_edges);
        self.vertex_of_slot(pos)
    }

    fn sample_stationary_into<R: Rng + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
        out: &mut Vec<u32>,
    ) {
        assert!(
            self.num_edges > 0,
            "stationary sampling undefined without edges"
        );
        let slots = 2 * self.num_edges;
        out.clear();
        out.reserve(count);
        out.extend((0..count).map(|_| self.vertex_of_slot(rng.gen_range(0..slots)) as u32));
    }

    fn is_bipartite(&self) -> bool {
        match self.family {
            Family::Path | Family::Star { .. } | Family::DoubleStar { .. } => true,
            Family::Cycle => self.n.is_multiple_of(2),
            Family::Complete => self.n == 2,
            // Any leaf clique of >= 2 leaves plus their shared parent is a
            // triangle (depth >= 1 always gives >= 2 leaves per copy).
            Family::HeavyTree { .. } | Family::Siamese { .. } => false,
            // Contains (m + 1)-cliques with m >= 3.
            Family::CycleOfStarsOfCliques { .. } => false,
            // k = 3 degenerates to one big 3·num_cliques-cycle; k >= 4 has
            // triangles among the interior members.
            Family::CycleOfCliques { num_cliques, k } => k == 3 && num_cliques % 2 == 0,
            Family::Hypercube { .. } => true,
        }
    }

    fn regular_degree(&self) -> Option<usize> {
        match self.family {
            Family::Path => match self.n {
                1 => Some(0),
                2 => Some(1),
                _ => None,
            },
            Family::Cycle => Some(2),
            Family::Complete => Some(self.n - 1),
            Family::Star { leaves } => (leaves == 1).then_some(1),
            Family::DoubleStar { .. } => None,
            // Depth 1 is the triangle (root degree 2 == leaf clique degree).
            Family::HeavyTree { depth, .. } => (depth == 1).then_some(2),
            Family::Siamese { .. } => None,
            Family::CycleOfStarsOfCliques { .. } => None,
            Family::CycleOfCliques { k, .. } => Some(k - 1),
            Family::Hypercube { dim } => Some(dim as usize),
        }
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// One instance of every family, small enough to materialize.
    fn all_families() -> Vec<ImplicitGraph> {
        vec![
            ImplicitGraph::path(1).unwrap(),
            ImplicitGraph::path(2).unwrap(),
            ImplicitGraph::path(9).unwrap(),
            ImplicitGraph::cycle(3).unwrap(),
            ImplicitGraph::cycle(10).unwrap(),
            ImplicitGraph::cycle(11).unwrap(),
            ImplicitGraph::complete(2).unwrap(),
            ImplicitGraph::complete(17).unwrap(),
            ImplicitGraph::star(1).unwrap(),
            ImplicitGraph::star(23).unwrap(),
            ImplicitGraph::double_star(1).unwrap(),
            ImplicitGraph::double_star(12).unwrap(),
            ImplicitGraph::heavy_tree(1).unwrap(),
            ImplicitGraph::heavy_tree(4).unwrap(),
            ImplicitGraph::siamese(1).unwrap(),
            ImplicitGraph::siamese(3).unwrap(),
            ImplicitGraph::siamese(4).unwrap(),
            ImplicitGraph::cycle_of_stars_of_cliques(3).unwrap(),
            ImplicitGraph::cycle_of_stars_of_cliques(5).unwrap(),
            ImplicitGraph::cycle_of_cliques(3, 2).unwrap(),
            ImplicitGraph::cycle_of_cliques(4, 2).unwrap(),
            ImplicitGraph::cycle_of_cliques(5, 6).unwrap(),
            ImplicitGraph::hypercube(1).unwrap(),
            ImplicitGraph::hypercube(5).unwrap(),
        ]
    }

    #[test]
    fn counts_and_structure_match_materialized() {
        for g in all_families() {
            let csr = g.materialize().unwrap();
            let label = g.family_name();
            assert_eq!(g.num_vertices(), csr.num_vertices(), "{label} n");
            assert_eq!(g.num_edges(), csr.num_edges(), "{label} m");
            assert_eq!(
                Topology::regular_degree(&g),
                csr.regular_degree(),
                "{label} regular degree"
            );
            assert_eq!(
                g.is_bipartite(),
                algorithms::is_bipartite(&csr),
                "{label} bipartiteness (n = {})",
                g.num_vertices()
            );
            for u in 0..g.num_vertices() {
                assert_eq!(
                    Topology::degree(&g, u),
                    csr.degree(u),
                    "{label} degree of {u}"
                );
                let want = csr.neighbors(u);
                for (i, &v) in want.iter().enumerate() {
                    assert_eq!(
                        g.nth_neighbor(u, i),
                        v as usize,
                        "{label} neighbor {i} of {u}"
                    );
                }
                let mut got = Vec::new();
                g.for_each_neighbor(u, |v| got.push(v as u32));
                assert_eq!(got, want, "{label} for_each_neighbor of {u}");
            }
        }
    }

    #[test]
    fn random_neighbor_is_stream_identical_to_csr() {
        for g in all_families() {
            let csr = g.materialize().unwrap();
            let label = g.family_name();
            for u in 0..g.num_vertices().min(200) {
                let mut a = StdRng::seed_from_u64(u as u64);
                let mut b = a.clone();
                for _ in 0..60 {
                    assert_eq!(
                        Topology::random_neighbor(&g, u, &mut a),
                        csr.random_neighbor(u, &mut b),
                        "{label} draw at {u}"
                    );
                }
                assert_eq!(a.next_u64(), b.next_u64(), "{label} stream at {u}");
            }
        }
    }

    #[test]
    fn stationary_sampling_is_draw_identical_to_csr() {
        for g in all_families() {
            if g.num_edges() == 0 {
                continue;
            }
            let csr = g.materialize().unwrap();
            let label = g.family_name();
            let mut a = StdRng::seed_from_u64(99);
            let mut b = a.clone();
            for _ in 0..300 {
                assert_eq!(
                    Topology::sample_stationary(&g, &mut a),
                    csr.sample_stationary(&mut b),
                    "{label} stationary sample"
                );
            }
            let mut bulk = Vec::new();
            Topology::sample_stationary_into(&g, 150, &mut StdRng::seed_from_u64(7), &mut bulk);
            let mut bulk_csr = Vec::new();
            Topology::sample_stationary_into(
                &csr,
                150,
                &mut StdRng::seed_from_u64(7),
                &mut bulk_csr,
            );
            assert_eq!(bulk, bulk_csr, "{label} bulk stationary");
        }
    }

    #[test]
    fn random_neighbor_with_matches_plain_draws_for_multi_degree() {
        // For degree >= 2 the lazy-RNG variant must agree with the plain one
        // given the same generator; for degree 1 it must resolve without one.
        let g = ImplicitGraph::cycle_of_stars_of_cliques(4).unwrap();
        for u in 0..g.num_vertices() {
            let mut rng = StdRng::seed_from_u64(u as u64);
            let direct = Topology::random_neighbor(&g, u, &mut rng).unwrap();
            let rng = StdRng::seed_from_u64(u as u64);
            let lazy = Topology::random_neighbor_with(&g, u, || rng.clone()).unwrap();
            if Topology::degree(&g, u) > 1 {
                assert_eq!(direct, lazy);
            }
        }
        let star = ImplicitGraph::star(5).unwrap();
        let v: Option<usize> =
            Topology::random_neighbor_with(&star, 3, || -> StdRng { unreachable!("deg 1") });
        assert_eq!(v, Some(0));
    }

    #[test]
    fn memory_is_constant_and_tiny() {
        let big = ImplicitGraph::cycle_of_stars_of_cliques(464).unwrap();
        let small = ImplicitGraph::cycle_of_stars_of_cliques(3).unwrap();
        assert_eq!(Topology::memory_bytes(&big), Topology::memory_bytes(&small));
        assert!(Topology::memory_bytes(&big) <= 64);
        assert!(big.num_vertices() > 100_000_000);
        // The CSR equivalent would not even satisfy u32 adjacency indexing:
        // 2m far exceeds u32::MAX.
        assert!(2 * big.num_edges() > u32::MAX as usize);
    }

    #[test]
    fn constructors_reject_invalid_parameters() {
        assert!(ImplicitGraph::path(0).is_err());
        assert!(ImplicitGraph::cycle(2).is_err());
        assert!(ImplicitGraph::complete(1).is_err());
        assert!(ImplicitGraph::star(0).is_err());
        assert!(ImplicitGraph::double_star(0).is_err());
        assert!(ImplicitGraph::heavy_tree(0).is_err());
        assert!(ImplicitGraph::heavy_tree(29).is_err());
        assert!(ImplicitGraph::siamese(0).is_err());
        assert!(ImplicitGraph::siamese(28).is_err());
        assert!(ImplicitGraph::cycle_of_stars_of_cliques(2).is_err());
        assert!(ImplicitGraph::cycle_of_stars_of_cliques(1001).is_err());
        assert!(ImplicitGraph::cycle_of_cliques(2, 4).is_err());
        assert!(ImplicitGraph::cycle_of_cliques(5, 1).is_err());
        assert!(ImplicitGraph::hypercube(0).is_err());
        assert!(ImplicitGraph::hypercube(31).is_err());
    }

    #[test]
    fn constructors_reject_degrees_beyond_the_sampler_word() {
        // Degrees >= 2^29 - 1 would collide with the sampler word's tag
        // bits; the CSR build asserts, the implicit build must error.
        let over = crate::graph::MAX_SAMPLER_DEGREE + 1;
        assert!(ImplicitGraph::complete(over + 1).is_err());
        assert!(ImplicitGraph::star(over).is_err());
        assert!(ImplicitGraph::double_star(over).is_err());
        assert!(ImplicitGraph::cycle_of_cliques(3, over).is_err());
        // The largest representable degrees are accepted.
        assert!(ImplicitGraph::star(crate::graph::MAX_SAMPLER_DEGREE).is_ok());
    }

    #[test]
    fn with_at_least_and_labels() {
        let g = ImplicitGraph::cycle_of_stars_with_at_least(500).unwrap();
        assert!(g.num_vertices() >= 500);
        assert_eq!(g.family_name(), "cycle-of-stars-of-cliques");
        assert!(g.parameter() >= 3);
        let smaller = ImplicitGraph::cycle_of_stars_of_cliques(g.parameter() - 1).unwrap();
        assert!(smaller.num_vertices() < 500);
    }

    #[test]
    fn isolated_vertices_sample_none() {
        let g = ImplicitGraph::path(1).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Topology::random_neighbor(&g, 0, &mut rng), None);
        assert_eq!(Topology::degree(&g, 0), 0);
    }
}
