//! Property tests (vendored proptest) for the generated backend's edge-hash
//! layer: membership symmetry, simplicity, seed sensitivity, and Chung–Lu
//! expected-degree concentration.
//!
//! These are the invariants the Philox-keyed stub pairing must provide for
//! the backend to be a simple undirected graph at all — tested over random
//! parameter draws rather than a fixed grid (the fixed-grid differential
//! suite lives in `generated_equivalence.rs`). Statistical assertions
//! average over vertices and seeds with documented tolerances; the vendored
//! proptest harness is deterministic (cases are seeded from the test name),
//! so there is no flake budget.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rumor_graphs::{GeneratedGraph, HubCachedGraph, Topology};

proptest! {
    /// Edge membership is symmetric: the pairing is an involution on stubs,
    /// so `contains(u, v) == contains(v, u)` for every pair and seed.
    #[test]
    fn membership_is_symmetric(
        n in 2usize..160,
        p_mil in 0usize..400,
        seed in 0u64..1000,
        pick in 0usize..10_000,
    ) {
        let g = GeneratedGraph::gnp(n, p_mil as f64 / 1000.0, seed).unwrap();
        let u = pick % n;
        let v = (pick / n) % n;
        prop_assert_eq!(g.contains_edge(u, v), g.contains_edge(v, u));
    }

    /// No self-loops survive erasure: a vertex never lists itself, and
    /// `contains(u, u)` is always false.
    #[test]
    fn no_self_loops(n in 2usize..120, seed in 0u64..500) {
        let g = GeneratedGraph::gnp(n, 0.2, seed).unwrap();
        for u in 0..n {
            prop_assert!(!g.contains_edge(u, u));
            let mut saw_self = false;
            g.for_each_neighbor(u, |v| saw_self |= v == u);
            prop_assert!(!saw_self, "vertex {} listed itself", u);
        }
    }

    /// Stored degrees always equal the derived neighbor-list lengths, and
    /// sum to twice the edge count (the handshake identity — parallel stubs
    /// merged consistently on both endpoints).
    #[test]
    fn degrees_are_consistent(
        n in 2usize..140,
        seed in 0u64..300,
        chung_lu in 0usize..2,
    ) {
        let g = if chung_lu == 1 {
            GeneratedGraph::chung_lu(n, 2.5, 4.0_f64.min((n - 1) as f64), seed).unwrap()
        } else {
            GeneratedGraph::gnp(n, 0.1, seed).unwrap()
        };
        let mut total = 0usize;
        for u in 0..n {
            let mut count = 0usize;
            g.for_each_neighbor(u, |_| count += 1);
            prop_assert_eq!(count, g.degree(u), "degree mismatch at {}", u);
            total += count;
        }
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    /// Seed sensitivity: distinct seeds give distinct edge sets (at these
    /// densities the expected edge overlap is far from total; a collision
    /// would imply the derivation ignores the seed).
    #[test]
    fn distinct_seeds_decorrelate(n in 30usize..120, seed in 0u64..500) {
        let a = GeneratedGraph::gnp(n, 0.15, seed).unwrap();
        let b = GeneratedGraph::gnp(n, 0.15, seed + 1).unwrap();
        let differs = (0..n).any(|u| {
            let mut na = Vec::new();
            let mut nb = Vec::new();
            a.for_each_neighbor(u, |v| na.push(v));
            b.for_each_neighbor(u, |v| nb.push(v));
            na != nb
        });
        prop_assert!(differs, "seeds {} and {} coincide", seed, seed + 1);
    }

    /// Hub-cache degeneracy: `k = 0` (pure hashed path) and `k = n` (every
    /// list materialized) answer every query — lists and draw streams —
    /// bit-identically to each other and to the uncached backend. The
    /// cache can only ever relocate where an answer is read from, never
    /// change it.
    #[test]
    fn hub_cache_extremes_degenerate_bit_identically(
        n in 2usize..120,
        seed in 0u64..200,
        draw_seed in 0u64..1000,
    ) {
        let inner =
            GeneratedGraph::chung_lu(n, 2.5, 4.0_f64.min((n - 1) as f64), seed).unwrap();
        let none = HubCachedGraph::with_hub_count(inner.clone(), 0);
        let all = HubCachedGraph::with_hub_count(inner.clone(), n);
        prop_assert_eq!(none.hub_count(), 0);
        prop_assert_eq!(all.hub_count(), n);
        for u in 0..n {
            let mut a = Vec::new();
            none.for_each_neighbor(u, |v| a.push(v));
            let mut b = Vec::new();
            all.for_each_neighbor(u, |v| b.push(v));
            let mut c = Vec::new();
            inner.for_each_neighbor(u, |v| c.push(v));
            prop_assert_eq!(&a, &b, "k=0 vs k=n list at {}", u);
            prop_assert_eq!(&b, &c, "cached vs inner list at {}", u);
            let mut r0 = StdRng::seed_from_u64(draw_seed ^ u as u64);
            let mut r1 = r0.clone();
            let mut r2 = r0.clone();
            for _ in 0..8 {
                let x = none.random_neighbor(u, &mut r0);
                prop_assert_eq!(x, all.random_neighbor(u, &mut r1));
                prop_assert_eq!(x, inner.random_neighbor(u, &mut r2));
            }
            let (s0, s1, s2) = (r0.next_u64(), r1.next_u64(), r2.next_u64());
            prop_assert_eq!(s0, s1, "k=0 vs k=n stream position at {}", u);
            prop_assert_eq!(s1, s2, "cached vs inner stream position at {}", u);
        }
    }

    /// The sampled graph is invariant under the ambient thread count: the
    /// parallel degree pass writes a pure function of (params, seed).
    #[test]
    fn construction_ignores_parallelism(n in 10usize..200, seed in 0u64..100) {
        let a = GeneratedGraph::chung_lu(n, 2.7, 3.0, seed).unwrap();
        let b = GeneratedGraph::chung_lu(n, 2.7, 3.0, seed).unwrap();
        for u in 0..n {
            prop_assert_eq!(a.degree(u), b.degree(u));
        }
        prop_assert_eq!(a.num_edges(), b.num_edges());
    }
}

/// G(n, p) mean-degree concentration: averaged over seeds, the realized
/// mean degree must sit within a few percent of `p (n − 1)` (erasure
/// removes only the `O(1)`-expected self-loop/parallel stubs at this
/// density; tolerance 5% relative + 0.2 absolute covers the binomial noise
/// of 10 seeds × 400 vertices).
#[test]
fn gnp_mean_degree_concentrates() {
    let n = 400usize;
    let p = 0.02f64;
    let seeds = 10u64;
    let mut total = 0usize;
    for seed in 0..seeds {
        total += 2 * GeneratedGraph::gnp(n, p, seed).unwrap().num_edges();
    }
    let mean = total as f64 / (seeds as usize * n) as f64;
    let want = p * (n - 1) as f64;
    assert!(
        (mean - want).abs() < 0.05 * want + 0.2,
        "mean degree {mean:.3} vs expected {want:.3}"
    );
}

/// Chung–Lu expected-degree concentration: per-vertex realized degrees,
/// averaged over seeds, track the model's expected degrees. Tolerances are
/// asymmetric because the erased configuration model only *attenuates*:
/// a hub of weight `w` loses `Θ(w²/S)` degree to merged parallel stubs and
/// self-loops (here `w = cap = √(d̄·n) ≈ 60` against `S ≈ 3600` stubs, so
/// up to ~20% at the very top), and can exceed its weight only by binomial
/// noise. The global mean (dominated by uncapped low-collision vertices)
/// must land within 10% of the configured target.
#[test]
fn chung_lu_expected_degrees_concentrate() {
    let n = 600usize;
    let mean_degree = 6.0f64;
    let exponent = 2.5f64;
    let seeds = 12u64;
    let mut per_vertex = vec![0u64; n];
    for seed in 0..seeds {
        let g = GeneratedGraph::chung_lu(n, exponent, mean_degree, seed).unwrap();
        for (u, slot) in per_vertex.iter_mut().enumerate() {
            *slot += g.degree(u) as u64;
        }
    }
    let probe = GeneratedGraph::chung_lu(n, exponent, mean_degree, 0).unwrap();
    // Hubs: the first few vertices carry the largest weights.
    for (u, &sum) in per_vertex.iter().enumerate().take(5) {
        let realized = sum as f64 / seeds as f64;
        let expected = probe.expected_degree(u);
        assert!(
            realized > 0.72 * expected - 1.0 && realized < 1.05 * expected + 1.0,
            "hub {u}: realized {realized:.2} vs expected {expected:.2}"
        );
    }
    // Mid-range vertices are essentially collision-free: tight band.
    for u in [n / 4, n / 2] {
        let realized = per_vertex[u] as f64 / seeds as f64;
        let expected = probe.expected_degree(u);
        assert!(
            (realized - expected).abs() < 0.15 * expected + 1.0,
            "vertex {u}: realized {realized:.2} vs expected {expected:.2}"
        );
    }
    // Global mean.
    let realized_mean = per_vertex.iter().sum::<u64>() as f64 / (seeds as usize * n) as f64;
    assert!(
        (realized_mean - mean_degree).abs() < 0.10 * mean_degree,
        "mean degree {realized_mean:.3} vs target {mean_degree}"
    );
    // Monotone profile: expected degrees decrease with the vertex index.
    assert!(probe.expected_degree(0) > probe.expected_degree(n / 2));
    assert!(probe.expected_degree(n / 2) > probe.expected_degree(n - 1));
}

/// A steeper exponent concentrates the degree mass away from the hubs. The
/// very top vertices can both sit at the √(d̄·n) weight cap, so compare a
/// vertex just outside the capped prefix: at rank 10 the β = 2.2 profile
/// must still dwarf the β = 3.5 one for the same target mean.
#[test]
fn exponent_steers_hub_mass() {
    let flat = GeneratedGraph::chung_lu(2000, 2.2, 6.0, 1).unwrap();
    let steep = GeneratedGraph::chung_lu(2000, 3.5, 6.0, 1).unwrap();
    assert!(flat.expected_degree(10) > 2.0 * steep.expected_degree(10));
    assert!(flat.expected_degree(0) >= steep.expected_degree(0));
}
