//! Differential backend equivalence: every structural and sampling query on
//! a [`GeneratedGraph`] must agree — bit for bit — with the same query on
//! its materialized CSR build.
//!
//! The contract under test (see `rumor_graphs::generated`): the generated
//! backend's stored degrees are the simple-graph degrees of the derived
//! edge set, neighbor resolution returns the identical *i*-th **sorted**
//! neighbor the CSR stores, index draws go through the shared
//! degree-specialized sampler (stream consumption depends only on the
//! degree), and stationary slot→vertex mapping uses the identical prefix
//! table. This suite materializes a grid of small instances — multiple `n`,
//! densities, power-law exponents, and seeds — and pins each query class.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rumor_graphs::{algorithms, GeneratedGraph, Graph, HubCachedGraph, Topology};

/// The differential grid: both families across sizes, densities/exponents,
/// and seeds — small enough to materialize, varied enough to cover isolated
/// vertices, hubs, odd stub totals, and near-regular corners.
fn instances() -> Vec<GeneratedGraph> {
    let mut out = Vec::new();
    for &(n, p) in &[
        (2usize, 1.0f64),
        (17, 0.3),
        (60, 0.08),
        (121, 0.05),
        (250, 0.015),
    ] {
        for seed in [0u64, 1, 42] {
            out.push(GeneratedGraph::gnp(n, p, seed).unwrap());
        }
    }
    for &(n, beta, mean) in &[
        (40usize, 2.2f64, 5.0f64),
        (90, 2.5, 6.0),
        (150, 2.8, 4.0),
        (220, 3.5, 8.0),
    ] {
        for seed in [0u64, 7] {
            out.push(GeneratedGraph::chung_lu(n, beta, mean, seed).unwrap());
        }
    }
    out
}

fn label(g: &GeneratedGraph) -> String {
    format!(
        "{} n={} seed={}",
        g.family_name(),
        g.num_vertices(),
        g.seed()
    )
}

#[test]
fn counts_degrees_and_sorted_neighbor_lists_match_materialized() {
    for g in instances() {
        let csr = g.materialize().unwrap();
        let label = label(&g);
        csr.validate().unwrap();
        assert_eq!(g.num_vertices(), csr.num_vertices(), "{label} n");
        assert_eq!(g.num_edges(), csr.num_edges(), "{label} m");
        assert_eq!(g.total_degree(), csr.total_degree(), "{label} 2m");
        for u in 0..g.num_vertices() {
            assert_eq!(g.degree(u), csr.degree(u), "{label} degree of {u}");
            let want = csr.neighbors(u);
            let mut got = Vec::new();
            g.for_each_neighbor(u, |v| got.push(v as u32));
            assert_eq!(got, want, "{label} sorted neighbor list of {u}");
            for (i, &v) in want.iter().enumerate() {
                assert_eq!(g.nth_neighbor(u, i), v as usize, "{label} nth({u}, {i})");
            }
        }
    }
}

#[test]
fn neighbor_draw_streams_are_bit_identical_to_csr() {
    for g in instances() {
        let csr = g.materialize().unwrap();
        let label = label(&g);
        for u in 0..g.num_vertices() {
            let mut a = StdRng::seed_from_u64(u as u64 ^ g.seed());
            let mut b = a.clone();
            for draw in 0..40 {
                assert_eq!(
                    g.random_neighbor(u, &mut a),
                    csr.random_neighbor(u, &mut b),
                    "{label} draw {draw} at {u}"
                );
            }
            // Same stream position afterwards: consumption depends only on
            // the degree, never on the backend.
            assert_eq!(a.next_u64(), b.next_u64(), "{label} stream at {u}");
            if g.degree(u) > 0 {
                let mut a = StdRng::seed_from_u64(u as u64);
                let mut b = a.clone();
                assert_eq!(
                    g.random_neighbor_nonisolated(u, &mut a),
                    csr.random_neighbor_nonisolated(u, &mut b),
                    "{label} nonisolated draw at {u}"
                );
            }
        }
    }
}

#[test]
fn stationary_slots_are_draw_identical_to_csr() {
    for g in instances() {
        if g.num_edges() == 0 {
            continue;
        }
        let csr = g.materialize().unwrap();
        let label = label(&g);
        let mut a = StdRng::seed_from_u64(1234);
        let mut b = a.clone();
        for draw in 0..400 {
            assert_eq!(
                g.sample_stationary(&mut a),
                csr.sample_stationary(&mut b),
                "{label} stationary draw {draw}"
            );
        }
        assert_eq!(a.next_u64(), b.next_u64(), "{label} stationary stream");
        // The bulk path (agent placement) replays the same draws too.
        let mut bulk = Vec::new();
        g.sample_stationary_into(200, &mut StdRng::seed_from_u64(9), &mut bulk);
        let mut bulk_csr = Vec::new();
        csr.sample_stationary_into(200, &mut StdRng::seed_from_u64(9), &mut bulk_csr);
        assert_eq!(bulk, bulk_csr, "{label} bulk stationary");
    }
}

#[test]
fn structure_predicates_match_materialized() {
    for g in instances() {
        let csr = g.materialize().unwrap();
        let label = label(&g);
        assert_eq!(
            g.is_bipartite(),
            algorithms::is_bipartite(&csr),
            "{label} bipartiteness"
        );
        assert_eq!(
            Topology::regular_degree(&g),
            csr.regular_degree(),
            "{label} regular degree"
        );
        assert_eq!(g.max_degree(), csr.max_degree(), "{label} max degree");
        for u in 0..g.num_vertices() {
            for v in 0..g.num_vertices() {
                assert_eq!(
                    g.contains_edge(u, v),
                    csr.has_edge(u, v),
                    "{label} membership ({u}, {v})"
                );
            }
        }
    }
}

#[test]
fn lazy_rng_neighbor_matches_plain_draws() {
    let g = GeneratedGraph::chung_lu(120, 2.5, 6.0, 2).unwrap();
    for u in 0..g.num_vertices() {
        match g.degree(u) {
            0 => {
                let v: Option<usize> =
                    g.random_neighbor_with(u, || -> StdRng { unreachable!("deg 0") });
                assert_eq!(v, None);
            }
            1 => {
                let v: Option<usize> =
                    g.random_neighbor_with(u, || -> StdRng { unreachable!("deg 1") });
                assert_eq!(v, Some(g.nth_neighbor(u, 0)));
            }
            _ => {
                let mut rng = StdRng::seed_from_u64(u as u64);
                let direct = g.random_neighbor(u, &mut rng).unwrap();
                let rng = StdRng::seed_from_u64(u as u64);
                let lazy = g.random_neighbor_with(u, || rng.clone()).unwrap();
                assert_eq!(direct, lazy, "lazy draw diverged at {u}");
            }
        }
    }
}

#[test]
fn memory_sits_well_below_the_materialized_footprint() {
    // At mean degree ~18 the generated tables (8 bytes/vertex) must be an
    // order of magnitude below the real CSR build, and the reported
    // CSR-equivalent formula must be a conservative floor of the real one.
    let g = GeneratedGraph::gnp_with_mean_degree(30_000, 18.0, 4).unwrap();
    let csr = g.materialize().unwrap();
    assert!(
        csr.memory_bytes() >= g.csr_equivalent_bytes(),
        "csr_equivalent_bytes must be a floor: {} vs {}",
        csr.memory_bytes(),
        g.csr_equivalent_bytes()
    );
    let ratio = csr.memory_bytes() as f64 / Topology::memory_bytes(&g) as f64;
    assert!(ratio >= 10.0, "memory ratio {ratio:.1}x below 10x");
}

#[test]
fn different_seeds_generate_different_edge_sets() {
    let a = GeneratedGraph::gnp(100, 0.1, 1).unwrap();
    let b = GeneratedGraph::gnp(100, 0.1, 2).unwrap();
    let edges = |g: &GeneratedGraph| {
        let mut set = std::collections::BTreeSet::new();
        for u in 0..g.num_vertices() {
            g.for_each_neighbor(u, |v| {
                if u < v {
                    set.insert((u, v));
                }
            });
        }
        set
    };
    assert_ne!(edges(&a), edges(&b), "seed must steer the edge set");
}

/// Cache sizes exercised per instance: empty, a single hub, the default
/// policy, a mid-size cache, and every vertex. Clamped to `n` by the
/// builder, so the large values degenerate to full materialization on the
/// small grid entries.
fn hub_counts(n: usize) -> [usize; 5] {
    [0, 1, n.div_ceil(64), 13, n]
}

#[test]
fn hub_cached_counts_degrees_and_sorted_lists_match_inner_and_csr() {
    for g in instances() {
        let csr = g.materialize().unwrap();
        let base = label(&g);
        let n = g.num_vertices();
        for k in hub_counts(n) {
            let h = HubCachedGraph::with_hub_count(g.clone(), k);
            let label = format!("{base} k={k}");
            assert_eq!(h.num_vertices(), n, "{label} n");
            assert_eq!(h.num_edges(), g.num_edges(), "{label} m");
            for u in 0..n {
                assert_eq!(
                    Topology::degree(&h, u),
                    g.degree(u),
                    "{label} degree of {u}"
                );
                let want = csr.neighbors(u);
                let mut got = Vec::new();
                h.for_each_neighbor(u, |v| got.push(v as u32));
                assert_eq!(got, want, "{label} sorted neighbor list of {u}");
                for (i, &v) in want.iter().enumerate() {
                    assert_eq!(h.nth_neighbor(u, i), v as usize, "{label} nth({u}, {i})");
                }
            }
        }
    }
}

#[test]
fn hub_cached_draw_streams_are_bit_identical_to_inner_and_csr() {
    for g in instances() {
        let csr = g.materialize().unwrap();
        let base = label(&g);
        let n = g.num_vertices();
        for k in hub_counts(n) {
            let h = HubCachedGraph::with_hub_count(g.clone(), k);
            let label = format!("{base} k={k}");
            for u in 0..n {
                let mut a = StdRng::seed_from_u64(u as u64 ^ g.seed());
                let mut b = a.clone();
                let mut c = a.clone();
                for draw in 0..24 {
                    let x = Topology::random_neighbor(&h, u, &mut a);
                    assert_eq!(
                        x,
                        g.random_neighbor(u, &mut b),
                        "{label} draw {draw} at {u} vs inner"
                    );
                    assert_eq!(
                        x,
                        csr.random_neighbor(u, &mut c),
                        "{label} draw {draw} at {u} vs csr"
                    );
                }
                let (sa, sb, sc) = (a.next_u64(), b.next_u64(), c.next_u64());
                assert_eq!(sa, sb, "{label} stream at {u} vs inner");
                assert_eq!(sa, sc, "{label} stream at {u} vs csr");
                if g.degree(u) > 0 {
                    let mut a = StdRng::seed_from_u64(u as u64);
                    let mut b = a.clone();
                    assert_eq!(
                        Topology::random_neighbor_nonisolated(&h, u, &mut a),
                        g.random_neighbor_nonisolated(u, &mut b),
                        "{label} nonisolated draw at {u}"
                    );
                }
            }
        }
    }
}

#[test]
fn hub_cached_membership_and_predicates_match_inner_and_csr() {
    for g in instances() {
        let csr = g.materialize().unwrap();
        let base = label(&g);
        let n = g.num_vertices();
        for k in hub_counts(n) {
            let h = HubCachedGraph::with_hub_count(g.clone(), k);
            let label = format!("{base} k={k}");
            assert_eq!(
                Topology::is_bipartite(&h),
                g.is_bipartite(),
                "{label} bipartiteness"
            );
            assert_eq!(
                Topology::regular_degree(&h),
                Topology::regular_degree(&g),
                "{label} regular degree"
            );
            for u in 0..n {
                for v in 0..n {
                    assert_eq!(
                        h.contains_edge(u, v),
                        csr.has_edge(u, v),
                        "{label} membership ({u}, {v})"
                    );
                }
            }
        }
    }
}

#[test]
fn hub_cached_stationary_draws_are_bit_identical_to_inner() {
    for g in instances() {
        if g.num_edges() == 0 {
            continue;
        }
        let base = label(&g);
        let h = HubCachedGraph::over(g.clone());
        let mut a = StdRng::seed_from_u64(1234);
        let mut b = a.clone();
        for draw in 0..200 {
            assert_eq!(
                Topology::sample_stationary(&h, &mut a),
                g.sample_stationary(&mut b),
                "{base} stationary draw {draw}"
            );
        }
        assert_eq!(a.next_u64(), b.next_u64(), "{base} stationary stream");
        let mut bulk = Vec::new();
        Topology::sample_stationary_into(&h, 150, &mut StdRng::seed_from_u64(9), &mut bulk);
        let mut bulk_inner = Vec::new();
        g.sample_stationary_into(150, &mut StdRng::seed_from_u64(9), &mut bulk_inner);
        assert_eq!(bulk, bulk_inner, "{base} bulk stationary");
    }
}

#[test]
fn hub_cached_lazy_rng_neighbor_matches_plain_draws() {
    let g = GeneratedGraph::chung_lu(120, 2.5, 6.0, 2).unwrap();
    let h = HubCachedGraph::over(g.clone());
    for u in 0..g.num_vertices() {
        match g.degree(u) {
            0 => {
                let v: Option<usize> =
                    Topology::random_neighbor_with(&h, u, || -> StdRng { unreachable!("deg 0") });
                assert_eq!(v, None);
            }
            1 => {
                let v: Option<usize> =
                    Topology::random_neighbor_with(&h, u, || -> StdRng { unreachable!("deg 1") });
                assert_eq!(v, Some(g.nth_neighbor(u, 0)));
            }
            _ => {
                let mut rng = StdRng::seed_from_u64(u as u64);
                let direct = Topology::random_neighbor(&h, u, &mut rng).unwrap();
                let rng = StdRng::seed_from_u64(u as u64);
                let lazy = Topology::random_neighbor_with(&h, u, || rng.clone()).unwrap();
                assert_eq!(direct, lazy, "lazy draw diverged at {u}");
            }
        }
    }
}

#[test]
fn materialize_round_trips_through_from_edges() {
    // The materialized CSR and a from_edges rebuild of the enumerated edge
    // set are the same graph — i.e. enumeration is self-consistent.
    let g = GeneratedGraph::chung_lu(80, 2.5, 5.0, 13).unwrap();
    let csr = g.materialize().unwrap();
    let mut edges = Vec::new();
    for u in 0..g.num_vertices() {
        g.for_each_neighbor(u, |v| {
            if u < v {
                edges.push((u, v));
            }
        });
    }
    let rebuilt = Graph::from_edges(g.num_vertices(), &edges).unwrap();
    for u in 0..g.num_vertices() {
        assert_eq!(csr.neighbors(u), rebuilt.neighbors(u));
    }
}
