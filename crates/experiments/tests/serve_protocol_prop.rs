//! Property tests for the serve wire protocol: `parse(build(x)) == x` for
//! every line type both ends can emit — requests (submit, resume, session
//! verbs) and responses (accepted/resumed/trial/done/status/typed errors),
//! including the `(job, seq)` session framing and string escaping.
//!
//! The vendored proptest harness has no string strategy, so strings are
//! built from index vectors over a palette that deliberately includes JSON
//! metacharacters, escapes, control characters, and multi-byte UTF-8.

use proptest::prelude::*;
use rumor_core::BroadcastOutcome;
use rumor_experiments::serve::protocol::{
    accepted_line, chunk_payload_bytes, crc32, decode_hex, done_line, draining_line, encode_hex,
    error_line, escape_json, heartbeat_line, overloaded_line, parse_json, parse_request,
    protocol_error_line, resume_request_line, resumed_line, status_line, trial_line,
    unknown_job_line, unknown_topology_line, upload_ack_line, upload_begin_line, upload_chunk_line,
    upload_commit_line, upload_done_line, upload_error_line, upload_status_line,
    upload_status_request_line, with_session, Json, Request, ServerStatus, SubmitRequest,
    TopologySpec, UploadManifest,
};
use rumor_experiments::TrialOutcome;

/// Characters the string generator draws from: ordinary text plus every
/// class the escaper must handle (quotes, backslashes, braces, control
/// characters, multi-byte scalars).
const PALETTE: &[char] = &[
    'a', 'Z', '9', ' ', '_', '-', '.', '"', '\\', '/', '\n', '\t', '\r', '\u{8}', '\u{c}', '\u{1}',
    '{', '}', '[', ']', ':', ',', 'é', 'λ', '🦀',
];

fn palette_string(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| PALETTE[i % PALETTE.len()])
        .collect()
}

/// Digest-field round-trip helper: every job-tagged line renders the digest
/// as fixed-width hex.
fn job_field(value: &Json) -> u64 {
    let hex = value.get("job").and_then(Json::as_str).expect("job field");
    assert_eq!(hex.len(), 16, "job ids are fixed-width hex");
    u64::from_str_radix(hex, 16).expect("hex job id")
}

proptest! {
    #[test]
    fn escaped_strings_round_trip(indices in collection::vec(0usize..64, 0..40)) {
        let original = palette_string(&indices);
        let line = format!("{{\"m\":\"{}\"}}", escape_json(&original));
        let parsed = parse_json(&line).map_err(|e| e.to_string())?;
        prop_assert_eq!(
            parsed.get("m").and_then(Json::as_str),
            Some(original.as_str())
        );
    }

    #[test]
    fn submit_requests_round_trip(
        client_ix in collection::vec(0usize..64, 0..16),
        family_ix in collection::vec(0usize..64, 1..8),
        n in 1usize..1_000_000,
        degree in 0.01f64..512.0,
        exponent in 1.1f64..4.0,
        topo_seed in 0u64..u64::MAX,
        lazy_bit in 0u8..2,
        trials in 1usize..10_000,
        seed in 0u64..u64::MAX,
        max_rounds in 1u64..u64::MAX,
        deadline in 0u64..2_000_000,
    ) {
        let topology = TopologySpec::new(&palette_string(&family_ix), n)
            .with_degree(degree)
            .with_exponent(exponent)
            .with_topology_seed(topo_seed);
        let mut request =
            SubmitRequest::new(&palette_string(&client_ix), topology, "push", trials);
        request.lazy = lazy_bit == 1;
        request.seed = seed;
        request.max_rounds = max_rounds;
        // Exercise both the present and absent deadline encodings.
        request.deadline_ms = if deadline % 2 == 0 { Some(deadline) } else { None };
        match parse_request(&request.to_line()).map_err(|e| e.to_string())? {
            Request::Submit(parsed) => {
                // Digest equality is the property the whole resume design
                // rests on; field equality implies it but assert both.
                prop_assert_eq!(parsed.digest(), request.digest());
                prop_assert_eq!(parsed, request);
            }
            other => prop_assert!(false, "expected submit, parsed {other:?}"),
        }
    }

    #[test]
    fn resume_requests_round_trip(job in 0u64..u64::MAX, last_seq in 0u64..u64::MAX) {
        let parsed = parse_request(&resume_request_line(job, last_seq))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(parsed, Request::Resume { job, last_seq });
    }

    #[test]
    fn accepted_and_resumed_lines_round_trip(
        digest in 0u64..u64::MAX,
        trials in 1usize..100_000,
        last_seq in 0u64..100_000,
        flags in 0u8..4,
    ) {
        let (cached, duplicate) = (flags & 1 != 0, flags & 2 != 0);
        let accepted = parse_json(&accepted_line(digest, trials, cached, duplicate))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(accepted.get("type").and_then(Json::as_str), Some("accepted"));
        prop_assert_eq!(job_field(&accepted), digest);
        prop_assert_eq!(accepted.get("seq").and_then(Json::as_u64), Some(0));
        prop_assert_eq!(
            accepted.get("trials").and_then(Json::as_u64),
            Some(trials as u64)
        );
        prop_assert_eq!(accepted.get("cached").and_then(Json::as_bool), Some(cached));
        prop_assert_eq!(
            accepted.get("duplicate").and_then(Json::as_bool),
            Some(duplicate)
        );

        let resumed = parse_json(&resumed_line(digest, trials, last_seq))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(resumed.get("type").and_then(Json::as_str), Some("resumed"));
        prop_assert_eq!(job_field(&resumed), digest);
        prop_assert_eq!(resumed.get("seq").and_then(Json::as_u64), Some(last_seq));

        let unknown = parse_json(&unknown_job_line(digest)).map_err(|e| e.to_string())?;
        prop_assert_eq!(unknown.get("type").and_then(Json::as_str), Some("unknown_job"));
        prop_assert_eq!(job_field(&unknown), digest);
    }

    #[test]
    fn trial_lines_round_trip_with_session_framing(
        index in 0usize..100_000,
        rounds in 0u64..u64::MAX,
        iv in 0usize..1_000_000_000,
        ia in 0usize..1_000_000_000,
        msgs in 0u64..u64::MAX,
        kind in 0u8..5,
        message_ix in collection::vec(0usize..64, 0..24),
        attempts in 1u32..16,
        job in 0u64..u64::MAX,
        seq in 1u64..u64::MAX,
    ) {
        let outcome = match kind {
            0 => TrialOutcome::Completed(BroadcastOutcome {
                protocol: "push".to_string(),
                rounds,
                completed: true,
                informed_vertices: iv,
                informed_agents: ia,
                total_messages: msgs,
                history: Vec::new(),
                edge_traffic: None,
            }),
            1 => TrialOutcome::RoundCapped(BroadcastOutcome {
                protocol: "push".to_string(),
                rounds,
                completed: false,
                informed_vertices: iv,
                informed_agents: ia,
                total_messages: msgs,
                history: Vec::new(),
                edge_traffic: None,
            }),
            2 => TrialOutcome::TimedOut {
                round: rounds,
                informed_vertices: iv,
                informed_agents: ia,
                messages: msgs,
            },
            3 => TrialOutcome::Panicked {
                message: palette_string(&message_ix),
                attempts,
            },
            _ => TrialOutcome::NotRun,
        };
        let stored = trial_line(index, &outcome);
        let bare = parse_json(&stored).map_err(|e| e.to_string())?;
        prop_assert_eq!(bare.get("type").and_then(Json::as_str), Some("trial"));
        prop_assert_eq!(bare.get("index").and_then(Json::as_u64), Some(index as u64));
        prop_assert!(bare.get("job").is_none(), "stored lines stay unframed");

        // Framing is a pure splice: the framed line parses, carries the
        // session fields, and drops back to the stored bytes when they are
        // removed — the byte-identity invariant live/resumed/cached streams
        // rely on.
        let framed = with_session(&stored, job, seq);
        let tagged = parse_json(&framed).map_err(|e| e.to_string())?;
        prop_assert_eq!(job_field(&tagged), job);
        prop_assert_eq!(tagged.get("seq").and_then(Json::as_u64), Some(seq));
        prop_assert_eq!(
            tagged.get("index").and_then(Json::as_u64),
            Some(index as u64)
        );
        let frame = format!("\"job\":\"{job:016x}\",\"seq\":{seq},");
        prop_assert_eq!(framed.replacen(&frame, "", 1), stored);
        prop_assert_eq!(with_session(&stored, job, seq), framed);
    }

    #[test]
    fn done_lines_round_trip(
        digest in 0u64..u64::MAX,
        seq in 1u64..u64::MAX,
        completed in 0usize..100_000,
        round_capped in 0usize..100_000,
        timed_out in 0usize..100_000,
        panicked in 0usize..100_000,
        not_run in 0usize..100_000,
        reused in 0usize..100_000,
        cached_bit in 0u8..2,
    ) {
        let line = done_line(
            digest, seq, completed, round_capped, timed_out, panicked, not_run, reused,
            cached_bit == 1,
        );
        let parsed = parse_json(&line).map_err(|e| e.to_string())?;
        prop_assert_eq!(parsed.get("type").and_then(Json::as_str), Some("done"));
        prop_assert_eq!(job_field(&parsed), digest);
        prop_assert_eq!(parsed.get("seq").and_then(Json::as_u64), Some(seq));
        for (key, expected) in [
            ("completed", completed),
            ("round_capped", round_capped),
            ("timed_out", timed_out),
            ("panicked", panicked),
            ("not_run", not_run),
            ("reused", reused),
        ] {
            prop_assert_eq!(
                parsed.get(key).and_then(Json::as_u64),
                Some(expected as u64),
                "field {} must round-trip",
                key
            );
        }
        prop_assert_eq!(
            parsed.get("cached").and_then(Json::as_bool),
            Some(cached_bit == 1)
        );
    }

    #[test]
    fn status_lines_round_trip(
        queue_depth in 0usize..1_000_000,
        active_jobs in 0usize..1_000_000,
        executed in 0usize..1_000_000,
        shed in 0usize..1_000_000,
        cache_hits in 0usize..1_000_000,
        duplicate_hits in 0usize..1_000_000,
        open_sessions in 0u64..u64::MAX,
        sessions_opened in 0u64..u64::MAX,
        resumes in 0u64..u64::MAX,
        replayed_lines in 0u64..u64::MAX,
        heartbeats in 0u64..u64::MAX,
        protocol_errors in 0u64..u64::MAX,
        idle_reaped in 0u64..u64::MAX,
        graphs_stored in 0usize..1_000_000,
        store_bytes in 0u64..u64::MAX,
        evictions in 0u64..u64::MAX,
        partial_uploads in 0usize..1_000_000,
        failed_validations in 0u64..u64::MAX,
    ) {
        let status = ServerStatus {
            queue_depth,
            active_jobs,
            executed,
            shed,
            cache_hits,
            duplicate_hits,
            open_sessions,
            sessions_opened,
            resumes,
            replayed_lines,
            heartbeats,
            protocol_errors,
            idle_reaped,
            graphs_stored,
            store_bytes,
            evictions,
            partial_uploads,
            failed_validations,
        };
        let parsed = parse_json(&status_line(&status)).map_err(|e| e.to_string())?;
        prop_assert_eq!(parsed.get("type").and_then(Json::as_str), Some("status"));
        prop_assert_eq!(ServerStatus::from_json(&parsed), Some(status));
    }

    #[test]
    fn typed_rejection_lines_round_trip(
        job in 0u64..u64::MAX,
        retry_after_ms in 0u64..1_000_000,
        tagged_bits in 0u8..8,
        message_ix in collection::vec(0usize..64, 0..24),
    ) {
        let message = palette_string(&message_ix);
        let tag = |bit: u8| (tagged_bits & bit != 0).then_some(job);

        let over = parse_json(&overloaded_line(tag(1), retry_after_ms))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(over.get("type").and_then(Json::as_str), Some("overloaded"));
        prop_assert_eq!(
            over.get("retry_after_ms").and_then(Json::as_u64),
            Some(retry_after_ms)
        );
        if tagged_bits & 1 != 0 {
            prop_assert_eq!(job_field(&over), job);
        } else {
            prop_assert!(over.get("job").is_none());
        }

        let drain = parse_json(&draining_line(tag(2))).map_err(|e| e.to_string())?;
        prop_assert_eq!(drain.get("type").and_then(Json::as_str), Some("draining"));
        prop_assert_eq!(drain.get("job").is_some(), tagged_bits & 2 != 0);

        let error = parse_json(&error_line(tag(4), &message)).map_err(|e| e.to_string())?;
        prop_assert_eq!(error.get("type").and_then(Json::as_str), Some("error"));
        prop_assert_eq!(
            error.get("message").and_then(Json::as_str),
            Some(message.as_str())
        );
        prop_assert_eq!(error.get("job").is_some(), tagged_bits & 4 != 0);

        let violation = parse_json(&protocol_error_line(&message))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(
            violation.get("type").and_then(Json::as_str),
            Some("protocol_error")
        );
        prop_assert_eq!(
            violation.get("message").and_then(Json::as_str),
            Some(message.as_str())
        );
    }

    /// Upload request lines round-trip through `parse_request` for
    /// arbitrary binary payloads — the hex payload encoding must survive
    /// every byte value, and the CRC travels verbatim.
    #[test]
    fn upload_requests_round_trip(
        digest in 0u64..u64::MAX,
        n in 1u64..1_000_000,
        m in 0u64..1_000_000,
        chunk_bytes in 1u64..10_000,
        extra in 0u64..10_000,
        index in 0u64..1_000_000,
        payload_ix in collection::vec(0usize..256, 0..512),
    ) {
        let bytes = chunk_bytes + extra; // ≥ 1 chunk, arbitrary remainder
        let manifest = UploadManifest { digest, n, m, bytes, chunk_bytes };
        match parse_request(&upload_begin_line(&manifest)).map_err(|e| e.to_string())? {
            Request::UploadBegin(parsed) => {
                prop_assert_eq!(parsed, manifest);
                prop_assert_eq!(parsed.chunks(), manifest.chunks());
            }
            other => prop_assert!(false, "expected upload_begin, parsed {other:?}"),
        }

        let payload: Vec<u8> = payload_ix.iter().map(|&b| b as u8).collect();
        let crc = crc32(&payload);
        match parse_request(&upload_chunk_line(digest, index, &payload))
            .map_err(|e| e.to_string())?
        {
            Request::UploadChunk { digest: d, index: i, payload: p, crc: c } => {
                prop_assert_eq!(d, digest);
                prop_assert_eq!(i, index);
                prop_assert_eq!(p, payload);
                prop_assert_eq!(c, crc);
            }
            other => prop_assert!(false, "expected upload_chunk, parsed {other:?}"),
        }

        prop_assert_eq!(
            parse_request(&upload_commit_line(digest)).map_err(|e| e.to_string())?,
            Request::UploadCommit { digest }
        );
        prop_assert_eq!(
            parse_request(&upload_status_request_line(digest)).map_err(|e| e.to_string())?,
            Request::UploadStatus { digest }
        );
    }

    /// Chunk sizing edge cases: the final chunk's length is exactly the
    /// remainder, all others are full, and every chunk line fits the bound
    /// the manifest was derived for.
    #[test]
    fn upload_chunk_boundaries_are_exact(
        digest in 0u64..u64::MAX,
        chunk_bytes in 1u64..4_096,
        chunks_minus_one in 0u64..12,
        last_len in 1u64..4_096,
    ) {
        let last = last_len.min(chunk_bytes);
        let bytes = chunks_minus_one * chunk_bytes + last;
        let manifest = UploadManifest { digest, n: 1, m: 0, bytes, chunk_bytes };
        prop_assert_eq!(manifest.chunks(), chunks_minus_one + 1);
        for index in 0..manifest.chunks() {
            let expected = if index == manifest.chunks() - 1 { last } else { chunk_bytes };
            prop_assert_eq!(manifest.chunk_len(index), expected as usize);
        }
        // A full chunk of worst-case bytes (every one hex-expanded) still
        // fits any line bound the payload size was derived from.
        for bound in [1024usize, 64 * 1024] {
            let payload = vec![0xffu8; chunk_payload_bytes(bound)];
            prop_assert!(upload_chunk_line(digest, 0, &payload).len() <= bound);
        }
    }

    /// Upload response lines carry their fields verbatim (digest as
    /// fixed-width hex, counters as integers, messages escaped).
    #[test]
    fn upload_answers_round_trip(
        digest in 0u64..u64::MAX,
        acked in 0u64..u64::MAX,
        chunks in 0u64..u64::MAX,
        bytes in 0u64..u64::MAX,
        job in 0u64..u64::MAX,
        message_ix in collection::vec(0usize..64, 0..24),
        state_ix in 0usize..3,
    ) {
        let digest_field = |value: &Json| {
            let hex = value.get("digest").and_then(Json::as_str).expect("digest field").to_string();
            assert_eq!(hex.len(), 16, "digests are fixed-width hex");
            u64::from_str_radix(&hex, 16).expect("hex digest")
        };

        let ack = parse_json(&upload_ack_line(digest, acked)).map_err(|e| e.to_string())?;
        prop_assert_eq!(ack.get("type").and_then(Json::as_str), Some("upload_ack"));
        prop_assert_eq!(digest_field(&ack), digest);
        prop_assert_eq!(ack.get("acked").and_then(Json::as_u64), Some(acked));

        let done = parse_json(&upload_done_line(digest, bytes)).map_err(|e| e.to_string())?;
        prop_assert_eq!(done.get("type").and_then(Json::as_str), Some("upload_done"));
        prop_assert_eq!(digest_field(&done), digest);
        prop_assert_eq!(done.get("bytes").and_then(Json::as_u64), Some(bytes));

        let state = ["committed", "partial", "unknown"][state_ix];
        let status = parse_json(&upload_status_line(digest, state, acked, chunks))
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(status.get("type").and_then(Json::as_str), Some("upload_status"));
        prop_assert_eq!(digest_field(&status), digest);
        prop_assert_eq!(status.get("state").and_then(Json::as_str), Some(state));
        prop_assert_eq!(status.get("acked").and_then(Json::as_u64), Some(acked));
        prop_assert_eq!(status.get("chunks").and_then(Json::as_u64), Some(chunks));

        let message = palette_string(&message_ix);
        let error = parse_json(&upload_error_line(digest, &message)).map_err(|e| e.to_string())?;
        prop_assert_eq!(error.get("type").and_then(Json::as_str), Some("upload_error"));
        prop_assert_eq!(digest_field(&error), digest);
        prop_assert_eq!(error.get("message").and_then(Json::as_str), Some(message.as_str()));

        let unknown = parse_json(&unknown_topology_line(job, digest)).map_err(|e| e.to_string())?;
        prop_assert_eq!(unknown.get("type").and_then(Json::as_str), Some("unknown_topology"));
        prop_assert_eq!(job_field(&unknown), job);
        prop_assert_eq!(digest_field(&unknown), digest);
    }

    /// Uploaded-topology submissions round-trip and digest distinctly from
    /// family submissions, and hex payload codec survives arbitrary bytes.
    #[test]
    fn uploaded_submissions_and_hex_round_trip(
        topo_digest in 0u64..u64::MAX,
        trials in 1usize..10_000,
        payload_ix in collection::vec(0usize..256, 0..256),
    ) {
        let request = SubmitRequest::new(
            "prop",
            TopologySpec::uploaded(topo_digest),
            "push",
            trials,
        );
        match parse_request(&request.to_line()).map_err(|e| e.to_string())? {
            Request::Submit(parsed) => {
                prop_assert_eq!(parsed.topology.uploaded_digest(), Some(topo_digest));
                prop_assert_eq!(parsed.digest(), request.digest());
                prop_assert_eq!(parsed, request);
            }
            other => prop_assert!(false, "expected submit, parsed {other:?}"),
        }
        let payload: Vec<u8> = payload_ix.iter().map(|&b| b as u8).collect();
        let decoded = decode_hex(&encode_hex(&payload)).ok();
        prop_assert_eq!(decoded, Some(payload));
    }

    #[test]
    fn session_verbs_parse(heartbeats in 0usize..3) {
        // The fixed verbs have no parameters; assert them under the same
        // harness so a framing regression in `parse_request` is caught here.
        let _ = heartbeats;
        prop_assert_eq!(
            parse_request("{\"verb\":\"heartbeat\"}").map_err(|e| e.to_string())?,
            Request::Heartbeat
        );
        let heartbeat = parse_json(&heartbeat_line()).map_err(|e| e.to_string())?;
        prop_assert_eq!(
            heartbeat.get("type").and_then(Json::as_str),
            Some("heartbeat")
        );
        prop_assert_eq!(
            parse_request("{\"verb\":\"status\"}").map_err(|e| e.to_string())?,
            Request::Status
        );
        prop_assert_eq!(
            parse_request("{\"verb\":\"ping\"}").map_err(|e| e.to_string())?,
            Request::Ping
        );
    }
}
