//! Crash-safety for the serve binary: SIGKILL the server mid-job, restart it
//! on the same state directory, and assert zero completed-trial loss with
//! byte-identical result lines versus an uninterrupted reference run.
//!
//! Mirrors `tests/kill_resume.rs` for the sweep CLI: the child process is the
//! real `rumor-serve` binary, the kill is a hard `SIGKILL` (no signal
//! handlers exist — crash-equivalence comes from atomic per-trial manifests).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use rumor_experiments::{ServeClient, ServeConfig, Server, SubmitRequest, TopologySpec};

const EXE: &str = env!("CARGO_BIN_EXE_rumor-serve");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rumor-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns the serve binary on an ephemeral port and parses the `listening`
/// line for the actual address.
fn spawn_server(state_dir: &Path, throttle_ms: u64) -> (Child, String) {
    let mut child = Command::new(EXE)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--state-dir",
            state_dir.to_str().unwrap(),
            "--workers",
            "1",
            "--throttle-ms",
            &throttle_ms.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rumor-serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listening line");
    let addr = line
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected first line {line:?}"))
        .trim()
        .to_string();
    (child, addr)
}

fn sweep_request() -> SubmitRequest {
    let mut request = SubmitRequest::new("kr", TopologySpec::new("complete", 48), "push", 10);
    request.seed = 7;
    request
}

/// Submits over a raw socket and returns after `want` trial lines have been
/// observed — each observed line is durably manifest-recorded server-side.
fn stream_until(addr: &str, request: &SubmitRequest, want: usize) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    writeln!(writer, "{}", request.to_line()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut header = String::new();
    reader.read_line(&mut header).unwrap();
    assert!(header.contains("\"type\":\"accepted\""), "header: {header}");
    let mut seen = Vec::new();
    while seen.len() < want {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        if line.contains("\"type\":\"trial\"") {
            seen.push(line.trim().to_string());
        }
    }
    seen
}

#[test]
fn sigkill_mid_job_restart_loses_no_completed_trials() {
    let ref_dir = temp_dir("ref");
    let victim_dir = temp_dir("victim");
    let request = sweep_request();

    // Uninterrupted reference run in a fresh child process.
    let (mut ref_child, ref_addr) = spawn_server(&ref_dir, 0);
    let reference = ServeClient::new(&ref_addr)
        .submit(&request)
        .expect("reference submit");
    assert_eq!(reference.taxonomy.completed, 10);
    ServeClient::new(&ref_addr)
        .drain()
        .expect("reference drain");
    ref_child.wait().expect("reference exit");

    // Victim run: throttle each trial, SIGKILL after three results stream.
    // Every streamed line was manifest-recorded before it was sent, so those
    // trials must survive the crash.
    let (mut victim, victim_addr) = spawn_server(&victim_dir, 120);
    let seen = stream_until(&victim_addr, &request, 3);
    assert_eq!(seen.len(), 3, "victim died before three results streamed");
    victim.kill().expect("kill victim");
    victim.wait().expect("reap victim");

    // Restart on the same state dir: the resubmission reuses every recorded
    // trial and the full stream is byte-identical to the reference.
    let (mut restarted, restart_addr) = spawn_server(&victim_dir, 0);
    let recovered = ServeClient::new(&restart_addr)
        .submit(&request)
        .expect("recovered submit");
    assert_eq!(recovered.trial_lines, reference.trial_lines);
    assert!(
        recovered.reused >= seen.len(),
        "reused {} < {} trials observed before the kill",
        recovered.reused,
        seen.len()
    );
    assert!(
        recovered.recovered_fraction() >= seen.len() as f64 / 10.0,
        "recovered_fraction {} below completed fraction",
        recovered.recovered_fraction()
    );
    assert!(recovered.ensure_complete().is_ok());
    ServeClient::new(&restart_addr).drain().expect("drain");
    restarted.wait().expect("restarted exit");

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&victim_dir).ok();
}

#[test]
fn graceful_drain_then_restart_resumes_in_process() {
    let ref_dir = temp_dir("drain-ref");
    let work_dir = temp_dir("drain-work");
    let request = sweep_request();

    // Reference lines from an uninterrupted in-process server.
    let reference = {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig::new()
                .with_workers(1)
                .with_state_dir(ref_dir.clone()),
        )
        .unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());
        let result = ServeClient::new(&handle.addr().to_string())
            .submit(&request)
            .expect("reference submit");
        handle.drain();
        join.join().unwrap();
        result
    };

    // First server: observe one durable result, then drain mid-job.
    let config = ServeConfig {
        throttle_ms: 100,
        ..ServeConfig::new()
            .with_workers(1)
            .with_state_dir(work_dir.clone())
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    let seen = stream_until(&handle.addr().to_string(), &request, 1);
    assert_eq!(seen.len(), 1);
    handle.drain();
    join.join().unwrap();

    // Second server on the same state dir: completed work is reused, the
    // stream matches the reference byte for byte.
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig::new()
            .with_workers(1)
            .with_state_dir(work_dir.clone()),
    )
    .unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    let resumed = ServeClient::new(&handle.addr().to_string())
        .submit(&request)
        .expect("resumed submit");
    assert!(resumed.reused >= 1, "drain lost a completed trial");
    assert_eq!(resumed.trial_lines, reference.trial_lines);
    assert_eq!(resumed.taxonomy.completed, 10);
    handle.drain();
    join.join().unwrap();

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&work_dir).ok();
}

#[test]
fn serve_binary_round_trips_submit_drain_ping() {
    let dir = temp_dir("cli");
    let (mut child, addr) = spawn_server(&dir, 0);

    let ping = Command::new(EXE)
        .args(["ping", "--addr", &addr])
        .output()
        .expect("run ping");
    assert!(ping.status.success());

    let submit = Command::new(EXE)
        .args([
            "submit",
            "--addr",
            &addr,
            "--family",
            "complete",
            "--n",
            "32",
            "--protocol",
            "push-pull",
            "--trials",
            "4",
            "--seed",
            "3",
        ])
        .output()
        .expect("run submit");
    let stdout = String::from_utf8_lossy(&submit.stdout);
    assert!(submit.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("accepted job="), "stdout: {stdout}");
    assert_eq!(stdout.matches("\"type\":\"trial\"").count(), 4);
    assert!(stdout.contains("done "), "stdout: {stdout}");

    let drain = Command::new(EXE)
        .args(["drain", "--addr", &addr])
        .output()
        .expect("run drain");
    assert!(drain.status.success());
    child.wait().expect("server exit");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn submit_retries_through_a_briefly_absent_server() {
    // The client's backoff must ride out a server that comes up late — spawn
    // the server after the client has already started retrying.
    let dir = temp_dir("late");
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe); // free the port; briefly nothing listens on it

    let request = sweep_request();
    let client_thread = {
        let addr = addr.clone();
        let request = request.clone();
        std::thread::spawn(move || ServeClient::new(&addr).submit(&request))
    };
    std::thread::sleep(Duration::from_millis(120));
    let mut child = Command::new(EXE)
        .args([
            "serve",
            "--addr",
            &addr,
            "--state-dir",
            dir.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn late server");
    let result = client_thread.join().unwrap();
    match result {
        Ok(done) => assert_eq!(done.taxonomy.completed, 10),
        // The retry budget can still expire on a slow machine; the error
        // must at least be the typed connection failure, never a hang.
        Err(rumor_experiments::ClientError::Io(_)) => {}
        Err(other) => panic!("unexpected error: {other}"),
    }
    child.kill().ok();
    child.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}
