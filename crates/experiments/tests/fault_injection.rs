//! The fault-injection harness: deterministic panics, budget exhaustion,
//! simulated crashes, and checkpoint corruption driven through
//! [`FaultPlan`], pinning that every failure mode degrades into a typed
//! [`TrialOutcome`] (and a recoverable manifest) instead of a lost sweep.

use std::path::PathBuf;
use std::time::Duration;

use rumor_core::{
    simulate_resumable, CheckpointCadence, ProtocolKind, SimSnapshot, SimulationSpec,
};
use rumor_experiments::{
    run_trials, run_trials_guarded, ExperimentConfig, FaultPlan, ProtocolSetup, ScalingSweep,
    StopCause, SweepPoint, TrialOutcome, TrialPolicy,
};
use rumor_graphs::generators::{complete, star};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rumor-fault-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn injected_panic_is_absorbed_by_the_same_seed_retry() {
    let g = complete(40).unwrap();
    let cfg = ExperimentConfig::smoke().with_threads(2);
    let spec = SimulationSpec::new(ProtocolKind::Push).with_seed(50);
    let reference = run_trials(&g, 0, &spec, 6, &cfg);

    let policy = TrialPolicy {
        fault: FaultPlan {
            panic_at_trial: Some(3),
            ..FaultPlan::none()
        },
        ..TrialPolicy::new()
    };
    let guarded = run_trials_guarded(&g, 0, &spec, 6, &cfg, &policy, None);
    assert_eq!(guarded.stopped, None);
    assert_eq!(guarded.taxonomy().completed, 6);
    // The retry replays the identical seed, so the sweep result is exactly
    // the unguarded one — including the trial that panicked first.
    for (trial, (got, want)) in guarded.outcomes.iter().zip(&reference).enumerate() {
        assert_eq!(
            got.outcome(),
            Some(want),
            "trial {trial} diverged under fault injection"
        );
    }
}

#[test]
fn exhausted_retries_yield_a_typed_outcome_without_aborting_the_sweep() {
    let g = complete(30).unwrap();
    let cfg = ExperimentConfig::smoke().with_threads(1);
    let spec = SimulationSpec::new(ProtocolKind::PushPull).with_seed(9);
    let policy = TrialPolicy {
        max_retries: 0, // the injected panic has no retry to hide behind
        fault: FaultPlan {
            panic_at_trial: Some(1),
            ..FaultPlan::none()
        },
        ..TrialPolicy::new()
    };
    let guarded = run_trials_guarded(&g, 0, &spec, 4, &cfg, &policy, None);
    let taxonomy = guarded.taxonomy();
    assert_eq!(taxonomy.completed, 3);
    assert_eq!(taxonomy.panicked, 1);
    match &guarded.outcomes[1] {
        TrialOutcome::Panicked { message, attempts } => {
            assert!(message.contains("injected fault"), "message: {message}");
            assert_eq!(*attempts, 1);
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The taxonomy renders for sweep summaries.
    assert_eq!(taxonomy.to_string(), "3 completed, 1 panicked");
}

#[test]
fn expired_wall_clock_budget_suspends_into_timed_out() {
    let g = star(4_000).unwrap();
    let cfg = ExperimentConfig::smoke().with_threads(1);
    // The star keeps push busy for many rounds; a zero budget expires at
    // the very first checkpoint.
    let spec = SimulationSpec::new(ProtocolKind::Push)
        .with_seed(2)
        .with_max_rounds(1_000_000);
    let policy = TrialPolicy::new()
        .with_wall_clock(Duration::ZERO)
        .with_chunk_rounds(1);
    let guarded = run_trials_guarded(&g, 0, &spec, 2, &cfg, &policy, None);
    assert_eq!(guarded.taxonomy().timed_out, 2);
    match &guarded.outcomes[0] {
        TrialOutcome::TimedOut {
            round,
            informed_vertices,
            ..
        } => {
            assert_eq!(*round, 1);
            assert!(*informed_vertices >= 1);
        }
        other => panic!("expected TimedOut, got {other:?}"),
    }
}

#[test]
fn killed_sweep_resumes_from_its_manifest() {
    let g = complete(36).unwrap();
    let cfg = ExperimentConfig::smoke().with_threads(1);
    let spec = SimulationSpec::new(ProtocolKind::VisitExchange).with_seed(77);
    let trials = 8;
    let reference = run_trials(&g, 0, &spec, trials, &cfg);
    let dir = temp_dir("manifest");
    let manifest = dir.join("sweep.rman");

    // "Crash" after three finished trials (single worker ⇒ deterministic
    // which three).
    let crash_policy = TrialPolicy {
        fault: FaultPlan {
            stop_after_trials: Some(3),
            ..FaultPlan::none()
        },
        ..TrialPolicy::new()
    };
    let first = run_trials_guarded(&g, 0, &spec, trials, &cfg, &crash_policy, Some(&manifest));
    assert_eq!(first.stopped, Some(StopCause::InjectedStop));
    assert_eq!(first.taxonomy().completed, 3);
    assert_eq!(first.taxonomy().not_run, trials - 3);

    // The re-run must skip at least the completed fraction and finish the
    // sweep with outcomes identical to an uninterrupted run.
    let second = run_trials_guarded(
        &g,
        0,
        &spec,
        trials,
        &cfg,
        &TrialPolicy::new(),
        Some(&manifest),
    );
    assert_eq!(second.stopped, None);
    assert_eq!(second.reused_trials, 3);
    assert!(second.recovered_fraction() >= 3.0 / trials as f64);
    assert_eq!(second.taxonomy().completed, trials);
    for (trial, (got, want)) in second.outcomes.iter().zip(&reference).enumerate() {
        assert_eq!(
            got.outcome(),
            Some(want),
            "trial {trial} diverged after manifest resume"
        );
    }

    // A manifest keyed to a *different* spec is stale: nothing is reused.
    let other_spec = spec.clone().with_seed(78);
    let fresh = run_trials_guarded(
        &g,
        0,
        &other_spec,
        trials,
        &cfg,
        &TrialPolicy::new(),
        Some(&manifest),
    );
    assert_eq!(fresh.reused_trials, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_written_on_generated_resumes_on_hub_cached() {
    // The manifest digest covers the spec, not the topology backend, and
    // the hub-cached hybrid is bit-identical to its inner generated graph —
    // so a sweep killed while running uncached can resume on the cached
    // backend (or vice versa) and land on the identical outcomes.
    use rumor_graphs::{GeneratedGraph, HubCachedGraph};
    let generated = GeneratedGraph::chung_lu(120, 2.5, 6.0, 3).unwrap();
    let cfg = ExperimentConfig::smoke().with_threads(1);
    let spec = SimulationSpec::new(ProtocolKind::MeetExchange)
        .with_seed(21)
        .with_max_rounds(3_000);
    let trials = 6;
    let reference = run_trials(&generated, 0, &spec, trials, &cfg);
    let dir = temp_dir("hub-manifest");
    let manifest = dir.join("sweep.rman");

    let crash_policy = TrialPolicy {
        fault: FaultPlan {
            stop_after_trials: Some(2),
            ..FaultPlan::none()
        },
        ..TrialPolicy::new()
    };
    let first = run_trials_guarded(
        &generated,
        0,
        &spec,
        trials,
        &cfg,
        &crash_policy,
        Some(&manifest),
    );
    assert_eq!(first.stopped, Some(StopCause::InjectedStop));
    assert_eq!(first.taxonomy().completed, 2);

    let hub = HubCachedGraph::over(generated.clone());
    let second = run_trials_guarded(
        &hub,
        0,
        &spec,
        trials,
        &cfg,
        &TrialPolicy::new(),
        Some(&manifest),
    );
    assert_eq!(second.stopped, None);
    assert_eq!(second.reused_trials, 2);
    assert_eq!(second.taxonomy().completed, trials);
    for (trial, (got, want)) in second.outcomes.iter().zip(&reference).enumerate() {
        assert_eq!(
            got.outcome(),
            Some(want),
            "trial {trial} diverged resuming on the hub-cached backend"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn memory_watchdog_checkpoints_then_stops_the_sweep() {
    let g = star(2_000).unwrap();
    let cfg = ExperimentConfig::smoke().with_threads(1);
    let spec = SimulationSpec::new(ProtocolKind::Push)
        .with_seed(4)
        .with_max_rounds(1_000_000);
    let dir = temp_dir("watchdog");
    // A 1-byte ceiling trips at the first checkpoint of the first trial.
    let policy = TrialPolicy {
        memory_ceiling_bytes: Some(1),
        checkpoint_dir: Some(dir.clone()),
        chunk_rounds: 1,
        ..TrialPolicy::new()
    };
    let guarded = run_trials_guarded(&g, 0, &spec, 3, &cfg, &policy, None);
    assert_eq!(guarded.stopped, Some(StopCause::MemoryCeiling));
    assert_eq!(guarded.taxonomy().not_run, 3);
    // The abort is recoverable: the tripping trial's snapshot was persisted.
    let snapshot = SimSnapshot::load_newest(&dir).unwrap();
    assert!(
        snapshot.is_some(),
        "watchdog must checkpoint before aborting"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_checkpoints_fall_back_to_the_newest_valid_one() {
    let g = complete(60).unwrap();
    let spec = SimulationSpec::new(ProtocolKind::Push)
        .with_seed(6)
        .with_max_rounds(1_000_000);
    let dir = temp_dir("corrupt");
    simulate_resumable(
        &g,
        0,
        &spec,
        CheckpointCadence::every_rounds(1),
        &mut |snap: &SimSnapshot| {
            snap.write_atomic(&dir).unwrap();
            true
        },
    )
    .finished()
    .unwrap();

    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert!(files.len() >= 2, "need at least two checkpoints");
    let newest_valid_round = SimSnapshot::load(&files[files.len() - 2]).unwrap().round();

    // Corrupt the newest file: recovery must skip it and land on the one
    // before, not fail.
    FaultPlan::corrupt_checkpoint(files.last().unwrap()).unwrap();
    let recovered = SimSnapshot::load_newest(&dir).unwrap().unwrap();
    assert_eq!(recovered.round(), newest_valid_round);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn guarded_sweep_matches_the_plain_sweep_and_reports_taxonomy() {
    let sweep = ScalingSweep {
        points: vec![
            SweepPoint::new(star(15).unwrap(), 0),
            SweepPoint::new(star(31).unwrap(), 0),
        ],
        protocols: vec![
            ProtocolSetup::new(ProtocolKind::Push),
            ProtocolSetup::lazy(ProtocolKind::VisitExchange),
        ],
        trials: 4,
        max_rounds: 100_000,
    };
    let cfg = ExperimentConfig::smoke();
    let plain = sweep.run(&cfg);
    let guarded = sweep.run_guarded(&cfg, &TrialPolicy::new(), None);
    assert_eq!(
        plain, guarded,
        "an all-green guarded sweep must equal the plain sweep"
    );
    for m in &guarded.measurements {
        for tax in &m.taxonomy {
            assert_eq!(tax.completed, 4);
        }
    }

    // Under fault injection the sweep survives and the summary table
    // carries the taxonomy annotation.
    let policy = TrialPolicy {
        max_retries: 0,
        fault: FaultPlan {
            panic_at_trial: Some(0),
            ..FaultPlan::none()
        },
        ..TrialPolicy::new()
    };
    let faulted = sweep.run_guarded(&cfg, &policy, None);
    let total_panicked: usize = faulted
        .measurements
        .iter()
        .flat_map(|m| m.taxonomy.iter().map(|t| t.panicked))
        .sum();
    assert!(total_panicked > 0, "injected panic never fired");
    let rendered = faulted.times_table("Times").to_plain_text();
    assert!(rendered.contains("panicked"), "table:\n{rendered}");
    // The captured panic payload is rendered next to the count, so the
    // table names the cause.
    assert!(
        rendered.contains("panicked: injected fault"),
        "table:\n{rendered}"
    );
}
