//! Kill -9 and resume: SIGKILLs a child `checkpoint-run` process mid-flight
//! and proves the resumed run reaches the exact result of an uninterrupted
//! reference run — the end-to-end guarantee behind every other
//! checkpoint/resume test.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const EXE: &str = env!("CARGO_BIN_EXE_rumor-experiments");
// Small enough for debug builds, large enough that a G(n, p) push broadcast
// takes double-digit rounds (⇒ several checkpoints at cadence 2).
const N: &str = "20000";
const SEED: &str = "7";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rumor-kill-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `checkpoint-run` to completion and returns its final `result …` line.
fn run_to_result(dir: &Path, resume: bool) -> String {
    let mut cmd = Command::new(EXE);
    cmd.args(["checkpoint-run", "--dir"]).arg(dir).args([
        "--n",
        N,
        "--seed",
        SEED,
        "--cadence",
        "2",
    ]);
    if resume {
        cmd.arg("--resume");
    }
    let output = cmd.output().expect("spawn checkpoint-run");
    assert!(
        output.status.success(),
        "checkpoint-run failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    stdout
        .lines()
        .find(|line| line.starts_with("result "))
        .unwrap_or_else(|| panic!("no result line in:\n{stdout}"))
        .to_string()
}

#[test]
fn sigkilled_run_resumes_to_the_uninterrupted_result() {
    // Uninterrupted reference run in its own directory.
    let reference_dir = temp_dir("reference");
    let reference = run_to_result(&reference_dir, false);

    // Victim run: throttled so checkpoints arrive slowly, SIGKILLed the
    // moment the first `ckpt` line appears on stdout — mid-flight, with the
    // broadcast far from done.
    let victim_dir = temp_dir("victim");
    let mut child = Command::new(EXE)
        .args(["checkpoint-run", "--dir"])
        .arg(&victim_dir)
        .args([
            "--n",
            N,
            "--seed",
            SEED,
            "--cadence",
            "2",
            "--throttle-ms",
            "200",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn victim");
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let first = loop {
        let line = lines
            .next()
            .expect("victim exited before its first checkpoint")
            .unwrap();
        if line.starts_with("ckpt ") {
            break line;
        }
    };
    child.kill().expect("SIGKILL victim"); // kill(2) with SIGKILL on unix
    child.wait().unwrap();
    let killed_at: u64 = first["ckpt ".len()..].parse().unwrap();

    // At least one checkpoint file must have survived the kill.
    let survivors = std::fs::read_dir(&victim_dir).unwrap().count();
    assert!(survivors >= 1, "no checkpoint survived the SIGKILL");

    // Resume from the newest valid checkpoint: the continued run must land
    // on the byte-for-byte reference result.
    let resumed = run_to_result(&victim_dir, true);
    assert_eq!(
        resumed, reference,
        "resumed run diverged from the uninterrupted reference (killed at round {killed_at})"
    );

    std::fs::remove_dir_all(&reference_dir).ok();
    std::fs::remove_dir_all(&victim_dir).ok();
}

#[test]
fn resume_survives_a_corrupted_newest_checkpoint() {
    let reference_dir = temp_dir("ref2");
    let reference = run_to_result(&reference_dir, false);

    // Drive the kill through the in-process hook this time: the
    // RUMOR_KILL_AT_ROUND fault aborts the child after it persists the
    // snapshot for round 6.
    let victim_dir = temp_dir("victim2");
    let output = Command::new(EXE)
        .args(["checkpoint-run", "--dir"])
        .arg(&victim_dir)
        .args(["--n", N, "--seed", SEED, "--cadence", "2"])
        .env("RUMOR_KILL_AT_ROUND", "6")
        .output()
        .expect("spawn victim");
    assert!(!output.status.success(), "the kill hook must abort the run");

    // Corrupt the newest surviving checkpoint; resume must fall back to an
    // older valid one and still reach the reference result.
    let mut files: Vec<_> = std::fs::read_dir(&victim_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert!(files.len() >= 2, "need a fallback checkpoint");
    rumor_experiments::FaultPlan::corrupt_checkpoint(files.last().unwrap()).unwrap();

    let resumed = run_to_result(&victim_dir, true);
    assert_eq!(resumed, reference);

    std::fs::remove_dir_all(&reference_dir).ok();
    std::fs::remove_dir_all(&victim_dir).ok();
}
