//! Crash-safe remote topology upload, end to end.
//!
//! The acceptance bar for the content-store subsystem: a chunked CSR
//! upload forced through a ≥20-fault [`FaultNet`] schedule (both pump
//! directions) commits bytes identical to an un-proxied transfer and the
//! subsequent sweep is byte-identical to the same CSR run without chaos;
//! a SIGKILL mid-upload resumes from the ack'd chunk after a restart on
//! the same `--state-dir` instead of retransmitting; quota eviction never
//! removes a graph a running job references; and corruption — in a partial
//! before commit or in a committed graph at rest — is answered with typed
//! errors plus an idempotent re-upload path, never a panic.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rumor_experiments::serve::protocol::{
    parse_json, upload_begin_line, upload_chunk_line, upload_commit_line, Json,
};
use rumor_experiments::serve::store::manifest_for;
use rumor_experiments::{
    ClientError, FaultNet, FaultSpec, ServeClient, ServeConfig, Server, ServerHandle,
    SubmitRequest, TopologySpec,
};
use rumor_graphs::codec::encode_csr;
use rumor_graphs::generators;

const EXE: &str = env!("CARGO_BIN_EXE_rumor-serve");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rumor-upload-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve"));
    (handle, join)
}

fn stop(handle: &ServerHandle, join: std::thread::JoinHandle<()>) {
    handle.drain();
    join.join().expect("server thread");
}

/// Where the content store (rooted at `<state-dir>/store`) publishes a
/// committed graph.
fn graph_file(dir: &Path, digest: u64) -> PathBuf {
    dir.join("store").join(format!("graph-{digest:016x}.rcsr"))
}

/// A sweep over an uploaded topology; distinct seeds defeat the result
/// cache so every submission actually resolves the digest.
fn uploaded_request(digest: u64, seed: u64, trials: usize) -> SubmitRequest {
    let mut request = SubmitRequest::new("upload", TopologySpec::uploaded(digest), "push", trials);
    request.seed = seed;
    request
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read line");
    line.trim_end().to_string()
}

/// Reads one `upload_ack` and returns its high-water mark.
fn read_ack(reader: &mut BufReader<TcpStream>) -> u64 {
    let line = read_line(reader);
    let value = parse_json(&line).expect("json ack");
    assert_eq!(
        value.get("type").and_then(Json::as_str),
        Some("upload_ack"),
        "got {line}"
    );
    value.get("acked").and_then(Json::as_u64).expect("acked")
}

/// The tentpole guarantee: an upload forced through a ≥20-fault schedule —
/// drops, resets, truncations, and stalls on *both* pump directions —
/// commits a store entry byte-identical to an un-proxied upload, and a
/// sweep over the uploaded digest streams byte-identical results to the
/// same CSR submitted without chaos. Two servers on separate state dirs,
/// so nothing leaks between the reference and chaos runs.
#[test]
fn chaos_upload_commits_byte_identical_and_sweeps_match() {
    let direct_dir = temp_dir("chaos-direct");
    let chaos_dir = temp_dir("chaos-proxy");
    let graph = generators::cycle(2000).expect("cycle");
    let encoded = encode_csr(&graph);

    // Reference: un-proxied upload + sweep, same 1 KiB line bound (so both
    // transfers share the chunk geometry).
    let (direct_handle, direct_join) = start(ServeConfig::new().with_state_dir(direct_dir.clone()));
    let direct_client =
        ServeClient::new(&direct_handle.addr().to_string()).with_max_line_bytes(1024);
    let direct_report = direct_client.upload(&graph).expect("direct upload");
    assert!(
        direct_report.chunks >= 20,
        "want a long multi-chunk transfer"
    );
    assert_eq!(direct_report.chunks_sent, direct_report.chunks);
    assert_eq!(direct_report.resumed_from, 0);
    let request = uploaded_request(direct_report.digest, 11, 8);
    let direct_result = direct_client.submit(&request).expect("direct submit");
    assert_eq!(direct_result.taxonomy.completed, 8);
    stop(&direct_handle, direct_join);

    // Chaos: the same upload through the fault proxy, faulting both pumps.
    let (handle, join) = start(ServeConfig::new().with_state_dir(chaos_dir.clone()));
    // Every connection faults on both pumps; the fault point sits past one
    // full chunk line so each surviving connection still makes progress —
    // the transfer converges through a long stream of killed connections.
    let mut spec = FaultSpec::new(0xC4A0_5EED).with_upstream_faults();
    spec.fault_rate = 1.0;
    spec.min_after_bytes = 1300;
    spec.max_after_bytes = 2600;
    let net = FaultNet::start(handle.addr(), spec).expect("proxy");
    let chaos_client = ServeClient::new(&net.addr().to_string())
        .with_max_line_bytes(1024)
        .with_max_reconnects(512);
    let chaos_report = chaos_client.upload(&graph).expect("chaos upload");
    assert_eq!(chaos_report.digest, direct_report.digest);

    // A lucky schedule can thread one transfer through mostly-clean
    // connections; keep pushing distinct graphs through the proxy until
    // the schedule has demonstrably injected every fault kind on both
    // pumps, past the 20-fault floor. Each committed entry must still be
    // its canonical encoding, bit for bit.
    let mut extra: Vec<(u64, Vec<u8>)> = Vec::new();
    for i in 0..16u64 {
        let snapshot = net.report();
        if snapshot.total() >= 24
            && snapshot.drops > 0
            && snapshot.resets > 0
            && snapshot.truncations > 0
            && snapshot.delays > 0
            && snapshot.upstream_faults > 0
        {
            break;
        }
        let filler = generators::cycle(2100 + 37 * i as usize).expect("cycle");
        let encoded = encode_csr(&filler);
        let report = chaos_client.upload(&filler).expect("chaos filler upload");
        extra.push((report.digest, encoded));
    }
    let report = net.shutdown();
    assert!(
        report.total() >= 20,
        "schedule must inject at least 20 faults, got {report:?}"
    );
    assert!(report.drops > 0, "schedule must include drops: {report:?}");
    assert!(
        report.resets > 0,
        "schedule must include resets: {report:?}"
    );
    assert!(
        report.truncations > 0,
        "schedule must include truncations: {report:?}"
    );
    assert!(
        report.delays > 0,
        "schedule must include stalls: {report:?}"
    );
    assert!(
        report.upstream_faults > 0,
        "schedule must fault the client→server pump too: {report:?}"
    );
    assert!(
        chaos_report.reconnects > 0,
        "faults at this rate must force at least one reconnect"
    );

    // The committed entries are the canonical encoding, bit for bit, on
    // both servers — chaos changed the transfer, never the content.
    let digest = direct_report.digest;
    assert_eq!(
        std::fs::read(graph_file(&direct_dir, digest)).expect("direct entry"),
        encoded
    );
    assert_eq!(
        std::fs::read(graph_file(&chaos_dir, digest)).expect("chaos entry"),
        encoded
    );
    for (filler_digest, filler_encoded) in &extra {
        assert_eq!(
            &std::fs::read(graph_file(&chaos_dir, *filler_digest)).expect("filler entry"),
            filler_encoded
        );
    }

    // And the sweep over the chaos-uploaded digest is byte-identical to
    // the reference sweep.
    let chaos_result = ServeClient::new(&handle.addr().to_string())
        .submit(&request)
        .expect("chaos submit");
    assert_eq!(chaos_result.taxonomy.completed, 8);
    assert_eq!(
        chaos_result.trial_lines, direct_result.trial_lines,
        "sweep over the chaos-uploaded graph must match the direct run"
    );
    stop(&handle, join);

    std::fs::remove_dir_all(&direct_dir).ok();
    std::fs::remove_dir_all(&chaos_dir).ok();
}

/// Spawns the real serve binary on an ephemeral port and parses the
/// `listening` line for the actual address.
fn spawn_server(state_dir: &Path) -> (Child, String) {
    let mut child = Command::new(EXE)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--state-dir",
            state_dir.to_str().unwrap(),
            "--workers",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rumor-serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listening line");
    let addr = line
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected first line {line:?}"))
        .trim()
        .to_string();
    (child, addr)
}

/// SIGKILL the server halfway through a chunked upload, restart it on the
/// same state dir, and the client resumes from the ack'd high-water mark —
/// no full retransmit — committing the declared digest.
#[test]
fn sigkill_mid_upload_resumes_from_the_acked_chunk() {
    let dir = temp_dir("kill");
    let graph = generators::cycle(1200).expect("cycle");
    let encoded = encode_csr(&graph);
    let manifest = manifest_for(&encoded, 1024).expect("manifest");
    let chunks = manifest.chunks();
    assert!(chunks >= 8, "need a multi-chunk transfer, got {chunks}");
    let sent = chunks / 2;

    // Lockstep half the transfer over a raw socket: every ack means the
    // chunk is durably appended to the partial file.
    let (mut victim, addr) = spawn_server(&dir);
    {
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writeln!(writer, "{}", upload_begin_line(&manifest)).expect("begin");
        assert_eq!(read_ack(&mut reader), 0);
        for index in 0..sent {
            let at = (index * manifest.chunk_bytes) as usize;
            let payload = &encoded[at..at + manifest.chunk_len(index)];
            writeln!(
                writer,
                "{}",
                upload_chunk_line(manifest.digest, index, payload)
            )
            .expect("chunk");
            assert_eq!(read_ack(&mut reader), index + 1);
        }
    }
    victim.kill().expect("SIGKILL victim");
    victim.wait().expect("reap victim");

    // Restart on the same state dir: `upload_begin` re-acks the recovered
    // high-water mark and the client transmits only the missing suffix.
    let (mut restarted, addr) = spawn_server(&dir);
    let client = ServeClient::new(&addr).with_max_line_bytes(1024);
    let report = client.upload_bytes(&encoded).expect("resumed upload");
    assert_eq!(report.digest, manifest.digest);
    assert_eq!(
        report.resumed_from, sent,
        "resume must start at the ack'd chunk"
    );
    assert_eq!(
        report.chunks_sent,
        chunks - sent,
        "only the missing suffix may be retransmitted"
    );
    assert_eq!(
        std::fs::read(graph_file(&dir, manifest.digest)).expect("committed entry"),
        encoded
    );

    // The committed graph is immediately sweepable.
    let result = client
        .submit(&uploaded_request(report.digest, 9, 4))
        .expect("submit uploaded");
    assert_eq!(result.taxonomy.completed, 4);
    ServeClient::new(&addr).drain().expect("drain");
    restarted.wait().expect("restarted exit");

    std::fs::remove_dir_all(&dir).ok();
}

/// Quota pressure while a job runs: the running job's pin keeps its graph
/// in the store even though the footprint exceeds the quota; once the job
/// retires and the pin drops, the LRU entry is evicted, and a submission
/// naming the evicted digest round-trips through the typed
/// `unknown_topology` cue — `submit_uploaded` re-uploads and completes.
#[test]
fn quota_eviction_spares_pinned_graphs_and_evicted_digests_reupload() {
    let dir = temp_dir("quota");
    let a = encode_csr(&generators::cycle(256).expect("cycle"));
    let b = encode_csr(&generators::cycle(300).expect("cycle"));
    // Either graph fits alone; together they bust the quota.
    let quota = a.len().max(b.len()) as u64 + 512;
    let config = ServeConfig {
        throttle_ms: 120,
        ..ServeConfig::new()
            .with_workers(1)
            .with_state_dir(dir.clone())
            .with_store_quota_bytes(quota)
    };
    let (handle, join) = start(config);
    let addr = handle.addr().to_string();
    let client = ServeClient::new(&addr);
    let a_digest = client.upload_bytes(&a).expect("upload a").digest;

    // A throttled sweep pins graph A for roughly a second.
    let request = uploaded_request(a_digest, 21, 8);
    let runner = {
        let client = ServeClient::new(&addr);
        let request = request.clone();
        std::thread::spawn(move || client.submit(&request))
    };
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.status().active_jobs == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(handle.status().active_jobs > 0, "job never started");

    // Committing B pushes the footprint past the quota, but the only
    // eviction candidate is pinned by the running job — nothing may go.
    let b_digest = client.upload_bytes(&b).expect("upload b").digest;
    assert_ne!(a_digest, b_digest);
    let status = handle.status();
    assert_eq!(
        status.evictions, 0,
        "eviction must never remove a graph a running job references"
    );
    assert_eq!(status.graphs_stored, 2);
    assert!(graph_file(&dir, a_digest).exists());

    let result = runner.join().expect("runner").expect("pinned job");
    assert_eq!(result.taxonomy.completed, 8);

    // The pin died with the job; the quota now evicts the LRU entry (A).
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.status().evictions == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let status = handle.status();
    assert!(status.evictions >= 1, "quota must evict once the pin drops");
    assert!(status.store_bytes <= quota);

    // A fresh submission naming the evicted digest answers typed; the
    // bundled re-upload path heals it in one call.
    let fresh = uploaded_request(a_digest, 22, 4);
    match client.submit(&fresh) {
        Err(ClientError::UnknownTopology { digest }) => assert_eq!(digest, a_digest),
        other => panic!("expected unknown_topology, got {other:?}"),
    }
    let healed = client.submit_uploaded(&fresh, &a).expect("healed submit");
    assert_eq!(healed.taxonomy.completed, 4);

    stop(&handle, join);
    std::fs::remove_dir_all(&dir).ok();
}

/// A chunk corrupted on disk *after* it was acked (the CRC passed on the
/// wire) is caught by the whole-graph digest check at commit: a typed
/// `upload_error`, a live connection afterwards, and a clean re-upload —
/// never a panic, never a poisoned store.
#[test]
fn corrupt_partial_is_rejected_at_commit_with_a_typed_error() {
    let dir = temp_dir("corrupt-partial");
    let (handle, join) = start(ServeConfig::new().with_state_dir(dir.clone()));
    let encoded = encode_csr(&generators::cycle(64).expect("cycle"));
    let manifest = manifest_for(&encoded, 1024).expect("manifest");

    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{}", upload_begin_line(&manifest)).expect("begin");
    assert_eq!(read_ack(&mut reader), 0);
    for index in 0..manifest.chunks() {
        let at = (index * manifest.chunk_bytes) as usize;
        let payload = &encoded[at..at + manifest.chunk_len(index)];
        writeln!(
            writer,
            "{}",
            upload_chunk_line(manifest.digest, index, payload)
        )
        .expect("chunk");
        assert_eq!(read_ack(&mut reader), index + 1);
    }

    // Flip one landed byte underneath the store, then ask it to commit.
    let partial = dir
        .join("store")
        .join(format!("partial-{:016x}.rup", manifest.digest));
    let mut raw = std::fs::read(&partial).expect("partial file");
    let at = raw.len() - 1;
    raw[at] ^= 0x40;
    std::fs::write(&partial, raw).expect("corrupt partial");
    writeln!(writer, "{}", upload_commit_line(manifest.digest)).expect("commit");
    let line = read_line(&mut reader);
    let value = parse_json(&line).expect("json answer");
    assert_eq!(
        value.get("type").and_then(Json::as_str),
        Some("upload_error"),
        "got {line}"
    );

    // The connection survived the failure.
    writeln!(writer, "{{\"verb\":\"heartbeat\"}}").expect("heartbeat");
    assert!(read_line(&mut reader).contains("\"type\":\"heartbeat\""));
    assert_eq!(handle.status().failed_validations, 1);

    // The failed commit dropped the partial, so the re-upload starts clean
    // and lands the true bytes.
    let report = ServeClient::new(&handle.addr().to_string())
        .with_max_line_bytes(1024)
        .upload_bytes(&encoded)
        .expect("re-upload");
    assert_eq!(report.resumed_from, 0);
    assert_eq!(
        std::fs::read(graph_file(&dir, manifest.digest)).expect("committed entry"),
        encoded
    );
    stop(&handle, join);
    std::fs::remove_dir_all(&dir).ok();
}

/// Corruption at rest in a *committed* graph is caught on the next resolve:
/// the submission answers the typed `unknown_topology` cue, the poisoned
/// entry is dropped, and `submit_uploaded` re-uploads and completes.
#[test]
fn corrupt_committed_graph_round_trips_through_unknown_topology() {
    let dir = temp_dir("corrupt-committed");
    let (handle, join) = start(ServeConfig::new().with_state_dir(dir.clone()));
    let encoded = encode_csr(&generators::cycle(128).expect("cycle"));
    let client = ServeClient::new(&handle.addr().to_string());
    let digest = client.upload_bytes(&encoded).expect("upload").digest;

    let path = graph_file(&dir, digest);
    let mut raw = std::fs::read(&path).expect("committed entry");
    let at = raw.len() / 2;
    raw[at] ^= 0x01;
    std::fs::write(&path, raw).expect("corrupt entry");

    let request = uploaded_request(digest, 5, 4);
    match client.submit(&request) {
        Err(ClientError::UnknownTopology { digest: missing }) => assert_eq!(missing, digest),
        other => panic!("expected unknown_topology, got {other:?}"),
    }
    assert!(handle.status().failed_validations >= 1);

    let healed = client.submit_uploaded(&request, &encoded).expect("healed");
    assert_eq!(healed.taxonomy.completed, 4);
    assert_eq!(std::fs::read(&path).expect("re-committed entry"), encoded);
    stop(&handle, join);
    std::fs::remove_dir_all(&dir).ok();
}
