//! End-to-end serve tests over real TCP: submission streaming, duplicate
//! coalescing, overload shedding without starvation, deadline enforcement,
//! and typed validation errors.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rumor_experiments::{
    AdmissionLimits, ClientError, RetryPolicy, ServeClient, ServeConfig, Server, SubmitRequest,
    TopologySpec,
};

/// Binds a server on an ephemeral port and runs it on a background thread.
fn start_server(
    config: ServeConfig,
) -> (rumor_experiments::ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("serve");
    });
    (handle, join)
}

fn fail_fast() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 1,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(10),
    }
}

#[test]
fn submits_a_sweep_and_streams_typed_results() {
    let (handle, join) = start_server(ServeConfig::new().with_workers(2));
    let client = ServeClient::new(&handle.addr().to_string());

    let request = SubmitRequest::new("alice", TopologySpec::new("complete", 64), "push", 6);
    let result = client.submit(&request).expect("submit");
    assert_eq!(result.trial_lines.len(), 6);
    assert_eq!(result.taxonomy.completed, 6);
    assert!(!result.cached);
    assert!(result.ensure_complete().is_ok());
    // Lines arrive in trial-index order.
    for (i, line) in result.trial_lines.iter().enumerate() {
        assert!(
            line.contains(&format!("\"index\":{i}")),
            "line {i} out of order: {line}"
        );
    }

    // An identical resubmission — even from another client — is a cache hit
    // with byte-identical trial lines.
    let mut duplicate = request.clone();
    duplicate.client = "bob".to_string();
    let replay = client.submit(&duplicate).expect("replay");
    assert!(replay.cached);
    assert_eq!(replay.trial_lines, result.trial_lines);
    assert_eq!(handle.stats().trials_executed, 6, "cache hit must be free");

    // Liveness + stats + drain round-trip through the wire.
    client.ping().expect("ping");
    let (executed, _, cache_hits, _, _, _) = client.stats().expect("stats");
    assert_eq!(executed, 6);
    assert_eq!(cache_hits, 1);
    client.drain().expect("drain");
    join.join().unwrap();
}

#[test]
fn concurrent_duplicate_submissions_share_one_execution() {
    let dir = std::env::temp_dir().join(format!("rumor-serve-dup-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = ServeConfig::new()
        .with_workers(2)
        .with_state_dir(dir.clone());
    let config = ServeConfig {
        throttle_ms: 30, // slow the job so the duplicate lands mid-flight
        ..config
    };
    let (handle, join) = start_server(config);
    let addr = handle.addr().to_string();

    let request = SubmitRequest::new("alice", TopologySpec::new("complete", 48), "push-pull", 8);
    let mut race = request.clone();
    race.client = "bob".to_string();
    let threads: Vec<_> = [request, race]
        .into_iter()
        .map(|req| {
            let addr = addr.clone();
            std::thread::spawn(move || ServeClient::new(&addr).submit(&req).expect("submit"))
        })
        .collect();
    let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    // One execution: the racing duplicate attached to the in-flight job (or
    // hit the cache if it lost the race entirely) — never a re-run.
    assert_eq!(
        handle.stats().trials_executed,
        8,
        "duplicate submission must not re-execute trials"
    );
    let stats = handle.stats();
    assert_eq!(
        stats.duplicate_hits + stats.cache_hits,
        1,
        "the second submission must be a duplicate or cache hit: {stats:?}"
    );
    // …and both streams carry byte-identical result lines.
    assert_eq!(results[0].trial_lines, results[1].trial_lines);
    assert_eq!(results[0].trial_lines.len(), 8);
    for result in &results {
        assert_eq!(result.taxonomy.completed, 8);
    }

    handle.drain();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_sheds_typed_rejections_without_starving_the_small_client() {
    let config = ServeConfig {
        workers: 1,
        throttle_ms: 20,
        limits: AdmissionLimits {
            max_pending_trials: 26,
            max_pending_jobs: 8,
        },
        ..ServeConfig::new()
    };
    let (handle, join) = start_server(config);
    let addr = handle.addr().to_string();

    // The hog fills most of the queue first…
    let hog = SubmitRequest::new("hog", TopologySpec::new("complete", 32), "push", 24);
    let hog_thread = {
        let addr = addr.clone();
        let hog = hog.clone();
        std::thread::spawn(move || {
            let done = ServeClient::new(&addr).submit(&hog).expect("hog submit");
            (Instant::now(), done)
        })
    };
    // Give the hog's submission time to land.
    std::thread::sleep(Duration::from_millis(50));

    // …so a second large job sheds with a typed rejection…
    let flood = SubmitRequest::new("hog", TopologySpec::new("complete", 32), "pull", 24);
    match ServeClient::new(&addr)
        .with_retry(fail_fast())
        .submit(&flood)
    {
        Err(ClientError::Overloaded { retry_after_ms }) => assert!(retry_after_ms >= 100),
        other => panic!("expected typed shed, got {other:?}"),
    }

    // …while a small well-behaved job still fits, interleaves 1:1 with the
    // hog under round-robin, and finishes long before it.
    let small = SubmitRequest::new(
        "mouse",
        TopologySpec::new("complete", 32),
        "visit-exchange",
        2,
    );
    let small_result = ServeClient::new(&addr)
        .submit(&small)
        .expect("small submit");
    let small_done = Instant::now();
    assert_eq!(small_result.taxonomy.completed, 2);

    let (hog_done, hog_result) = hog_thread.join().unwrap();
    assert_eq!(hog_result.taxonomy.completed, 24);
    assert!(
        small_done < hog_done,
        "fair scheduling must finish the 2-trial job before the 24-trial hog"
    );
    assert!(handle.stats().shed >= 1);

    handle.drain();
    join.join().unwrap();
}

#[test]
fn deadlines_terminate_with_typed_taxonomy_not_hangs() {
    let (handle, join) = start_server(ServeConfig::new().with_workers(2));
    let client = ServeClient::new(&handle.addr().to_string());

    // A push broadcast on a million-vertex cycle cannot finish inside the
    // deadline (it needs ~n/2 rounds); every trial must either suspend at a
    // chunk boundary (timed-out) or never start (not-run).
    let mut request = SubmitRequest::new("dl", TopologySpec::new("cycle", 1_000_000), "push", 4);
    request.max_rounds = 400_000;
    request.deadline_ms = Some(150);
    let started = Instant::now();
    let result = client.submit(&request).expect("deadline submit");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "deadline must bound the request"
    );
    assert_eq!(result.taxonomy.completed, 0);
    assert_eq!(
        result.taxonomy.timed_out + result.taxonomy.not_run,
        4,
        "taxonomy: {:?}",
        result.taxonomy
    );
    match result.ensure_complete() {
        Err(ClientError::DeadlineExceeded { .. }) => {}
        other => panic!("expected typed deadline error, got {other:?}"),
    }

    handle.drain();
    join.join().unwrap();
}

#[test]
fn invalid_specs_and_verbs_answer_with_typed_errors() {
    let (handle, join) = start_server(ServeConfig::new().with_workers(1));
    let client = ServeClient::new(&handle.addr().to_string()).with_retry(fail_fast());

    let bad_protocol = SubmitRequest::new("t", TopologySpec::new("star", 16), "shout", 2);
    match client.submit(&bad_protocol) {
        Err(ClientError::Rejected(message)) => assert!(message.contains("shout")),
        other => panic!("expected rejection, got {other:?}"),
    }
    let bad_family = SubmitRequest::new("t", TopologySpec::new("moebius", 16), "push", 2);
    assert!(matches!(
        client.submit(&bad_family),
        Err(ClientError::Rejected(_))
    ));

    // Raw garbage on the wire gets an error line, not a hang.
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    writeln!(writer, "this is not json").unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    assert!(line.contains("\"type\":\"error\""), "line: {line}");

    handle.drain();
    join.join().unwrap();
}

#[test]
fn draining_server_rejects_new_submissions_typed() {
    let (handle, join) = start_server(ServeConfig::new().with_workers(1));
    let client = Arc::new(ServeClient::new(&handle.addr().to_string()).with_retry(fail_fast()));
    handle.drain();
    let request = SubmitRequest::new("t", TopologySpec::new("star", 16), "push", 2);
    // The accept loop may already have exited: both the typed draining
    // answer and a refused connection are acceptable; a hang is not.
    match client.submit(&request) {
        Err(ClientError::Draining) | Err(ClientError::Io(_)) => {}
        other => panic!("expected draining/refused, got {other:?}"),
    }
    join.join().unwrap();
}

#[test]
fn killed_session_mid_forward_leaves_the_server_serving() {
    // The regression this pins: a session dying mid-forward (connection
    // dropped while its forwarder is streaming trial lines) must cost only
    // that session. The server keeps admitting and serving new sessions,
    // and the dead session's threads are reclaimed — nothing wedges on the
    // outbox Condvar.
    use std::io::{BufRead, BufReader, Write};
    let config = ServeConfig {
        throttle_ms: 30, // stretch the job so the kill lands mid-stream
        ..ServeConfig::new().with_workers(2)
    };
    let (handle, join) = start_server(config);

    let victim = SubmitRequest::new("victim", TopologySpec::new("complete", 48), "push", 20);
    {
        let mut stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
        writeln!(stream, "{}", victim.to_line()).expect("send");
        stream.flush().expect("flush");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("accepted line");
        assert!(line.contains("\"type\":\"accepted\""), "unexpected: {line}");
        line.clear();
        reader.read_line(&mut line).expect("first trial line");
        assert!(line.contains("\"type\":\"trial\""), "unexpected: {line}");
        // Drop the socket with 19 trials still to stream: the reader sees
        // EOF, the writer hits a dead peer, the forwarder must notice and
        // exit instead of pushing into a wedged outbox forever.
    }

    // A fresh session on the same server must be served normally while the
    // victim's job is still running/unwinding.
    let client = ServeClient::new(&handle.addr().to_string());
    let fresh = SubmitRequest::new("fresh", TopologySpec::new("complete", 32), "push", 4);
    let result = client.submit(&fresh).expect("fresh session served");
    assert_eq!(result.taxonomy.completed, 4);

    // The dead session's threads unwind (bounded by the forwarder poll),
    // leaving no leaked open session.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = handle.status();
        if status.open_sessions == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "dead session leaked: {} still open",
            status.open_sessions
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The orphaned job itself finished server-side; its result is
    // resumable by a new session from the cache.
    let deadline = Instant::now() + Duration::from_secs(30);
    let replay = loop {
        match client.submit(&victim) {
            Ok(replay) => break replay,
            Err(e) => assert!(Instant::now() < deadline, "victim job lost: {e:?}"),
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(replay.taxonomy.completed, 20);

    client.drain().expect("drain");
    join.join().unwrap();
}
