//! Chaos suite: the serve stack's zero-loss guarantees under deterministic
//! network failure.
//!
//! The [`FaultNet`] proxy injects drops, resets, truncations, and stalls at
//! seed-keyed (Philox) points, so every run of this suite replays exactly
//! the same failure schedule. The headline test drives a multi-job sweep
//! through sustained faults and requires the result streams to be
//! **byte-identical** to an un-proxied run against a separate server —
//! zero lost lines, zero duplicated lines. The rest pin the session layer's
//! edges: exact resume replay, half-open reaping within the idle timeout,
//! bounded-line violations, and multiplexing many jobs over one connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rumor_experiments::serve::protocol::{parse_json, resume_request_line, Json};
use rumor_experiments::serve::MAX_LINE_BYTES;
use rumor_experiments::{
    FaultSpec, ServeClient, ServeConfig, Server, ServerHandle, SubmitRequest, TopologySpec,
};

fn start(config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve"));
    (handle, join)
}

fn stop(handle: &ServerHandle, join: std::thread::JoinHandle<()>) {
    handle.drain();
    join.join().expect("server thread");
}

/// Distinct seeds make distinct digests, so nothing is answered from cache
/// unless a test wants it to be.
fn job(client: &str, seed: u64, trials: usize) -> SubmitRequest {
    let mut request = SubmitRequest::new(client, TopologySpec::new("complete", 64), "push", trials);
    request.seed = seed;
    request
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Option<String> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line.trim_end().to_string()),
        Err(_) => None,
    }
}

/// The tentpole guarantee: a multi-job sweep forced through ≥20 injected
/// faults (drops, resets, truncations, stalls) completes with result
/// streams byte-identical to an un-proxied run — zero lost, zero
/// duplicated trial lines. Two separate servers, so the reference run
/// cannot pre-populate the chaos server's cache.
#[test]
fn chaos_sweep_is_byte_identical_to_direct_run() {
    let jobs: Vec<SubmitRequest> = (0..16).map(|j| job("chaos", 100 + j, 12)).collect();

    // Reference run: no proxy, fresh server.
    let (direct_handle, direct_join) = start(ServeConfig::new());
    let direct_client = ServeClient::new(&direct_handle.addr().to_string());
    let direct: Vec<_> = jobs
        .iter()
        .map(|request| direct_client.submit(request).expect("direct submit"))
        .collect();
    stop(&direct_handle, direct_join);

    // Chaos run: same jobs, fresh server, every connection through the
    // fault proxy. One session per job so the deterministic schedule sees
    // a fresh connection stream per job plus one per reconnect.
    let (handle, join) = start(ServeConfig::new());
    let mut spec = FaultSpec::new(0xC4A0_5EED);
    spec.fault_rate = 0.75;
    spec.max_after_bytes = 1000;
    let net = rumor_experiments::FaultNet::start(handle.addr(), spec).expect("proxy");
    let chaos_client = ServeClient::new(&net.addr().to_string()).with_max_reconnects(64);

    let mut reconnects = 0u64;
    let mut duplicates_dropped = 0u64;
    let mut recovery_samples = 0usize;
    let mut chaos = Vec::with_capacity(jobs.len());
    for request in &jobs {
        let (mut results, stats) = chaos_client.submit_session(std::slice::from_ref(request));
        reconnects += stats.reconnects;
        duplicates_dropped += stats.duplicate_lines_dropped;
        recovery_samples += stats.recovery_ms.len();
        chaos.push(results.remove(0).expect("chaos submit"));
    }

    let report = net.shutdown();
    stop(&handle, join);

    assert!(
        report.total() >= 20,
        "schedule must inject at least 20 faults, got {report:?}"
    );
    assert!(report.drops > 0, "schedule must include drops: {report:?}");
    assert!(
        report.resets > 0,
        "schedule must include resets: {report:?}"
    );
    assert!(
        report.truncations > 0,
        "schedule must include truncations: {report:?}"
    );
    assert!(
        report.delays > 0,
        "schedule must include stalls: {report:?}"
    );
    assert!(
        reconnects > 0,
        "faults at this rate must force at least one reconnect"
    );
    // One sample per recovery *span*: back-to-back faults (a replacement
    // connection dying before its first line) fold into a single sample.
    assert!(
        recovery_samples > 0 && recovery_samples <= reconnects as usize,
        "recovery samples ({recovery_samples}) must track reconnects ({reconnects})"
    );
    // Truncation replays overlap; the seq filter must have discarded it
    // rather than surfacing duplicates.
    let _ = duplicates_dropped;

    for (direct_result, chaos_result) in direct.iter().zip(&chaos) {
        assert_eq!(chaos_result.taxonomy.completed, 12);
        assert_eq!(
            direct_result.trial_lines, chaos_result.trial_lines,
            "chaos stream must be byte-identical to the direct stream"
        );
    }
}

/// One connection carries many concurrent jobs: results demultiplex by the
/// `(job, seq)` tags, in request order, over a single session.
#[test]
fn one_session_multiplexes_concurrent_jobs() {
    let (handle, join) = start(ServeConfig::new());
    let client = ServeClient::new(&handle.addr().to_string());
    let jobs: Vec<SubmitRequest> = (0..5).map(|j| job("mux", 900 + j, 6)).collect();
    let (results, stats) = client.submit_session(&jobs);
    assert_eq!(stats.connects, 1, "one session, one connection");
    assert_eq!(stats.reconnects, 0);
    for (request, result) in jobs.iter().zip(results) {
        let result = result.expect("mux submit");
        assert_eq!(result.job, format!("{:016x}", request.digest()));
        assert_eq!(result.taxonomy.completed, 6);
        assert_eq!(result.trial_lines.len(), 6);
    }
    assert_eq!(handle.status().sessions_opened, 1);
    stop(&handle, join);
}

/// `resume {job, last_seq}` replays exactly the missing suffix: the lines
/// past `last_seq` of a full replay, byte for byte, then the same `done`.
#[test]
fn resume_replays_exactly_the_missing_suffix() {
    let (handle, join) = start(ServeConfig::new());
    let addr = handle.addr();
    let client = ServeClient::new(&addr.to_string());
    let request = job("resume", 4242, 8);
    let digest = request.digest();
    client.submit(&request).expect("seed the cache");

    let replay_from = |last_seq: u64| -> Vec<String> {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        writeln!(writer, "{}", resume_request_line(digest, last_seq)).expect("write");
        let mut reader = BufReader::new(stream);
        let header = read_line(&mut reader).expect("resumed header");
        let value = parse_json(&header).expect("json header");
        assert_eq!(value.get("type").and_then(Json::as_str), Some("resumed"));
        assert_eq!(value.get("seq").and_then(Json::as_u64), Some(last_seq));
        let mut lines = Vec::new();
        loop {
            let line = read_line(&mut reader).expect("replay line");
            let done = parse_json(&line)
                .expect("json line")
                .get("type")
                .and_then(Json::as_str)
                == Some("done");
            lines.push(line);
            if done {
                return lines;
            }
        }
    };

    let full = replay_from(0);
    assert_eq!(full.len(), 9, "8 trials + done");
    for last_seq in [1u64, 4, 8] {
        let suffix = replay_from(last_seq);
        assert_eq!(
            suffix,
            full[last_seq as usize..].to_vec(),
            "resume from {last_seq} must replay exactly the missing suffix"
        );
    }
    stop(&handle, join);
}

/// A resume naming a digest the server has never seen answers with a typed
/// `unknown_job` line (the client's cue to fall back to resubmission).
#[test]
fn unknown_job_resume_answers_typed() {
    let (handle, join) = start(ServeConfig::new());
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writeln!(writer, "{}", resume_request_line(0xdead_beef, 3)).expect("write");
    let mut reader = BufReader::new(stream);
    let line = read_line(&mut reader).expect("answer");
    let value = parse_json(&line).expect("json");
    assert_eq!(
        value.get("type").and_then(Json::as_str),
        Some("unknown_job")
    );
    assert_eq!(
        value.get("job").and_then(Json::as_str),
        Some(format!("{:016x}", 0xdead_beefu64).as_str())
    );
    stop(&handle, join);
}

/// A connection that goes silent (no request, no heartbeat) is reclaimed
/// within the configured idle timeout: typed `protocol_error`, close, and
/// the `idle_reaped` counter ticks. Heartbeats defer the reaper.
#[test]
fn half_open_connections_are_reaped_within_the_idle_timeout() {
    let idle = Duration::from_millis(300);
    let (handle, join) = start(ServeConfig::new().with_idle_timeout(idle));

    // A live connection that only heartbeats must survive several idle
    // windows.
    let alive = TcpStream::connect(handle.addr()).expect("connect");
    let mut alive_writer = alive.try_clone().expect("clone");
    let mut alive_reader = BufReader::new(alive);
    for _ in 0..8 {
        writeln!(alive_writer, "{{\"verb\":\"heartbeat\"}}").expect("heartbeat");
        let answer = read_line(&mut alive_reader).expect("heartbeat answer");
        assert!(answer.contains("\"type\":\"heartbeat\""));
        std::thread::sleep(Duration::from_millis(100));
    }
    assert_eq!(
        handle.status().idle_reaped,
        0,
        "heartbeats defer the reaper"
    );
    drop(alive_writer);
    drop(alive_reader);

    // A half-open connection: connected, then silent.
    let silent = TcpStream::connect(handle.addr()).expect("connect");
    let started = Instant::now();
    let mut reader = BufReader::new(silent.try_clone().expect("clone"));
    let line = read_line(&mut reader).expect("the reaper announces itself");
    let elapsed = started.elapsed();
    assert!(line.contains("\"type\":\"protocol_error\""), "got {line}");
    assert!(line.contains("idle timeout"), "got {line}");
    assert_eq!(read_line(&mut reader), None, "connection must be closed");
    assert!(
        elapsed < idle * 3,
        "reap took {elapsed:?}, idle timeout is {idle:?}"
    );
    let deadline = Instant::now() + Duration::from_secs(2);
    while handle.status().idle_reaped == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(handle.status().idle_reaped, 1);
    stop(&handle, join);
}

/// A request line past [`MAX_LINE_BYTES`] is answered with a typed
/// `protocol_error` and a close — never an unbounded buffer.
#[test]
fn oversized_lines_get_a_typed_protocol_error() {
    let (handle, join) = start(ServeConfig::new());
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let blob = vec![b'x'; MAX_LINE_BYTES + 512];
    writer.write_all(&blob).expect("write oversized");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut answer = String::new();
    reader.read_to_string(&mut answer).expect("read answer");
    assert!(
        answer.contains("\"type\":\"protocol_error\""),
        "got {answer:?}"
    );
    assert!(answer.contains("line exceeds"), "got {answer:?}");
    let deadline = Instant::now() + Duration::from_secs(2);
    while handle.status().protocol_errors == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(handle.status().protocol_errors, 1);
    stop(&handle, join);
}
