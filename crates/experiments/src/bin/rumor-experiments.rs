//! Command-line experiment runner.
//!
//! ```text
//! Usage: rumor-experiments [OPTIONS] [EXPERIMENT-ID ...]
//!
//! Options:
//!   --scale <smoke|default|paper>   size/trial preset (default: default)
//!   --seed <u64>                    base RNG seed (default: 0)
//!   --threads <N>                   worker threads (default: all cores)
//!   --markdown                      emit Markdown instead of plain text
//!   --list                          list experiment ids and exit
//!   --help                          show this help
//!
//! With no experiment ids, every registered experiment is run in order.
//! ```

use std::process::ExitCode;

use rumor_experiments::{all_experiment_ids, run_experiment, ExperimentConfig, Scale};

struct CliOptions {
    scale: Scale,
    seed: u64,
    threads: usize,
    markdown: bool,
    list: bool,
    experiments: Vec<String>,
}

fn usage() -> &'static str {
    "Usage: rumor-experiments [--scale smoke|default|paper] [--seed N] [--threads N] \
     [--markdown] [--list] [EXPERIMENT-ID ...]"
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions {
        scale: Scale::Default,
        seed: 0,
        threads: 0,
        markdown: false,
        list: false,
        experiments: Vec::new(),
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().ok_or("--scale requires a value")?;
                options.scale =
                    Scale::from_name(value).ok_or_else(|| format!("unknown scale {value:?}"))?;
            }
            "--seed" => {
                let value = iter.next().ok_or("--seed requires a value")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed {value:?}"))?;
            }
            "--threads" => {
                let value = iter.next().ok_or("--threads requires a value")?;
                options.threads = value
                    .parse()
                    .map_err(|_| format!("invalid thread count {value:?}"))?;
            }
            "--markdown" => options.markdown = true,
            "--list" => options.list = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => options.experiments.push(other.to_string()),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    if options.list {
        for id in all_experiment_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let config = ExperimentConfig::new(options.scale)
        .with_seed(options.seed)
        .with_threads(options.threads);

    let ids: Vec<String> = if options.experiments.is_empty() {
        all_experiment_ids()
            .into_iter()
            .map(str::to_string)
            .collect()
    } else {
        options.experiments.clone()
    };

    let mut failed = false;
    for id in &ids {
        match run_experiment(id, &config) {
            Some(report) => {
                if options.markdown {
                    println!("{}", report.to_markdown());
                } else {
                    println!("{}", report.to_plain_text());
                }
            }
            None => {
                eprintln!("unknown experiment id {id:?}; use --list to see the available ids");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
