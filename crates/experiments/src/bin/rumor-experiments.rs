//! Command-line experiment runner.
//!
//! ```text
//! Usage: rumor-experiments [OPTIONS] [EXPERIMENT-ID ...]
//!
//! Options:
//!   --scale <smoke|default|paper>   size/trial preset (default: default)
//!   --seed <u64>                    base RNG seed (default: 0)
//!   --threads <N>                   worker threads (default: all cores)
//!   --markdown                      emit Markdown instead of plain text
//!   --list                          list experiment ids and exit
//!   --help                          show this help
//!
//! With no experiment ids, every registered experiment is run in order.
//! ```
//!
//! A second mode backs the kill-and-resume integration test (and doubles as
//! a recovery harness for long interactive runs):
//!
//! ```text
//! Usage: rumor-experiments checkpoint-run --dir <DIR> [OPTIONS]
//!
//! Options:
//!   --n <N>              G(n, p) instance size (default: 100000)
//!   --seed <u64>         spec + topology seed (default: 0)
//!   --cadence <K>        checkpoint every K rounds (default: 2)
//!   --throttle-ms <T>    sleep T ms inside each checkpoint (default: 0)
//!   --max-rounds <R>     round cap (default: 1000000)
//!   --resume             continue from the newest valid checkpoint in DIR
//! ```
//!
//! Each checkpoint is written atomically into DIR and announced on stdout
//! as `ckpt <round>`; the final line is
//! `result rounds=<r> messages=<m> informed=<v> completed=<0|1>`. The
//! `RUMOR_KILL_AT_ROUND` environment variable hard-kills the process
//! (after persisting the snapshot) once that round is reached — the
//! fault-injection hook the test-suite drives from a child process.

use std::process::ExitCode;

use rumor_experiments::{all_experiment_ids, run_experiment, ExperimentConfig, FaultPlan, Scale};

struct CliOptions {
    scale: Scale,
    seed: u64,
    threads: usize,
    markdown: bool,
    list: bool,
    experiments: Vec<String>,
}

fn usage() -> &'static str {
    "Usage: rumor-experiments [--scale smoke|default|paper] [--seed N] [--threads N] \
     [--markdown] [--list] [EXPERIMENT-ID ...]"
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions {
        scale: Scale::Default,
        seed: 0,
        threads: 0,
        markdown: false,
        list: false,
        experiments: Vec::new(),
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().ok_or("--scale requires a value")?;
                options.scale =
                    Scale::from_name(value).ok_or_else(|| format!("unknown scale {value:?}"))?;
            }
            "--seed" => {
                let value = iter.next().ok_or("--seed requires a value")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed {value:?}"))?;
            }
            "--threads" => {
                let value = iter.next().ok_or("--threads requires a value")?;
                options.threads = value
                    .parse()
                    .map_err(|_| format!("invalid thread count {value:?}"))?;
            }
            "--markdown" => options.markdown = true,
            "--list" => options.list = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => options.experiments.push(other.to_string()),
        }
    }
    Ok(options)
}

/// The `checkpoint-run` subcommand: one resumable push broadcast on a
/// generated G(n, p) instance, checkpointing into `--dir`.
fn checkpoint_run(args: &[String]) -> Result<(), String> {
    use rumor_core::{
        resume_on, simulate_resumable, CheckpointCadence, ProtocolKind, ResumableRun, SimSnapshot,
        SimulationSpec,
    };
    use rumor_graphs::GeneratedGraph;

    let mut dir = None;
    let mut n = 100_000usize;
    let mut seed = 0u64;
    let mut cadence = 2u64;
    let mut throttle_ms = 0u64;
    let mut max_rounds = 1_000_000u64;
    let mut resume = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--dir" => dir = Some(std::path::PathBuf::from(value("--dir")?)),
            "--n" => n = value("--n")?.parse().map_err(|_| "invalid --n")?,
            "--seed" => seed = value("--seed")?.parse().map_err(|_| "invalid --seed")?,
            "--cadence" => {
                cadence = value("--cadence")?
                    .parse()
                    .map_err(|_| "invalid --cadence")?;
            }
            "--throttle-ms" => {
                throttle_ms = value("--throttle-ms")?
                    .parse()
                    .map_err(|_| "invalid --throttle-ms")?;
            }
            "--max-rounds" => {
                max_rounds = value("--max-rounds")?
                    .parse()
                    .map_err(|_| "invalid --max-rounds")?;
            }
            "--resume" => resume = true,
            other => return Err(format!("unknown checkpoint-run option {other}")),
        }
    }
    let dir = dir.ok_or("checkpoint-run requires --dir")?;
    let fault = FaultPlan::from_env();

    let graph = GeneratedGraph::gnp_with_mean_degree(n, 14.0, seed)
        .map_err(|e| format!("topology: {e}"))?;
    let spec = SimulationSpec::new(ProtocolKind::Push)
        .with_seed(seed)
        .with_max_rounds(max_rounds);
    let mut sink = |snapshot: &SimSnapshot| {
        snapshot
            .write_atomic(&dir)
            .unwrap_or_else(|e| panic!("checkpoint write failed: {e}"));
        println!("ckpt {}", snapshot.round());
        if fault
            .kill_at_round
            .is_some_and(|round| snapshot.round() >= round)
        {
            std::process::abort();
        }
        if throttle_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(throttle_ms));
        }
        true
    };
    let run = if resume {
        let snapshot = SimSnapshot::load_newest(&dir)
            .map_err(|e| format!("loading checkpoints: {e}"))?
            .ok_or("no valid checkpoint to resume from")?;
        println!("resumed {}", snapshot.round());
        resume_on(
            &graph,
            0,
            &spec,
            &snapshot,
            CheckpointCadence::every_rounds(cadence),
            &mut sink,
        )
        .map_err(|e| format!("resume rejected: {e}"))?
    } else {
        simulate_resumable(
            &graph,
            0,
            &spec,
            CheckpointCadence::every_rounds(cadence),
            &mut sink,
        )
    };
    let outcome = match run {
        ResumableRun::Finished(outcome) => outcome,
        ResumableRun::Suspended(_) => unreachable!("sink never suspends"),
    };
    println!(
        "result rounds={} messages={} informed={} completed={}",
        outcome.rounds,
        outcome.total_messages,
        outcome.informed_vertices,
        u8::from(outcome.completed)
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("checkpoint-run") {
        return match checkpoint_run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    if options.list {
        for id in all_experiment_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let config = ExperimentConfig::new(options.scale)
        .with_seed(options.seed)
        .with_threads(options.threads);

    let ids: Vec<String> = if options.experiments.is_empty() {
        all_experiment_ids()
            .into_iter()
            .map(str::to_string)
            .collect()
    } else {
        options.experiments.clone()
    };

    let mut failed = false;
    for id in &ids {
        match run_experiment(id, &config) {
            Some(report) => {
                if options.markdown {
                    println!("{}", report.to_markdown());
                } else {
                    println!("{}", report.to_plain_text());
                }
            }
            None => {
                eprintln!("unknown experiment id {id:?}; use --list to see the available ids");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
