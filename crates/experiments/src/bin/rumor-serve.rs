//! `rumor-serve` — the sweep server and its command-line client.
//!
//! ```text
//! rumor-serve serve  [--addr 127.0.0.1:0] [--state-dir DIR] [--workers N]
//!                    [--max-pending-trials N] [--max-pending-jobs N]
//!                    [--chunk-rounds N] [--throttle-ms N] [--grace-ms N]
//!                    [--idle-timeout-ms N] [--max-line-bytes N]
//!                    [--store-quota-bytes N]
//! rumor-serve submit --addr HOST:PORT [--client NAME] [--family F] [--n N]
//!                    [--degree D] [--exponent E] [--topo-seed S]
//!                    [--digest HEX] [--protocol P] [--lazy] [--trials T]
//!                    [--seed S] [--max-rounds R] [--deadline-ms D]
//!                    [--no-retry]
//! rumor-serve upload --addr HOST:PORT (--file GRAPH.rcsr | --edges EDGES --n N)
//!                    [--max-line-bytes N] [--no-retry]
//! rumor-serve status --addr HOST:PORT
//! rumor-serve drain  --addr HOST:PORT
//! rumor-serve ping   --addr HOST:PORT
//! ```
//!
//! `serve` prints `listening <addr>` once bound (tests parse it to find the
//! ephemeral port) and exits after a drain. `submit` prints the response
//! stream line by line and exits non-zero on typed failures. `upload` sends
//! a graph — either a canonical `.rcsr` encoding (`--file`) or a plain-text
//! edge list (`--edges`, one `u v` pair per line, with `--n` vertices) —
//! into the server's content store and prints the digest to pass to
//! `submit --digest`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use rumor_experiments::{
    AdmissionLimits, RetryPolicy, ServeClient, ServeConfig, Server, SubmitRequest, TopologySpec,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: rumor-serve <serve|submit|upload|status|drain|ping> [options]");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "serve" => cmd_serve(&args[1..]),
        "submit" => cmd_submit(&args[1..]),
        "upload" => cmd_upload(&args[1..]),
        "status" => cmd_status(&args[1..]),
        "drain" => cmd_drain(&args[1..]),
        "ping" => cmd_ping(&args[1..]),
        other => {
            eprintln!("unknown command {other:?}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value of `--flag value` out of an argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parsed<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    flag_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:0");
    let mut config = ServeConfig::new().with_workers(parsed(args, "--workers", 0usize));
    config.limits = AdmissionLimits {
        max_pending_trials: parsed(args, "--max-pending-trials", 4096usize),
        max_pending_jobs: parsed(args, "--max-pending-jobs", 64usize),
    };
    config.chunk_rounds = parsed(args, "--chunk-rounds", 64u64);
    config.throttle_ms = parsed(args, "--throttle-ms", 0u64);
    config.grace = Duration::from_millis(parsed(args, "--grace-ms", 30_000u64));
    config = config.with_idle_timeout(Duration::from_millis(parsed(
        args,
        "--idle-timeout-ms",
        30_000u64,
    )));
    if let Some(dir) = flag_value(args, "--state-dir") {
        config = config.with_state_dir(PathBuf::from(dir));
    }
    if let Some(bytes) = flag_value(args, "--max-line-bytes") {
        if let Ok(bytes) = bytes.parse() {
            config = config.with_max_line_bytes(bytes);
        }
    }
    if let Some(quota) = flag_value(args, "--store-quota-bytes") {
        if let Ok(quota) = quota.parse() {
            config = config.with_store_quota_bytes(quota);
        }
    }
    let server = match Server::bind(addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Tests and scripts parse this line to find the ephemeral port.
    println!("listening {}", server.local_addr());
    match server.run() {
        Ok(()) => {
            println!("drained");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn build_request(args: &[String]) -> SubmitRequest {
    // `--digest HEX` names an uploaded topology; the family flags describe
    // a server-generated one.
    let topology = match flag_value(args, "--digest")
        .and_then(|hex| u64::from_str_radix(hex.trim_start_matches("0x"), 16).ok())
    {
        Some(digest) => TopologySpec::uploaded(digest),
        None => TopologySpec::new(
            flag_value(args, "--family").unwrap_or("complete"),
            parsed(args, "--n", 64usize),
        )
        .with_degree(parsed(args, "--degree", 8.0f64))
        .with_exponent(parsed(args, "--exponent", 2.5f64))
        .with_topology_seed(parsed(args, "--topo-seed", 1u64)),
    };
    let mut request = SubmitRequest::new(
        flag_value(args, "--client").unwrap_or("cli"),
        topology,
        flag_value(args, "--protocol").unwrap_or("push"),
        parsed(args, "--trials", 8usize),
    );
    request.lazy = args.iter().any(|a| a == "--lazy");
    request.seed = parsed(args, "--seed", 1u64);
    request.max_rounds = parsed(args, "--max-rounds", 100_000u64);
    request.deadline_ms = flag_value(args, "--deadline-ms").and_then(|v| v.parse().ok());
    request
}

fn client(args: &[String]) -> Option<ServeClient> {
    let Some(addr) = flag_value(args, "--addr") else {
        eprintln!("--addr HOST:PORT is required");
        return None;
    };
    let mut client = ServeClient::new(addr);
    if args.iter().any(|a| a == "--no-retry") {
        client = client.with_retry(RetryPolicy::none());
    }
    Some(client)
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let Some(client) = client(args) else {
        return ExitCode::FAILURE;
    };
    let request = build_request(args);
    match client.submit(&request) {
        Ok(result) => {
            println!(
                "accepted job={} cached={} duplicate={} reused={}",
                result.job, result.cached, result.duplicate, result.reused
            );
            for line in &result.trial_lines {
                println!("{line}");
            }
            println!("done {}", result.taxonomy);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("submit failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Loads the graph bytes for `upload`: a canonical `.rcsr` file verbatim,
/// or a plain-text edge list (one `u v` pair per line) encoded canonically.
fn upload_bytes_from_args(args: &[String]) -> Result<Vec<u8>, String> {
    if let Some(path) = flag_value(args, "--file") {
        return std::fs::read(path).map_err(|e| format!("read {path}: {e}"));
    }
    if let Some(path) = flag_value(args, "--edges") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let parse = |tok: Option<&str>| tok.and_then(|t| t.parse::<usize>().ok());
            match (parse(parts.next()), parse(parts.next())) {
                (Some(u), Some(v)) => edges.push((u, v)),
                _ => return Err(format!("{path}:{}: expected \"u v\"", lineno + 1)),
            }
        }
        let n = flag_value(args, "--n")
            .and_then(|v| v.parse::<usize>().ok())
            .or_else(|| edges.iter().map(|&(u, v)| u.max(v) + 1).max())
            .ok_or_else(|| "--n is required for an empty edge list".to_string())?;
        let graph = rumor_graphs::Graph::from_edges(n, &edges).map_err(|e| e.to_string())?;
        return Ok(rumor_graphs::codec::encode_csr(&graph));
    }
    Err("upload needs --file GRAPH.rcsr or --edges EDGES".to_string())
}

fn cmd_upload(args: &[String]) -> ExitCode {
    let Some(mut client) = client(args) else {
        return ExitCode::FAILURE;
    };
    if let Some(bytes) = flag_value(args, "--max-line-bytes").and_then(|v| v.parse().ok()) {
        client = client.with_max_line_bytes(bytes);
    }
    let bytes = match upload_bytes_from_args(args) {
        Ok(bytes) => bytes,
        Err(message) => {
            eprintln!("upload failed: {message}");
            return ExitCode::FAILURE;
        }
    };
    match client.upload_bytes(&bytes) {
        Ok(report) => {
            println!(
                "uploaded digest={:016x} bytes={} chunks={} sent={} resumed_from={} reconnects={}",
                report.digest,
                report.bytes,
                report.chunks,
                report.chunks_sent,
                report.resumed_from,
                report.reconnects,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("upload failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_status(args: &[String]) -> ExitCode {
    let Some(client) = client(args) else {
        return ExitCode::FAILURE;
    };
    match client.status() {
        Ok(status) => {
            println!(
                "queue_depth={} active_jobs={} executed={} shed={} cache_hits={} \
                 duplicate_hits={} open_sessions={} sessions_opened={} resumes={} \
                 replayed_lines={} heartbeats={} protocol_errors={} idle_reaped={} \
                 graphs_stored={} store_bytes={} evictions={} partial_uploads={} \
                 failed_validations={}",
                status.queue_depth,
                status.active_jobs,
                status.executed,
                status.shed,
                status.cache_hits,
                status.duplicate_hits,
                status.open_sessions,
                status.sessions_opened,
                status.resumes,
                status.replayed_lines,
                status.heartbeats,
                status.protocol_errors,
                status.idle_reaped,
                status.graphs_stored,
                status.store_bytes,
                status.evictions,
                status.partial_uploads,
                status.failed_validations,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("status failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_drain(args: &[String]) -> ExitCode {
    let Some(client) = client(args) else {
        return ExitCode::FAILURE;
    };
    match client.drain() {
        Ok(()) => {
            println!("draining");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("drain failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_ping(args: &[String]) -> ExitCode {
    let Some(client) = client(args) else {
        return ExitCode::FAILURE;
    };
    match client.ping() {
        Ok(()) => {
            println!("pong");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ping failed: {e}");
            ExitCode::FAILURE
        }
    }
}
