//! # rumor-experiments
//!
//! The benchmark/experiment harness of the `rumor` workspace: one experiment
//! per figure panel, lemma, and theorem of *“How to Spread a Rumor: Call Your
//! Neighbors or Take a Walk?”* (PODC 2019), plus mechanism experiments
//! (bandwidth fairness, congestion/C-counters, push vs push-pull).
//!
//! Every experiment is a pure function
//! `fn run(&ExperimentConfig) -> ExperimentReport` registered in
//! [`experiments::REGISTRY`]; the `rumor-experiments` binary runs any subset
//! and renders the reports as text or Markdown.
//!
//! ```
//! use rumor_experiments::{all_experiment_ids, ExperimentConfig};
//!
//! // Every figure panel of the paper has a registered experiment.
//! let ids = all_experiment_ids();
//! assert!(ids.contains(&"fig1b-double-star"));
//! assert!(ids.contains(&"thm1-regular"));
//! // Reports can be produced at smoke scale in tests:
//! let cfg = ExperimentConfig::smoke();
//! assert_eq!(cfg.scale.name(), "smoke");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod config;
pub mod experiments;
mod report;
mod runner;
pub mod serve;
mod sweep;

pub use config::{ExperimentConfig, Scale};
pub use experiments::{all_ids as all_experiment_ids, run_by_id as run_experiment, REGISTRY};
pub use report::ExperimentReport;
pub use runner::{
    broadcast_times, run_trials, run_trials_guarded, FaultPlan, GuardedSweep, StopCause,
    TrialOutcome, TrialPolicy, TrialTaxonomy,
};
pub use serve::{
    AdmissionLimits, ClientError, FaultKind, FaultNet, FaultReport, FaultSpec, JobResult,
    RetryPolicy, ServeClient, ServeConfig, ServeStats, Server, ServerHandle, ServerStatus,
    SessionStats, SubmitRequest, TopologySpec,
};
pub use sweep::{ProtocolSetup, ScalingSweep, SweepMeasurement, SweepPoint, SweepResult};
