//! Admission control and load shedding for the serve scheduler.
//!
//! Admission is decided *before* a job is enqueued, against two bounds: the
//! number of queued-but-unfinished trials and the number of open jobs. Past
//! either bound the submission is rejected with a typed
//! [`Verdict::Overloaded`] carrying a retry hint, so an overloaded server
//! degrades into fast, explicit rejections instead of unbounded queues and
//! hung connections. Duplicates of in-flight or cached jobs bypass
//! admission entirely — they cost no new work.

/// Queue bounds for admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionLimits {
    /// Maximum trials queued or running across all jobs.
    pub max_pending_trials: usize,
    /// Maximum simultaneously open (unfinished) jobs.
    pub max_pending_jobs: usize,
}

impl AdmissionLimits {
    /// Defaults sized for a small shared box: 4096 pending trials across at
    /// most 64 open jobs.
    pub fn new() -> Self {
        AdmissionLimits {
            max_pending_trials: 4096,
            max_pending_jobs: 64,
        }
    }
}

impl Default for AdmissionLimits {
    fn default() -> Self {
        Self::new()
    }
}

/// The admission decision for one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Enqueue the job.
    Admit,
    /// Shed it: the queue is full. `retry_after_ms` scales with how far
    /// over budget the queue is, so clients back off harder the more the
    /// server is drowning.
    Overloaded {
        /// Suggested client-side wait before retrying.
        retry_after_ms: u64,
    },
}

/// Decides admission for a job of `job_trials` trials given the current
/// queue state.
pub fn admit(
    limits: &AdmissionLimits,
    pending_trials: usize,
    pending_jobs: usize,
    job_trials: usize,
) -> Verdict {
    let trials_after = pending_trials.saturating_add(job_trials);
    if trials_after <= limits.max_pending_trials && pending_jobs < limits.max_pending_jobs {
        return Verdict::Admit;
    }
    // Retry hint: 100 ms per unit of overload factor, clamped to [100ms, 10s].
    let over = if limits.max_pending_trials > 0 {
        trials_after as f64 / limits.max_pending_trials as f64
    } else {
        10.0
    };
    let retry_after_ms = ((over * 100.0) as u64).clamp(100, 10_000);
    Verdict::Overloaded { retry_after_ms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_under_both_bounds() {
        let limits = AdmissionLimits {
            max_pending_trials: 10,
            max_pending_jobs: 2,
        };
        assert_eq!(admit(&limits, 0, 0, 10), Verdict::Admit);
        assert_eq!(admit(&limits, 4, 1, 6), Verdict::Admit);
    }

    #[test]
    fn sheds_past_either_bound_with_scaled_hint() {
        let limits = AdmissionLimits {
            max_pending_trials: 10,
            max_pending_jobs: 2,
        };
        // Trial bound.
        let Verdict::Overloaded { retry_after_ms } = admit(&limits, 5, 0, 6) else {
            panic!("expected shed");
        };
        assert!(retry_after_ms >= 100);
        // Job bound.
        assert!(matches!(
            admit(&limits, 0, 2, 1),
            Verdict::Overloaded { .. }
        ));
        // Deeper overload ⇒ longer hint.
        let Verdict::Overloaded { retry_after_ms: a } = admit(&limits, 10, 0, 2) else {
            panic!()
        };
        let Verdict::Overloaded { retry_after_ms: b } = admit(&limits, 10, 0, 200) else {
            panic!()
        };
        assert!(b > a, "hint must scale with overload: {a} vs {b}");
        // And the hint is bounded.
        let Verdict::Overloaded { retry_after_ms } = admit(&limits, usize::MAX - 1, 0, 1) else {
            panic!()
        };
        assert_eq!(retry_after_ms, 10_000);
    }
}
