//! The digest-addressed topology content store behind the serve stack's
//! remote upload verbs.
//!
//! Graphs arrive as chunked canonical CSR encodings
//! ([`rumor_graphs::codec`]) and are addressed by the FNV-1a-64 digest of
//! those bytes. The store owns the whole crash-safety story:
//!
//! * **Per-chunk CRC-32** is checked before a chunk is applied; chunks are
//!   applied strictly in order, so the ack'd high-water mark fully
//!   describes resume state (mirroring the result stream's
//!   resume-by-suffix contract).
//! * **Partial uploads persist** under `<state-dir>/store/` as a fixed
//!   header plus the received payload prefix. A server killed mid-upload
//!   recovers every fully appended chunk on restart — a torn tail is
//!   truncated back to the last chunk boundary — so a reconnecting client
//!   retransmits only the unacked suffix.
//! * **Commit verifies everything**: received length, whole-encoding
//!   digest, and full structural validation via
//!   [`rumor_graphs::codec::decode_csr`] (sorted neighbor lists, symmetric
//!   edges, no self-loops, consistent offsets) plus the declared `n`/`m`.
//!   Publication is atomic (`tmp` + rename); a failed commit deletes the
//!   partial and answers a typed [`UploadError`], never a panic.
//! * **LRU byte quota**: committed encodings beyond the configured quota
//!   are evicted least-recently-used — but never while a pending or
//!   running job holds a pin. A submission naming an evicted digest gets
//!   [`UploadError::UnknownTopology`], which the wire layer renders as the
//!   typed `unknown_topology` line that tells clients to re-upload.
//!
//! Without a state dir the store runs fully in memory with the same
//! semantics (minus crash persistence), which keeps in-process tests and
//! ephemeral servers cheap.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use rumor_graphs::{codec, Graph};

use super::protocol::{crc32, fnv1a64, UploadManifest};
use super::sync::lock_recover;

/// Magic bytes opening a persisted partial-upload file.
const PARTIAL_MAGIC: &[u8; 4] = b"RUPH";
/// Version of the partial-upload header layout.
const PARTIAL_VERSION: u32 = 1;
/// Header: magic + version + digest + bytes + chunk_bytes + n + m.
const PARTIAL_HEADER_BYTES: usize = 4 + 4 + 8 + 8 + 8 + 8 + 8;

/// A typed upload failure. Every store operation that can fail returns one
/// of these; nothing in the upload path panics on untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UploadError {
    /// A chunk or commit referenced a digest with no open upload.
    UnknownUpload {
        /// The digest named by the request.
        digest: u64,
    },
    /// A submission referenced a digest the store does not hold (never
    /// uploaded, or evicted by the byte quota). Rendered as the wire's
    /// `unknown_topology` line.
    UnknownTopology {
        /// The digest named by the submission.
        digest: u64,
    },
    /// `upload_begin` re-opened a digest with a different geometry than
    /// the existing partial (bytes, chunk size, or declared dimensions).
    ManifestMismatch {
        /// The digest being re-opened.
        digest: u64,
    },
    /// A chunk arrived with an index past the ack'd high-water mark.
    ChunkOutOfOrder {
        /// The next index the store will accept.
        expected: u64,
        /// The index that arrived.
        got: u64,
    },
    /// A chunk's payload length disagreed with the manifest geometry.
    ChunkSizeMismatch {
        /// The chunk index.
        index: u64,
        /// Length the manifest prescribes for that index.
        expected: usize,
        /// Length that arrived.
        got: usize,
    },
    /// A chunk's CRC-32 did not match its payload.
    CrcMismatch {
        /// The chunk index.
        index: u64,
    },
    /// Commit before every chunk was transferred.
    Incomplete {
        /// Chunks ack'd so far.
        acked: u64,
        /// Chunks the manifest requires.
        chunks: u64,
    },
    /// The assembled bytes did not hash to the declared digest (corrupt
    /// chunk on disk, or a client-side encoding bug).
    DigestMismatch {
        /// The digest the upload was opened under.
        declared: u64,
        /// The digest of the bytes actually received.
        computed: u64,
    },
    /// The assembled bytes failed structural validation (decode error,
    /// asymmetric edges, self-loops, …) or disagreed with the declared
    /// `n`/`m`.
    Invalid {
        /// Human-readable cause (the typed [`rumor_graphs::GraphError`]'s
        /// rendering, or the dimension mismatch).
        reason: String,
    },
    /// The upload alone exceeds the configured store quota, so it could
    /// never be committed.
    QuotaExceeded {
        /// The upload's total bytes.
        bytes: u64,
        /// The configured quota.
        quota: u64,
    },
    /// Filesystem failure underneath the store.
    Io {
        /// The failed operation and its OS error.
        reason: String,
    },
}

impl fmt::Display for UploadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UploadError::UnknownUpload { digest } => {
                write!(f, "no open upload for digest {digest:016x}")
            }
            UploadError::UnknownTopology { digest } => {
                write!(f, "no stored topology for digest {digest:016x}")
            }
            UploadError::ManifestMismatch { digest } => write!(
                f,
                "upload_begin for {digest:016x} disagrees with the existing partial's geometry"
            ),
            UploadError::ChunkOutOfOrder { expected, got } => {
                write!(
                    f,
                    "chunk {got} out of order (next acceptable is {expected})"
                )
            }
            UploadError::ChunkSizeMismatch {
                index,
                expected,
                got,
            } => write!(
                f,
                "chunk {index} carries {got} bytes, manifest prescribes {expected}"
            ),
            UploadError::CrcMismatch { index } => {
                write!(f, "crc mismatch on chunk {index}")
            }
            UploadError::Incomplete { acked, chunks } => {
                write!(f, "commit with {acked}/{chunks} chunks transferred")
            }
            UploadError::DigestMismatch { declared, computed } => write!(
                f,
                "content hashes to {computed:016x}, upload was declared as {declared:016x}"
            ),
            UploadError::Invalid { reason } => write!(f, "upload failed validation: {reason}"),
            UploadError::QuotaExceeded { bytes, quota } => {
                write!(
                    f,
                    "{bytes}-byte upload exceeds the {quota}-byte store quota"
                )
            }
            UploadError::Io { reason } => write!(f, "store i/o failure: {reason}"),
        }
    }
}

impl std::error::Error for UploadError {}

/// An upload's state as answered to `upload_status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UploadState {
    /// Verified, validated, and published; resolvable by submissions.
    Committed {
        /// Canonical encoding length.
        bytes: u64,
    },
    /// Open with `acked` of `chunks` chunks durably applied.
    Partial {
        /// High-water mark: chunks `0..acked` are applied.
        acked: u64,
        /// Total chunks the manifest requires.
        chunks: u64,
    },
    /// Neither committed nor open.
    Unknown,
}

/// A snapshot of the store's observability counters (the content-store
/// section of the `status` verb).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreCounters {
    /// Committed graphs currently held.
    pub graphs_stored: usize,
    /// Bytes of committed encodings currently held.
    pub store_bytes: u64,
    /// Lifetime quota evictions.
    pub evictions: u64,
    /// Partial uploads currently open.
    pub partial_uploads: usize,
    /// Lifetime commit-time validation failures.
    pub failed_validations: u64,
}

struct Partial {
    manifest: UploadManifest,
    /// Chunks durably applied (chunks arrive strictly in order).
    acked: u64,
    /// In-memory payload when the store has no backing directory.
    buffer: Vec<u8>,
    /// Backing file for the payload when persistent.
    path: Option<PathBuf>,
}

struct Committed {
    bytes: u64,
    /// In-memory encoding when the store has no backing directory.
    buffer: Option<Vec<u8>>,
    /// Jobs currently referencing this graph; quota eviction skips any
    /// entry with `pins > 0`.
    pins: usize,
    /// LRU clock value of the last touch.
    last_used: u64,
}

struct StoreState {
    partials: HashMap<u64, Partial>,
    committed: HashMap<u64, Committed>,
    clock: u64,
    evictions: u64,
    failed_validations: u64,
}

/// The digest-addressed content store (see the module docs for the full
/// contract).
pub struct ContentStore {
    dir: Option<PathBuf>,
    quota_bytes: Option<u64>,
    state: Mutex<StoreState>,
}

impl fmt::Debug for ContentStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContentStore")
            .field("dir", &self.dir)
            .field("quota_bytes", &self.quota_bytes)
            .finish_non_exhaustive()
    }
}

fn io_err(op: &str, err: std::io::Error) -> UploadError {
    UploadError::Io {
        reason: format!("{op}: {err}"),
    }
}

fn committed_path(dir: &Path, digest: u64) -> PathBuf {
    dir.join(format!("graph-{digest:016x}.rcsr"))
}

fn partial_path(dir: &Path, digest: u64) -> PathBuf {
    dir.join(format!("partial-{digest:016x}.rup"))
}

fn partial_header(manifest: &UploadManifest) -> [u8; PARTIAL_HEADER_BYTES] {
    let mut header = [0u8; PARTIAL_HEADER_BYTES];
    header[0..4].copy_from_slice(PARTIAL_MAGIC);
    header[4..8].copy_from_slice(&PARTIAL_VERSION.to_le_bytes());
    header[8..16].copy_from_slice(&manifest.digest.to_le_bytes());
    header[16..24].copy_from_slice(&manifest.bytes.to_le_bytes());
    header[24..32].copy_from_slice(&manifest.chunk_bytes.to_le_bytes());
    header[32..40].copy_from_slice(&manifest.n.to_le_bytes());
    header[40..48].copy_from_slice(&manifest.m.to_le_bytes());
    header
}

fn parse_partial_header(bytes: &[u8]) -> Option<UploadManifest> {
    if bytes.len() < PARTIAL_HEADER_BYTES
        || &bytes[0..4] != PARTIAL_MAGIC
        || u32::from_le_bytes(bytes[4..8].try_into().ok()?) != PARTIAL_VERSION
    {
        return None;
    }
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("header bounds"));
    Some(UploadManifest {
        digest: word(8),
        bytes: word(16),
        chunk_bytes: word(24),
        n: word(32),
        m: word(40),
    })
}

impl ContentStore {
    /// Opens (or creates) a store. With a directory, previously committed
    /// graphs and partial uploads are recovered from disk: partials with a
    /// torn tail are truncated back to the last whole-chunk boundary, and
    /// unreadable files are discarded rather than trusted.
    pub fn open(dir: Option<PathBuf>, quota_bytes: Option<u64>) -> Result<Self, UploadError> {
        let mut state = StoreState {
            partials: HashMap::new(),
            committed: HashMap::new(),
            clock: 0,
            evictions: 0,
            failed_validations: 0,
        };
        if let Some(dir) = &dir {
            fs::create_dir_all(dir).map_err(|e| io_err("create store dir", e))?;
            let entries = fs::read_dir(dir).map_err(|e| io_err("scan store dir", e))?;
            for entry in entries.flatten() {
                let path = entry.path();
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(hex) = name
                    .strip_prefix("graph-")
                    .and_then(|rest| rest.strip_suffix(".rcsr"))
                {
                    if let (Ok(digest), Ok(meta)) = (u64::from_str_radix(hex, 16), entry.metadata())
                    {
                        state.clock += 1;
                        state.committed.insert(
                            digest,
                            Committed {
                                bytes: meta.len(),
                                buffer: None,
                                pins: 0,
                                last_used: state.clock,
                            },
                        );
                    }
                } else if let Some(hex) = name
                    .strip_prefix("partial-")
                    .and_then(|rest| rest.strip_suffix(".rup"))
                {
                    let Ok(digest) = u64::from_str_radix(hex, 16) else {
                        continue;
                    };
                    match Self::recover_partial(&path, digest) {
                        Some(partial) => {
                            state.partials.insert(digest, partial);
                        }
                        None => {
                            let _ = fs::remove_file(&path);
                        }
                    }
                } else if name.ends_with(".tmp") {
                    // A commit that died between write and rename.
                    let _ = fs::remove_file(&path);
                }
            }
        }
        Ok(ContentStore {
            dir,
            quota_bytes,
            state: Mutex::new(state),
        })
    }

    fn recover_partial(path: &Path, digest: u64) -> Option<Partial> {
        let mut bytes = Vec::new();
        fs::File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
        let manifest = parse_partial_header(&bytes)?;
        if manifest.digest != digest || manifest.bytes == 0 || manifest.chunk_bytes == 0 {
            return None;
        }
        let received = (bytes.len() - PARTIAL_HEADER_BYTES) as u64;
        // Truncate a torn tail (a chunk append interrupted by a crash) back
        // to the last whole-chunk boundary; those chunks were never ack'd.
        let acked = (received / manifest.chunk_bytes).min(manifest.chunks());
        let full = if acked == manifest.chunks() {
            // All chunks landed; the short last chunk still counts.
            manifest.bytes
        } else {
            acked * manifest.chunk_bytes
        };
        if full < received {
            let file = fs::OpenOptions::new().write(true).open(path).ok()?;
            file.set_len(PARTIAL_HEADER_BYTES as u64 + full).ok()?;
        }
        Some(Partial {
            manifest,
            acked,
            buffer: Vec::new(),
            path: Some(path.to_path_buf()),
        })
    }

    /// Opens an upload, or re-opens one to resume it. Answers the current
    /// high-water mark; a digest that is already committed answers
    /// `Committed` so the client can skip the transfer entirely.
    pub fn begin(&self, manifest: UploadManifest) -> Result<UploadState, UploadError> {
        if manifest.bytes == 0 || manifest.chunk_bytes == 0 {
            return Err(UploadError::Invalid {
                reason: "upload must carry at least one byte per chunk".to_string(),
            });
        }
        if let Some(quota) = self.quota_bytes {
            if manifest.bytes > quota {
                return Err(UploadError::QuotaExceeded {
                    bytes: manifest.bytes,
                    quota,
                });
            }
        }
        let mut state = lock_recover(&self.state);
        if let Some(entry) = state.committed.get(&manifest.digest) {
            return Ok(UploadState::Committed { bytes: entry.bytes });
        }
        if let Some(partial) = state.partials.get(&manifest.digest) {
            if partial.manifest != manifest {
                return Err(UploadError::ManifestMismatch {
                    digest: manifest.digest,
                });
            }
            return Ok(UploadState::Partial {
                acked: partial.acked,
                chunks: manifest.chunks(),
            });
        }
        let path = match &self.dir {
            Some(dir) => {
                let path = partial_path(dir, manifest.digest);
                let mut file = fs::File::create(&path).map_err(|e| io_err("create partial", e))?;
                file.write_all(&partial_header(&manifest))
                    .and_then(|()| file.flush())
                    .map_err(|e| io_err("write partial header", e))?;
                Some(path)
            }
            None => None,
        };
        state.partials.insert(
            manifest.digest,
            Partial {
                manifest,
                acked: 0,
                buffer: Vec::new(),
                path,
            },
        );
        Ok(UploadState::Partial {
            acked: 0,
            chunks: manifest.chunks(),
        })
    }

    /// Applies one chunk. Strictly in order: a replay of an already-acked
    /// index re-acks idempotently (reconnect overlap), a future index is a
    /// typed error. Returns the new high-water mark.
    pub fn chunk(
        &self,
        digest: u64,
        index: u64,
        payload: &[u8],
        crc: u32,
    ) -> Result<u64, UploadError> {
        let mut state = lock_recover(&self.state);
        let partial = state
            .partials
            .get_mut(&digest)
            .ok_or(UploadError::UnknownUpload { digest })?;
        if index < partial.acked {
            return Ok(partial.acked);
        }
        if index > partial.acked || index >= partial.manifest.chunks() {
            return Err(UploadError::ChunkOutOfOrder {
                expected: partial.acked,
                got: index,
            });
        }
        let expected = partial.manifest.chunk_len(index);
        if payload.len() != expected {
            return Err(UploadError::ChunkSizeMismatch {
                index,
                expected,
                got: payload.len(),
            });
        }
        if crc32(payload) != crc {
            return Err(UploadError::CrcMismatch { index });
        }
        match &partial.path {
            Some(path) => {
                let mut file = fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| io_err("open partial", e))?;
                file.write_all(payload)
                    .and_then(|()| file.flush())
                    .map_err(|e| io_err("append chunk", e))?;
            }
            None => partial.buffer.extend_from_slice(payload),
        }
        partial.acked += 1;
        Ok(partial.acked)
    }

    /// Verifies and atomically publishes a fully transferred upload.
    /// On any failure the partial is discarded (the client re-uploads from
    /// scratch) and the failure is counted; on success the entry joins the
    /// LRU and excess unpinned entries are evicted to honor the quota.
    pub fn commit(&self, digest: u64) -> Result<u64, UploadError> {
        let mut state = lock_recover(&self.state);
        if let Some(entry) = state.committed.get(&digest) {
            return Ok(entry.bytes);
        }
        let partial = state
            .partials
            .get(&digest)
            .ok_or(UploadError::UnknownUpload { digest })?;
        let manifest = partial.manifest;
        if partial.acked < manifest.chunks() {
            return Err(UploadError::Incomplete {
                acked: partial.acked,
                chunks: manifest.chunks(),
            });
        }
        // Read back the assembled bytes (from disk when persistent — that
        // is the copy that must be correct) and verify everything.
        let verdict = (|| -> Result<Vec<u8>, UploadError> {
            let bytes = match &partial.path {
                Some(path) => {
                    let mut raw = Vec::new();
                    fs::File::open(path)
                        .and_then(|mut f| f.read_to_end(&mut raw))
                        .map_err(|e| io_err("read partial", e))?;
                    if raw.len() < PARTIAL_HEADER_BYTES {
                        return Err(UploadError::Invalid {
                            reason: "partial truncated below its header".to_string(),
                        });
                    }
                    raw.split_off(PARTIAL_HEADER_BYTES)
                }
                None => partial.buffer.clone(),
            };
            if bytes.len() as u64 != manifest.bytes {
                return Err(UploadError::Invalid {
                    reason: format!(
                        "assembled {} bytes, manifest declares {}",
                        bytes.len(),
                        manifest.bytes
                    ),
                });
            }
            let computed = fnv1a64(&bytes);
            if computed != digest {
                return Err(UploadError::DigestMismatch {
                    declared: digest,
                    computed,
                });
            }
            let graph = codec::decode_csr(&bytes).map_err(|e| UploadError::Invalid {
                reason: e.to_string(),
            })?;
            if graph.num_vertices() as u64 != manifest.n || graph.num_edges() as u64 != manifest.m {
                return Err(UploadError::Invalid {
                    reason: format!(
                        "decoded graph is n={}, m={}; manifest declares n={}, m={}",
                        graph.num_vertices(),
                        graph.num_edges(),
                        manifest.n,
                        manifest.m
                    ),
                });
            }
            Ok(bytes)
        })();

        let bytes = match verdict {
            Ok(bytes) => bytes,
            Err(err) => {
                // A failed commit is unrecoverable for this partial: drop
                // it so the client's re-upload starts clean.
                let partial = state.partials.remove(&digest).expect("checked above");
                if let Some(path) = partial.path {
                    let _ = fs::remove_file(path);
                }
                if !matches!(err, UploadError::Io { .. }) {
                    state.failed_validations += 1;
                }
                return Err(err);
            }
        };

        // Publish atomically, then retire the partial.
        let buffer = match &self.dir {
            Some(dir) => {
                let tmp = dir.join(format!("graph-{digest:016x}.tmp"));
                let target = committed_path(dir, digest);
                fs::write(&tmp, &bytes).map_err(|e| io_err("write committed tmp", e))?;
                fs::rename(&tmp, &target).map_err(|e| io_err("publish committed", e))?;
                None
            }
            None => Some(bytes),
        };
        let partial = state.partials.remove(&digest).expect("checked above");
        if let Some(path) = partial.path {
            let _ = fs::remove_file(path);
        }
        state.clock += 1;
        let last_used = state.clock;
        state.committed.insert(
            digest,
            Committed {
                bytes: manifest.bytes,
                buffer,
                pins: 0,
                last_used,
            },
        );
        self.enforce_quota(&mut state, Some(digest));
        Ok(manifest.bytes)
    }

    /// Evicts least-recently-used unpinned entries until the committed
    /// footprint fits the quota. Pinned entries — and the entry named by
    /// `protect` (a commit must not evict the graph it just acked) — are
    /// never evicted, so the footprint may legitimately exceed the quota
    /// while jobs are running.
    fn enforce_quota(&self, state: &mut StoreState, protect: Option<u64>) {
        let Some(quota) = self.quota_bytes else {
            return;
        };
        loop {
            let total: u64 = state.committed.values().map(|c| c.bytes).sum();
            if total <= quota {
                return;
            }
            let victim = state
                .committed
                .iter()
                .filter(|(digest, c)| c.pins == 0 && protect != Some(**digest))
                .min_by_key(|(_, c)| c.last_used)
                .map(|(digest, _)| *digest);
            let Some(victim) = victim else {
                return; // everything over quota is pinned
            };
            state.committed.remove(&victim);
            state.evictions += 1;
            if let Some(dir) = &self.dir {
                let _ = fs::remove_file(committed_path(dir, victim));
            }
        }
    }

    /// An upload's state (the `upload_status` answer).
    pub fn status(&self, digest: u64) -> UploadState {
        let state = lock_recover(&self.state);
        if let Some(entry) = state.committed.get(&digest) {
            return UploadState::Committed { bytes: entry.bytes };
        }
        match state.partials.get(&digest) {
            Some(partial) => UploadState::Partial {
                acked: partial.acked,
                chunks: partial.manifest.chunks(),
            },
            None => UploadState::Unknown,
        }
    }

    /// Resolves a committed digest into a validated [`Graph`] and pins the
    /// entry against eviction (resolve-and-pin is atomic under the store
    /// lock, so an eviction can never race a submission that just resolved).
    /// Callers release the pin with [`ContentStore::unpin`] when the job
    /// leaves the pending/running set. The stored bytes are re-hashed and
    /// re-validated on every resolve, so on-disk corruption after commit
    /// still answers typed.
    pub fn resolve_pinned(&self, digest: u64) -> Result<Graph, UploadError> {
        let mut state = lock_recover(&self.state);
        let entry = state
            .committed
            .get(&digest)
            .ok_or(UploadError::UnknownTopology { digest })?;
        let bytes = match (&entry.buffer, &self.dir) {
            (Some(buffer), _) => buffer.clone(),
            (None, Some(dir)) => {
                let mut raw = Vec::new();
                match fs::File::open(committed_path(dir, digest))
                    .and_then(|mut f| f.read_to_end(&mut raw))
                {
                    Ok(_) => raw,
                    Err(err) => {
                        // The file vanished or is unreadable underneath us:
                        // forget the entry and tell the client to re-upload.
                        state.committed.remove(&digest);
                        let _ = err;
                        return Err(UploadError::UnknownTopology { digest });
                    }
                }
            }
            (None, None) => return Err(UploadError::UnknownTopology { digest }),
        };
        let graph = (|| -> Result<Graph, UploadError> {
            if fnv1a64(&bytes) != digest {
                return Err(UploadError::DigestMismatch {
                    declared: digest,
                    computed: fnv1a64(&bytes),
                });
            }
            codec::decode_csr(&bytes).map_err(|e| UploadError::Invalid {
                reason: e.to_string(),
            })
        })();
        match graph {
            Ok(graph) => {
                state.clock += 1;
                let clock = state.clock;
                let entry = state.committed.get_mut(&digest).expect("present above");
                entry.pins += 1;
                entry.last_used = clock;
                Ok(graph)
            }
            Err(err) => {
                // Corrupt at rest: drop the entry so a re-upload can heal it.
                state.committed.remove(&digest);
                state.failed_validations += 1;
                if let Some(dir) = &self.dir {
                    let _ = fs::remove_file(committed_path(dir, digest));
                }
                Err(err)
            }
        }
    }

    /// Releases one pin taken by [`ContentStore::resolve_pinned`], then
    /// re-applies the quota (the entry may have been keeping the store over
    /// budget).
    pub fn unpin(&self, digest: u64) {
        let mut state = lock_recover(&self.state);
        if let Some(entry) = state.committed.get_mut(&digest) {
            entry.pins = entry.pins.saturating_sub(1);
        }
        self.enforce_quota(&mut state, None);
    }

    /// Current pin count for a digest (observability and tests).
    pub fn pins(&self, digest: u64) -> usize {
        let state = lock_recover(&self.state);
        state.committed.get(&digest).map_or(0, |c| c.pins)
    }

    /// The store's observability counters.
    pub fn counters(&self) -> StoreCounters {
        let state = lock_recover(&self.state);
        StoreCounters {
            graphs_stored: state.committed.len(),
            store_bytes: state.committed.values().map(|c| c.bytes).sum(),
            evictions: state.evictions,
            partial_uploads: state.partials.len(),
            failed_validations: state.failed_validations,
        }
    }
}

/// Builds the [`UploadManifest`] for a canonical encoding under a given
/// line bound: digest, dimensions (decoded from the header), and the chunk
/// geometry every transport then shares.
pub fn manifest_for(bytes: &[u8], max_line_bytes: usize) -> Result<UploadManifest, UploadError> {
    if bytes.len() < codec::CSR_HEADER_BYTES {
        return Err(UploadError::Invalid {
            reason: "encoding shorter than the CSR header".to_string(),
        });
    }
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("header bounds"));
    Ok(UploadManifest {
        digest: fnv1a64(bytes),
        n: word(8),
        m: word(16),
        bytes: bytes.len() as u64,
        chunk_bytes: super::protocol::chunk_payload_bytes(max_line_bytes) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::protocol::MAX_LINE_BYTES;
    use rumor_graphs::generators;

    fn encoding(n: usize) -> Vec<u8> {
        codec::encode_csr(&generators::complete(n).expect("complete"))
    }

    fn upload(store: &ContentStore, bytes: &[u8], chunk_bytes: u64) -> u64 {
        let mut manifest = manifest_for(bytes, MAX_LINE_BYTES).expect("manifest");
        manifest.chunk_bytes = chunk_bytes;
        assert!(matches!(
            store.begin(manifest).expect("begin"),
            UploadState::Partial { acked: 0, .. }
        ));
        for index in 0..manifest.chunks() {
            let start = (index * chunk_bytes) as usize;
            let end = (start + chunk_bytes as usize).min(bytes.len());
            let payload = &bytes[start..end];
            let acked = store
                .chunk(manifest.digest, index, payload, crc32(payload))
                .expect("chunk");
            assert_eq!(acked, index + 1);
        }
        assert_eq!(
            store.commit(manifest.digest).expect("commit"),
            bytes.len() as u64
        );
        manifest.digest
    }

    #[test]
    fn in_memory_upload_commits_and_resolves() {
        let store = ContentStore::open(None, None).expect("open");
        let bytes = encoding(12);
        let digest = upload(&store, &bytes, 64);
        assert_eq!(
            store.status(digest),
            UploadState::Committed {
                bytes: bytes.len() as u64
            }
        );
        let graph = store.resolve_pinned(digest).expect("resolve");
        assert_eq!(graph.num_vertices(), 12);
        assert_eq!(store.pins(digest), 1);
        store.unpin(digest);
        assert_eq!(store.pins(digest), 0);
        let counters = store.counters();
        assert_eq!(counters.graphs_stored, 1);
        assert_eq!(counters.store_bytes, bytes.len() as u64);
        assert_eq!(counters.partial_uploads, 0);
    }

    #[test]
    fn chunk_protocol_is_idempotent_and_ordered() {
        let store = ContentStore::open(None, None).expect("open");
        let bytes = encoding(10);
        let mut manifest = manifest_for(&bytes, MAX_LINE_BYTES).expect("manifest");
        manifest.chunk_bytes = 50;
        store.begin(manifest).expect("begin");
        let first = &bytes[..50];
        assert_eq!(
            store
                .chunk(manifest.digest, 0, first, crc32(first))
                .unwrap(),
            1
        );
        // Replay re-acks without advancing.
        assert_eq!(
            store
                .chunk(manifest.digest, 0, first, crc32(first))
                .unwrap(),
            1
        );
        // Future index is typed.
        assert!(matches!(
            store.chunk(manifest.digest, 2, first, crc32(first)),
            Err(UploadError::ChunkOutOfOrder {
                expected: 1,
                got: 2
            })
        ));
        // Wrong CRC is typed and does not advance.
        let second = &bytes[50..100];
        assert!(matches!(
            store.chunk(manifest.digest, 1, second, crc32(second) ^ 1),
            Err(UploadError::CrcMismatch { index: 1 })
        ));
        // Early commit is typed.
        assert!(matches!(
            store.commit(manifest.digest),
            Err(UploadError::Incomplete { .. })
        ));
        // Unknown digests are typed everywhere.
        assert!(matches!(
            store.chunk(0xdead, 0, first, crc32(first)),
            Err(UploadError::UnknownUpload { .. })
        ));
        assert!(matches!(
            store.resolve_pinned(0xdead),
            Err(UploadError::UnknownTopology { .. })
        ));
    }

    #[test]
    fn commit_rejects_digest_mismatch_and_garbage() {
        let store = ContentStore::open(None, None).expect("open");
        let bytes = encoding(8);
        // Declare the right geometry but feed different bytes: digest check
        // fires before any decode.
        let mut manifest = manifest_for(&bytes, MAX_LINE_BYTES).expect("manifest");
        manifest.chunk_bytes = bytes.len() as u64;
        store.begin(manifest).expect("begin");
        let mut wrong = bytes.clone();
        wrong[40] ^= 0xff;
        store
            .chunk(manifest.digest, 0, &wrong, crc32(&wrong))
            .expect("chunk applies; corruption surfaces at commit");
        assert!(matches!(
            store.commit(manifest.digest),
            Err(UploadError::DigestMismatch { .. })
        ));
        // The failed partial is gone; a fresh upload succeeds.
        assert_eq!(store.status(manifest.digest), UploadState::Unknown);
        assert_eq!(store.counters().failed_validations, 1);
        upload(&store, &bytes, bytes.len() as u64);
    }

    #[test]
    fn quota_evicts_lru_but_never_pinned() {
        // Sizes: complete(6) = 172 bytes, star(5) = 92, cycle(9) = 136; a
        // 300-byte quota holds the first two and overflows on the third.
        let store = ContentStore::open(None, Some(300)).expect("open");
        let a = upload(&store, &encoding(6), 64);
        let b = upload(
            &store,
            &codec::encode_csr(&generators::star(5).unwrap()),
            64,
        );
        let pinned = store.resolve_pinned(a).expect("pin a");
        assert_eq!(pinned.num_vertices(), 6);
        // A third graph pushes past quota: the unpinned LRU entry (b) goes,
        // the pinned one (a) survives even though it is older.
        let c = upload(
            &store,
            &codec::encode_csr(&generators::cycle(9).unwrap()),
            64,
        );
        assert_eq!(store.status(b), UploadState::Unknown, "b evicted");
        assert!(matches!(store.status(a), UploadState::Committed { .. }));
        assert!(matches!(store.status(c), UploadState::Committed { .. }));
        assert_eq!(store.counters().evictions, 1);
        // Evicted digests answer UnknownTopology — the re-upload cue.
        assert!(matches!(
            store.resolve_pinned(b),
            Err(UploadError::UnknownTopology { .. })
        ));
        store.unpin(a);
        // An upload bigger than the whole quota is refused at begin.
        let huge = encoding(64);
        let manifest = manifest_for(&huge, MAX_LINE_BYTES).expect("manifest");
        assert!(matches!(
            store.begin(manifest),
            Err(UploadError::QuotaExceeded { .. })
        ));
    }

    #[test]
    fn status_polling_does_not_refresh_lru_recency() {
        // Eviction order is use-order, where "use" means a resolve (a job
        // actually reading the graph) — never an `upload_status` poll. A
        // client heartbeating `upload_status` on a stale graph must not
        // keep it alive at the expense of genuinely-used entries.
        let store = ContentStore::open(None, Some(300)).expect("open");
        let a = upload(&store, &encoding(6), 64); // 172 bytes, oldest
        let b = upload(
            &store,
            &codec::encode_csr(&generators::star(5).unwrap()),
            64,
        ); // 92 bytes
           // A real use of b makes a the LRU entry.
        store.resolve_pinned(b).expect("resolve b");
        store.unpin(b);
        // Poll a's status hard; if touches counted as use, a would now be
        // the most recent entry.
        for _ in 0..50 {
            assert!(matches!(store.status(a), UploadState::Committed { .. }));
        }
        // The overflowing commit must evict a (stale despite the polling),
        // not b (genuinely used).
        let c = upload(
            &store,
            &codec::encode_csr(&generators::cycle(9).unwrap()),
            64,
        );
        assert_eq!(store.status(a), UploadState::Unknown, "a must be evicted");
        assert!(matches!(store.status(b), UploadState::Committed { .. }));
        assert!(matches!(store.status(c), UploadState::Committed { .. }));
        assert_eq!(store.counters().evictions, 1);
    }

    #[test]
    fn persistent_store_recovers_partials_and_truncates_torn_tails() {
        let dir = std::env::temp_dir().join(format!("rumor-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let bytes = encoding(16);
        let mut manifest = manifest_for(&bytes, MAX_LINE_BYTES).expect("manifest");
        manifest.chunk_bytes = 100;
        {
            let store = ContentStore::open(Some(dir.clone()), None).expect("open");
            store.begin(manifest).expect("begin");
            for index in 0..2u64 {
                let start = (index * 100) as usize;
                let payload = &bytes[start..start + 100];
                store
                    .chunk(manifest.digest, index, payload, crc32(payload))
                    .expect("chunk");
            }
        }
        // Simulate a torn append: garbage past the last chunk boundary.
        {
            let path = partial_path(&dir, manifest.digest);
            let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(&[0xaa; 37]).unwrap();
        }
        // Reopen: high-water mark is still 2; the tail was truncated.
        let store = ContentStore::open(Some(dir.clone()), None).expect("reopen");
        assert_eq!(
            store.status(manifest.digest),
            UploadState::Partial {
                acked: 2,
                chunks: manifest.chunks()
            }
        );
        for index in 2..manifest.chunks() {
            let start = (index * 100) as usize;
            let end = (start + 100).min(bytes.len());
            let payload = &bytes[start..end];
            store
                .chunk(manifest.digest, index, payload, crc32(payload))
                .expect("resume chunk");
        }
        store.commit(manifest.digest).expect("commit");
        // Committed file is exactly the canonical bytes, digest-addressed.
        let on_disk = fs::read(committed_path(&dir, manifest.digest)).expect("read committed");
        assert_eq!(on_disk, bytes);
        // A fresh open sees the committed graph; corrupting the file is
        // detected at resolve and answered typed.
        let store = ContentStore::open(Some(dir.clone()), None).expect("third open");
        assert!(matches!(
            store.status(manifest.digest),
            UploadState::Committed { .. }
        ));
        fs::write(committed_path(&dir, manifest.digest), b"garbage").unwrap();
        assert!(matches!(
            store.resolve_pinned(manifest.digest),
            Err(UploadError::DigestMismatch { .. })
        ));
        assert_eq!(store.status(manifest.digest), UploadState::Unknown);
        let _ = fs::remove_dir_all(&dir);
    }
}
