//! The serve scheduler: a shared worker pool with per-client fair
//! round-robin, digest-keyed result caching, manifest-backed crash
//! recovery, and checkpoint-draining shutdown.
//!
//! ## Fairness
//!
//! Jobs queue per client name, and workers claim **one trial at a time**
//! from the client queues in rotating round-robin order. A client
//! submitting a 1000-trial sweep therefore cannot starve a client with a
//! 4-trial smoke job: even with a single worker, the small job's trials
//! interleave 1:1 with the big job's.
//!
//! ## Durability
//!
//! With a state directory configured, every finished trial is recorded in a
//! digest-keyed manifest (`job-<digest>.rman`, the PR 6 `RMAN` format)
//! through an atomic temp-file rewrite, and long-running trials checkpoint
//! at chunk cadence into per-trial snapshot directories. A killed server
//! therefore loses **no completed trial**: resubmitting the same spec after
//! a restart reuses every recorded trial and resumes suspended ones from
//! their newest valid snapshot.
//!
//! ## Determinism
//!
//! Trials are pure functions of their derived seed, trial lines are emitted
//! in trial-index order, and the line format uses exactly the fields that
//! survive a manifest round-trip — so live, recovered, duplicate-attached,
//! and cached response streams are byte-identical.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rumor_core::{
    resume_in, simulate_resumable_in, CheckpointCadence, ResumableRun, SimSnapshot, SimWorkspace,
    SimulationSpec,
};
use rumor_graphs::{AnyTopology, Topology, VertexId};

use crate::runner::{Manifest, TrialOutcome, TrialTaxonomy};
use crate::serve::protocol::{trial_line, SubmitRequest, MAX_LINE_BYTES};
use crate::serve::shed::{admit, AdmissionLimits, Verdict};
use crate::serve::store::{ContentStore, UploadError};
use crate::serve::sync::{lock_recover, wait_recover, wait_timeout_recover};

/// Configuration of a serve instance (scheduler + server).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (`0` = one per logical core).
    pub workers: usize,
    /// Admission bounds (queue depth / open jobs).
    pub limits: AdmissionLimits,
    /// Durability root: manifests (`job-*.rman`) and per-trial checkpoint
    /// directories live here. `None` disables crash recovery (results are
    /// still cached in memory).
    pub state_dir: Option<PathBuf>,
    /// Rounds between deadline/drain checks (and checkpoint captures) on
    /// the resumable path.
    pub chunk_rounds: u64,
    /// Test hook: sleep this long before each trial, so kill/overload tests
    /// can reliably interrupt a run mid-job. `0` in production.
    pub throttle_ms: u64,
    /// How long a drain waits for in-flight work before forcing shutdown.
    pub grace: Duration,
    /// Close a connection that has sent nothing (not even a heartbeat) for
    /// this long — reclaims the session thread behind a half-open TCP peer.
    pub idle_timeout: Duration,
    /// Upper bound on one NDJSON line, both directions (default
    /// [`MAX_LINE_BYTES`]). Upload chunk sizes derive from this bound.
    pub max_line_bytes: usize,
    /// LRU byte quota for the topology content store (`None` = unbounded).
    /// Only unreferenced committed graphs are ever evicted.
    pub store_quota_bytes: Option<u64>,
}

impl ServeConfig {
    /// Production-shaped defaults: per-core workers, default admission
    /// bounds, 64-round chunks, 30 s drain grace, no state directory.
    pub fn new() -> Self {
        ServeConfig {
            workers: 0,
            limits: AdmissionLimits::new(),
            state_dir: None,
            chunk_rounds: 64,
            throttle_ms: 0,
            grace: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(30),
            max_line_bytes: MAX_LINE_BYTES,
            store_quota_bytes: None,
        }
    }

    /// Sets the durability root.
    pub fn with_state_dir(mut self, dir: PathBuf) -> Self {
        self.state_dir = Some(dir);
        self
    }

    /// Sets the half-open connection reclaim timeout.
    pub fn with_idle_timeout(mut self, idle_timeout: Duration) -> Self {
        self.idle_timeout = idle_timeout;
        self
    }

    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the NDJSON line bound (and thereby the upload chunk size).
    pub fn with_max_line_bytes(mut self, max_line_bytes: usize) -> Self {
        self.max_line_bytes = max_line_bytes;
        self
    }

    /// Sets the content store's LRU byte quota.
    pub fn with_store_quota_bytes(mut self, quota: u64) -> Self {
        self.store_quota_bytes = Some(quota);
        self
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time snapshot of the scheduler's counters (the `stats` verb).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Trials actually executed (excludes manifest/cache reuse).
    pub trials_executed: usize,
    /// Submissions rejected by admission control.
    pub shed: usize,
    /// Submissions answered from the in-memory result cache.
    pub cache_hits: usize,
    /// Submissions attached to an identical in-flight job.
    pub duplicate_hits: usize,
    /// Trials currently queued or running.
    pub pending_trials: usize,
    /// Jobs currently open.
    pub pending_jobs: usize,
}

/// A finished job's replayable result: trial lines in index order plus the
/// outcome taxonomy. Only fully deterministic jobs (every trial completed
/// or round-capped) are cached.
#[derive(Debug)]
pub(crate) struct CachedJob {
    pub(crate) digest: u64,
    pub(crate) trial_lines: Vec<String>,
    pub(crate) taxonomy: TrialTaxonomy,
}

/// The scheduler's answer to one submission.
pub(crate) enum Submission {
    /// Answered from the result cache — O(1), no execution.
    Cached(Arc<CachedJob>),
    /// Attached to a (possibly brand-new) job; `duplicate` marks attachment
    /// to an identical job that was already in flight.
    Attached { job: Arc<Job>, duplicate: bool },
    /// Shed by admission control.
    Overloaded { retry_after_ms: u64 },
    /// The server is draining and admits nothing new.
    Draining,
    /// Validation failed (unknown family/protocol, out-of-range spec, …).
    Rejected(String),
    /// The submission named an uploaded topology the content store does not
    /// hold (never uploaded, evicted by quota, or corrupt at rest) — the
    /// typed cue for the client to re-upload and resubmit idempotently.
    UnknownTopology {
        /// The missing topology's content digest.
        topology: u64,
    },
}

/// The scheduler's answer to a `resume` lookup by digest.
pub(crate) enum Lookup {
    /// The job is in flight: re-attach to its live feed.
    Running(Arc<Job>),
    /// The job finished deterministically: replay from the result cache.
    Cached(Arc<CachedJob>),
    /// Nothing under that digest (never submitted, or lost to a restart).
    Unknown,
}

/// One admitted sweep job.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) digest: u64,
    pub(crate) trials: usize,
    pub(crate) reused: usize,
    topology: AnyTopology,
    /// The content-store pin held for an uploaded topology: released when
    /// the job leaves the pending/running set, so quota eviction can never
    /// remove a graph a live job references.
    upload_pin: Option<u64>,
    base_spec: SimulationSpec,
    source: VertexId,
    deadline: Option<Instant>,
    /// Trials recovered from the manifest at admission (never re-claimed).
    prefilled: Vec<bool>,
    next_trial: AtomicUsize,
    state: Mutex<JobState>,
    progress: Condvar,
}

#[derive(Debug)]
struct JobState {
    outcomes: Vec<Option<TrialOutcome>>,
    recorded: usize,
    next_emit: usize,
    lines: Vec<String>,
    finished: bool,
    drained: bool,
    manifest: Option<Manifest>,
}

impl Job {
    /// Records one trial outcome: manifest write, in-order line emission,
    /// subscriber wakeup. Returns `true` when this record finished the job.
    fn record(&self, trial: usize, outcome: TrialOutcome) -> bool {
        // Poison-tolerant throughout `Job` and `Scheduler`: a worker or
        // session thread that panics while holding a lock must cost only
        // its own trial/session, never wedge the feed Condvar for every
        // other subscriber (see `serve::sync`).
        let mut state = lock_recover(&self.state);
        if state.outcomes[trial].is_some() || state.finished {
            return false; // drain raced a duplicate record; keep the first
        }
        if let Some(manifest) = &mut state.manifest {
            manifest.record(trial, &outcome);
        }
        state.outcomes[trial] = Some(outcome);
        state.recorded += 1;
        advance_emit(&mut state);
        let finished = state.recorded == self.trials;
        if finished {
            state.finished = true;
        }
        self.progress.notify_all();
        finished
    }

    /// Bounded wait for session forwarder threads: blocks until the feed
    /// has lines past `from` or the job reaches a terminal state, but
    /// returns after `timeout` even with no progress, so a forwarder whose
    /// connection died can observe the session's closed flag and exit
    /// instead of leaking. `from` past the current feed is tolerated (an
    /// over-claiming `resume` waits instead of panicking).
    pub(crate) fn wait_lines_timeout(
        &self,
        from: usize,
        timeout: Duration,
    ) -> (Vec<String>, bool, bool) {
        let deadline = Instant::now() + timeout;
        let mut state = lock_recover(&self.state);
        while state.lines.len() <= from && !state.finished && !state.drained {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            let (next, timed_out) = wait_timeout_recover(&self.progress, state, remaining);
            state = next;
            if timed_out {
                break;
            }
        }
        let lines = if state.lines.len() > from {
            state.lines[from..].to_vec()
        } else {
            Vec::new()
        };
        (lines, state.finished, state.drained)
    }

    /// The finished job's taxonomy (all-NotRun for unfinished jobs).
    pub(crate) fn taxonomy(&self) -> TrialTaxonomy {
        let state = lock_recover(&self.state);
        let outcomes: Vec<TrialOutcome> = state
            .outcomes
            .iter()
            .map(|o| o.clone().unwrap_or(TrialOutcome::NotRun))
            .collect();
        TrialTaxonomy::of(&outcomes)
    }

    fn cacheable(state: &JobState) -> bool {
        state.outcomes.iter().all(|o| {
            matches!(
                o,
                Some(TrialOutcome::Completed(_)) | Some(TrialOutcome::RoundCapped(_))
            )
        })
    }
}

/// Emits trial lines for every contiguous recorded outcome past the cursor
/// — the in-order guarantee behind byte-identical streams.
fn advance_emit(state: &mut JobState) {
    while state.next_emit < state.outcomes.len() {
        match &state.outcomes[state.next_emit] {
            Some(outcome) => {
                let line = trial_line(state.next_emit, outcome);
                state.lines.push(line);
                state.next_emit += 1;
            }
            None => break,
        }
    }
}

struct SchedState {
    /// Per-client FIFO queues; the fairness unit.
    queues: Vec<(String, VecDeque<Arc<Job>>)>,
    /// Next client queue to serve.
    cursor: usize,
    pending_trials: usize,
    running: HashMap<u64, Arc<Job>>,
    cache: HashMap<u64, Arc<CachedJob>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<SchedState>,
    work_ready: Condvar,
    draining: AtomicBool,
    executed: AtomicUsize,
    shed: AtomicUsize,
    cache_hits: AtomicUsize,
    duplicate_hits: AtomicUsize,
    config: ServeConfig,
    store: ContentStore,
}

/// Releases a finished/retired job's content-store pin, if it holds one.
fn release_upload_pin(shared: &Shared, job: &Job) {
    if let Some(digest) = job.upload_pin {
        shared.store.unpin(digest);
    }
}

/// The worker pool + queue state. One per server; shared with connection
/// handler threads.
pub(crate) struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler").finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Starts the worker pool and opens the topology content store (under
    /// `<state-dir>/store` when durable, in memory otherwise).
    pub(crate) fn start(config: ServeConfig) -> std::io::Result<Scheduler> {
        let store = ContentStore::open(
            config.state_dir.as_ref().map(|dir| dir.join("store")),
            config.store_quota_bytes,
        )
        .map_err(|e| std::io::Error::other(e.to_string()))?;
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                queues: Vec::new(),
                cursor: 0,
                pending_trials: 0,
                running: HashMap::new(),
                cache: HashMap::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            executed: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            duplicate_hits: AtomicUsize::new(0),
            config,
            store,
        });
        let workers = (0..shared.config.resolved_workers())
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Scheduler {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// The topology content store (upload verbs and status counters).
    pub(crate) fn store(&self) -> &ContentStore {
        &self.shared.store
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> ServeStats {
        let state = lock_recover(&self.shared.state);
        ServeStats {
            trials_executed: self.shared.executed.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            duplicate_hits: self.shared.duplicate_hits.load(Ordering::Relaxed),
            pending_trials: state.pending_trials,
            pending_jobs: state.running.len(),
        }
    }

    /// Whether a drain has been requested.
    pub(crate) fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::Relaxed)
    }

    /// Admits, deduplicates, or sheds one submission.
    pub(crate) fn submit(&self, request: SubmitRequest) -> Submission {
        if self.draining() {
            return Submission::Draining;
        }
        let digest = request.digest();
        // Uploaded topologies resolve through the content store; resolving
        // pins the entry, and the pin follows the job (or is released on any
        // path that does not create one), so eviction can never race a live
        // submission.
        let mut upload_pin: Option<u64> = None;
        let unpin_on_exit = |pin: Option<u64>| {
            if let Some(digest) = pin {
                self.shared.store.unpin(digest);
            }
        };
        let topology = match request.topology.uploaded_digest() {
            Some(topology_digest) => match self.shared.store.resolve_pinned(topology_digest) {
                Ok(graph) => {
                    upload_pin = Some(topology_digest);
                    AnyTopology::from(graph)
                }
                // Never uploaded, evicted, or corrupt at rest (the store
                // already dropped a corrupt entry): re-upload is the cure.
                Err(
                    UploadError::UnknownTopology { .. }
                    | UploadError::DigestMismatch { .. }
                    | UploadError::Invalid { .. },
                ) => {
                    return Submission::UnknownTopology {
                        topology: topology_digest,
                    }
                }
                Err(e) => return Submission::Rejected(e.to_string()),
            },
            None => match request.topology.build() {
                Ok(t) => t,
                Err(e) => return Submission::Rejected(e),
            },
        };
        let base = match request.to_spec() {
            Ok(s) => s,
            Err(e) => {
                unpin_on_exit(upload_pin);
                return Submission::Rejected(e);
            }
        };
        let source: VertexId = 0;
        // One match at admission: adapt (the paper's bipartite remedy) and
        // validate against the actual graph, so workers only ever see
        // well-formed jobs.
        let spec = {
            let adapted = match &topology {
                AnyTopology::Csr(g) => base.adapted_to(g),
                AnyTopology::Implicit(g) => base.adapted_to(g),
                AnyTopology::Generated(g) => base.adapted_to(g),
                AnyTopology::HubCached(g) => base.adapted_to(g),
            };
            let check = match &topology {
                AnyTopology::Csr(g) => adapted.validate(g, source),
                AnyTopology::Implicit(g) => adapted.validate(g, source),
                AnyTopology::Generated(g) => adapted.validate(g, source),
                AnyTopology::HubCached(g) => adapted.validate(g, source),
            };
            if let Err(e) = check {
                unpin_on_exit(upload_pin);
                return Submission::Rejected(e.to_string());
            }
            adapted
        };

        let mut state = lock_recover(&self.shared.state);
        if state.shutdown || self.draining() {
            unpin_on_exit(upload_pin);
            return Submission::Draining;
        }
        if let Some(cached) = state.cache.get(&digest) {
            self.shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            unpin_on_exit(upload_pin);
            return Submission::Cached(Arc::clone(cached));
        }
        if let Some(job) = state.running.get(&digest) {
            self.shared.duplicate_hits.fetch_add(1, Ordering::Relaxed);
            unpin_on_exit(upload_pin);
            return Submission::Attached {
                job: Arc::clone(job),
                duplicate: true,
            };
        }
        match admit(
            &self.shared.config.limits,
            state.pending_trials,
            state.running.len(),
            request.trials,
        ) {
            Verdict::Overloaded { retry_after_ms } => {
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                unpin_on_exit(upload_pin);
                return Submission::Overloaded { retry_after_ms };
            }
            Verdict::Admit => {}
        }

        // Manifest recovery: completed trials recorded by a previous run of
        // this digest (possibly by a server that was killed) are reused.
        let trials = request.trials;
        let manifest_path = self
            .shared
            .config
            .state_dir
            .as_ref()
            .map(|dir| dir.join(format!("job-{digest:016x}.rman")));
        let mut outcomes: Vec<Option<TrialOutcome>> = vec![None; trials];
        let mut manifest_lines: Vec<Option<String>> = vec![None; trials];
        if let Some(path) = &manifest_path {
            for (index, outcome) in Manifest::load(path, digest, trials, spec.kind.name())
                .into_iter()
                .enumerate()
            {
                if let Some(outcome) = outcome {
                    manifest_lines[index] = Manifest::status_line(index, &outcome);
                    outcomes[index] = Some(outcome);
                }
            }
        }
        let reused = outcomes.iter().filter(|o| o.is_some()).count();
        let prefilled: Vec<bool> = outcomes.iter().map(|o| o.is_some()).collect();
        let manifest = manifest_path.map(|path| {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            Manifest {
                path,
                digest,
                lines: manifest_lines,
            }
        });
        let mut job_state = JobState {
            outcomes,
            recorded: reused,
            next_emit: 0,
            lines: Vec::new(),
            finished: false,
            drained: false,
            manifest,
        };
        advance_emit(&mut job_state);
        let finished_at_admission = reused == trials;
        if finished_at_admission {
            job_state.finished = true;
        }
        let job = Arc::new(Job {
            digest,
            trials,
            reused,
            topology,
            upload_pin,
            base_spec: spec,
            source,
            deadline: request
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            prefilled,
            next_trial: AtomicUsize::new(0),
            state: Mutex::new(job_state),
            progress: Condvar::new(),
        });
        if finished_at_admission {
            // Everything came back from the manifest: publish to the cache
            // and answer without touching the queues (no running job, so no
            // pin to carry).
            cache_if_deterministic(&mut state, &job);
            unpin_on_exit(upload_pin);
            return Submission::Attached {
                job,
                duplicate: false,
            };
        }
        state.pending_trials += trials - reused;
        state.running.insert(digest, Arc::clone(&job));
        match state.queues.iter_mut().find(|(c, _)| *c == request.client) {
            Some((_, queue)) => queue.push_back(Arc::clone(&job)),
            None => {
                let mut queue = VecDeque::new();
                queue.push_back(Arc::clone(&job));
                state.queues.push((request.client, queue));
            }
        }
        self.shared.work_ready.notify_all();
        Submission::Attached {
            job,
            duplicate: false,
        }
    }

    /// Looks a job up by digest for a `resume`: in-flight jobs re-attach to
    /// the live feed, finished deterministic jobs replay from the result
    /// cache. `Unknown` covers everything else (never submitted, evicted by
    /// a restart, or finished non-deterministically) — the client's
    /// fallback is an idempotent resubmission, which replays recorded
    /// trials from the on-disk manifest instead.
    pub(crate) fn lookup(&self, digest: u64) -> Lookup {
        let state = lock_recover(&self.shared.state);
        if let Some(job) = state.running.get(&digest) {
            return Lookup::Running(Arc::clone(job));
        }
        if let Some(cached) = state.cache.get(&digest) {
            return Lookup::Cached(Arc::clone(cached));
        }
        Lookup::Unknown
    }

    /// Stops admission and wakes every worker; workers exit after their
    /// current trial (checkpointing it if it is long-running).
    pub(crate) fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        let state = lock_recover(&self.shared.state);
        self.shared.work_ready.notify_all();
        drop(state);
    }

    /// Completes a drain: waits up to `grace` for in-flight trials, joins
    /// the workers, and terminates every unfinished job's feed so no
    /// subscriber hangs. Completed trials are already on disk.
    pub(crate) fn finish_drain(&self) {
        let grace = self.shared.config.grace;
        let deadline = Instant::now() + grace;
        let workers: Vec<_> = std::mem::take(&mut *lock_recover(&self.workers));
        for worker in workers {
            // Workers exit after at most one chunk past the drain flag;
            // join unconditionally (bounded by chunk cadence, not grace).
            let _ = worker.join();
            if Instant::now() > deadline {
                // Grace expired: remaining workers are between chunks and
                // will exit momentarily; keep joining — bounded wait.
                continue;
            }
        }
        let mut state = lock_recover(&self.shared.state);
        state.shutdown = true;
        for (_, job) in state.running.drain() {
            let mut job_state = lock_recover(&job.state);
            if !job_state.finished {
                job_state.drained = true;
            }
            job.progress.notify_all();
            drop(job_state);
            release_upload_pin(&self.shared, &job);
        }
        state.queues.clear();
        state.pending_trials = 0;
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.begin_drain();
        self.finish_drain();
    }
}

/// Publishes a finished job to the result cache if every trial is
/// deterministic (completed/round-capped); jobs with timed-out, panicked,
/// or skipped trials must re-run on resubmission.
fn cache_if_deterministic(state: &mut SchedState, job: &Job) {
    let job_state = lock_recover(&job.state);
    if Job::cacheable(&job_state) {
        state.cache.insert(
            job.digest,
            Arc::new(CachedJob {
                digest: job.digest,
                trial_lines: job_state.lines.clone(),
                taxonomy: TrialTaxonomy::of(
                    &job_state
                        .outcomes
                        .iter()
                        .map(|o| o.clone().expect("cacheable ⇒ all recorded"))
                        .collect::<Vec<_>>(),
                ),
            }),
        );
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let claim = {
            let mut state = lock_recover(&shared.state);
            loop {
                if state.shutdown || shared.draining.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(claim) = claim_next(shared, &mut state) {
                    break claim;
                }
                state = wait_recover(&shared.work_ready, state);
            }
        };
        let (job, trial) = claim;
        match execute_trial(shared, &job, trial) {
            Some(outcome) => {
                shared.executed.fetch_add(1, Ordering::Relaxed);
                if job.record(trial, outcome) {
                    let mut state = lock_recover(&shared.state);
                    state.running.remove(&job.digest);
                    cache_if_deterministic(&mut state, &job);
                    drop(state);
                    release_upload_pin(shared, &job);
                }
            }
            None => {
                // Drain suspended the trial after checkpointing it; nothing
                // is recorded, so a restarted server re-claims it and
                // resumes from the snapshot.
            }
        }
    }
}

/// Claims the next trial ticket in client round-robin order. Runs under the
/// scheduler lock. Also retires deadline-expired jobs (their unclaimed
/// trials become `NotRun`).
fn claim_next(shared: &Shared, state: &mut SchedState) -> Option<(Arc<Job>, usize)> {
    let queues = state.queues.len();
    if queues == 0 {
        return None;
    }
    let mut expired: Vec<Arc<Job>> = Vec::new();
    let mut claim = None;
    'scan: for step in 0..queues {
        let qi = (state.cursor + step) % queues;
        loop {
            let Some(job) = state.queues[qi].1.front().cloned() else {
                break; // empty client queue
            };
            if job.deadline.is_some_and(|d| Instant::now() >= d) {
                state.queues[qi].1.pop_front();
                expired.push(job);
                continue;
            }
            match claim_ticket(&job) {
                Some(trial) => {
                    state.pending_trials = state.pending_trials.saturating_sub(1);
                    state.cursor = (qi + 1) % queues;
                    claim = Some((job, trial));
                    break 'scan;
                }
                None => {
                    // Fully claimed; running trials will finish it.
                    state.queues[qi].1.pop_front();
                }
            }
        }
    }
    // Retire expired jobs: mark every unclaimed trial NotRun so their
    // subscribers get a terminal taxonomy instead of a hung connection.
    for job in expired {
        let mut marked = 0usize;
        while let Some(trial) = claim_ticket(&job) {
            marked += 1;
            if job.record(trial, TrialOutcome::NotRun) {
                state.running.remove(&job.digest);
                release_upload_pin(shared, &job);
            }
        }
        state.pending_trials = state.pending_trials.saturating_sub(marked);
    }
    claim
}

/// Claims this job's next unclaimed, non-prefilled trial index.
fn claim_ticket(job: &Job) -> Option<usize> {
    loop {
        let trial = job.next_trial.fetch_add(1, Ordering::Relaxed);
        if trial >= job.trials {
            return None;
        }
        if !job.prefilled[trial] {
            return Some(trial);
        }
    }
}

/// Runs one trial. `None` means a drain suspended it mid-flight (after
/// persisting a checkpoint); anything else is a recordable outcome.
fn execute_trial(shared: &Shared, job: &Job, trial: usize) -> Option<TrialOutcome> {
    if shared.config.throttle_ms > 0 {
        std::thread::sleep(Duration::from_millis(shared.config.throttle_ms));
    }
    let mut spec = job.base_spec.clone();
    spec.seed = job.base_spec.seed.wrapping_add(trial as u64);
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        return Some(TrialOutcome::NotRun);
    }
    let ckpt_dir = shared.config.state_dir.as_ref().map(|dir| {
        dir.join(format!("ckpt-{:016x}", job.digest))
            .join(format!("t{trial}"))
    });
    match &job.topology {
        AnyTopology::Csr(g) => run_one(shared, g, job, &spec, ckpt_dir),
        AnyTopology::Implicit(g) => run_one(shared, g, job, &spec, ckpt_dir),
        AnyTopology::Generated(g) => run_one(shared, g, job, &spec, ckpt_dir),
        AnyTopology::HubCached(g) => run_one(shared, g, job, &spec, ckpt_dir),
    }
}

fn run_one<G: Topology>(
    shared: &Shared,
    graph: &G,
    job: &Job,
    spec: &SimulationSpec,
    ckpt_dir: Option<PathBuf>,
) -> Option<TrialOutcome> {
    // One deterministic same-seed replay after a panic, mirroring
    // `run_trials_guarded`: a panic that reproduces is reported with its
    // payload, one left by a poisoned workspace is absorbed.
    let mut last_panic = String::new();
    for attempt in 1..=2u32 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_one_attempt(shared, graph, job, spec, ckpt_dir.as_deref())
        }));
        match result {
            Ok(outcome) => return outcome,
            Err(payload) => {
                last_panic = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                if attempt == 2 {
                    return Some(TrialOutcome::Panicked {
                        message: last_panic,
                        attempts: attempt,
                    });
                }
            }
        }
    }
    Some(TrialOutcome::Panicked {
        message: last_panic,
        attempts: 2,
    })
}

fn run_one_attempt<G: Topology>(
    shared: &Shared,
    graph: &G,
    job: &Job,
    spec: &SimulationSpec,
    ckpt_dir: Option<&std::path::Path>,
) -> Option<TrialOutcome> {
    let mut workspace = SimWorkspace::new();
    let cadence = CheckpointCadence::every_rounds(shared.config.chunk_rounds);
    let mut drained = false;
    let mut sink = |snapshot: &SimSnapshot| {
        if shared.draining.load(Ordering::Relaxed) {
            if let Some(dir) = ckpt_dir {
                // Keep the two newest snapshots: one survivor plus a
                // fallback if the newest write raced the kill.
                let _ = snapshot.write_atomic_retained(dir, 2);
            }
            drained = true;
            return false;
        }
        job.deadline.is_none_or(|d| Instant::now() < d)
    };
    // Resume from a prior run's suspension checkpoint when one exists (a
    // drained server's long trial picks up mid-broadcast, not from round 0).
    let resumed = ckpt_dir
        .and_then(|dir| SimSnapshot::load_newest(dir).ok().flatten())
        .and_then(|snapshot| {
            resume_in(
                graph,
                job.source,
                spec,
                &snapshot,
                &mut workspace,
                cadence,
                &mut sink,
            )
            .ok()
        });
    let run = match resumed {
        Some(run) => run,
        None => simulate_resumable_in(graph, job.source, spec, &mut workspace, cadence, &mut sink),
    };
    match run {
        ResumableRun::Finished(outcome) => {
            if let Some(dir) = ckpt_dir {
                let _ = std::fs::remove_dir_all(dir);
            }
            Some(if outcome.completed {
                TrialOutcome::Completed(outcome)
            } else {
                TrialOutcome::RoundCapped(outcome)
            })
        }
        ResumableRun::Suspended(_) if drained => None,
        ResumableRun::Suspended(snapshot) => Some(TrialOutcome::TimedOut {
            round: snapshot.round(),
            informed_vertices: snapshot.informed_vertex_count(),
            informed_agents: snapshot.informed_agent_count(),
            messages: snapshot.messages_total(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::protocol::TopologySpec;

    fn smoke_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            ..ServeConfig::new()
        }
    }

    fn collect(job: &Arc<Job>) -> (Vec<String>, bool) {
        let mut lines = Vec::new();
        loop {
            let (new, finished, drained) =
                job.wait_lines_timeout(lines.len(), Duration::from_secs(1));
            lines.extend(new);
            if finished || drained {
                return (lines, drained);
            }
        }
    }

    #[test]
    fn executes_a_job_and_caches_the_result() {
        let scheduler = Scheduler::start(smoke_config()).expect("scheduler");
        let request = SubmitRequest::new("t", TopologySpec::new("complete", 32), "push", 4);
        let Submission::Attached { job, duplicate } = scheduler.submit(request.clone()) else {
            panic!("expected attachment");
        };
        assert!(!duplicate);
        let (lines, drained) = collect(&job);
        assert!(!drained);
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"index\":0"));
        assert_eq!(job.taxonomy().completed, 4);
        assert_eq!(scheduler.stats().trials_executed, 4);
        // Resubmission is a cache hit with byte-identical lines.
        let Submission::Cached(cached) = scheduler.submit(request) else {
            panic!("expected cache hit");
        };
        assert_eq!(cached.trial_lines, lines);
        assert_eq!(scheduler.stats().trials_executed, 4);
        assert_eq!(scheduler.stats().cache_hits, 1);
    }

    #[test]
    fn rejects_invalid_specs_with_the_cause() {
        let scheduler = Scheduler::start(smoke_config()).expect("scheduler");
        let bad_family = scheduler.submit(SubmitRequest::new(
            "t",
            TopologySpec::new("torus", 8),
            "push",
            1,
        ));
        assert!(matches!(bad_family, Submission::Rejected(_)));
        let bad_proto = scheduler.submit(SubmitRequest::new(
            "t",
            TopologySpec::new("complete", 8),
            "smoke-signals",
            1,
        ));
        let Submission::Rejected(message) = bad_proto else {
            panic!("expected rejection");
        };
        assert!(message.contains("smoke-signals"), "message: {message}");
    }

    #[test]
    fn draining_scheduler_admits_nothing() {
        let scheduler = Scheduler::start(smoke_config()).expect("scheduler");
        scheduler.begin_drain();
        let verdict = scheduler.submit(SubmitRequest::new(
            "t",
            TopologySpec::new("star", 8),
            "push",
            1,
        ));
        assert!(matches!(verdict, Submission::Draining));
        scheduler.finish_drain();
    }

    #[test]
    fn overload_sheds_with_typed_verdict() {
        let config = ServeConfig {
            workers: 1,
            throttle_ms: 50,
            limits: AdmissionLimits {
                max_pending_trials: 4,
                max_pending_jobs: 64,
            },
            ..ServeConfig::new()
        };
        let scheduler = Scheduler::start(config).expect("scheduler");
        let first = SubmitRequest::new("hog", TopologySpec::new("complete", 16), "push", 4);
        assert!(matches!(
            scheduler.submit(first),
            Submission::Attached { .. }
        ));
        let second = SubmitRequest::new("hog", TopologySpec::new("complete", 16), "pull", 4);
        assert!(matches!(
            scheduler.submit(second),
            Submission::Overloaded { .. }
        ));
        assert_eq!(scheduler.stats().shed, 1);
    }
}
