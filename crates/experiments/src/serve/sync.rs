//! Poison-tolerant lock primitives for the serve stack.
//!
//! Every mutex in the serve path is shared across session threads (reader,
//! writer, per-job forwarders) and scheduler workers. The std poisoning
//! protocol turns one panic while holding a lock into a cascade: every
//! later `lock().unwrap()` on the same mutex panics too, and a
//! `Condvar::wait(..).unwrap()` panics the *blocked* thread — which for the
//! session outbox means the writer dies with lines still queued and every
//! forwarder wedges against a Condvar nobody will ever signal again.
//!
//! None of the serve-side critical sections require poisoning for
//! correctness: they maintain their invariants before blocking or
//! returning (queues are push/pop consistent at every await point, counter
//! updates are single-field), so the data behind a poisoned lock is still
//! well-formed. These helpers therefore *clear* the poison and hand back
//! the guard, converting "one panicking session thread wedges the server"
//! into "the panicking thread tears down its own session and everything
//! else keeps serving" — the behavior the chaos suite pins.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Locks, recovering the guard if a previous holder panicked.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Waits on a condvar, recovering the guard if the mutex was poisoned
/// while this thread was parked.
pub(crate) fn wait_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Timed wait, recovering the guard (the timeout flag is lost on a
/// poisoned wake; callers re-derive timeouts from their own deadline, which
/// all serve-side wait loops already do).
pub(crate) fn wait_timeout_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match condvar.wait_timeout(guard, timeout) {
        Ok((guard, wait)) => (guard, wait.timed_out()),
        Err(poisoned) => {
            let (guard, wait) = poisoned.into_inner();
            (guard, wait.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recover_survives_a_poisoning_panic() {
        let shared = Arc::new(Mutex::new(7usize));
        let poisoner = Arc::clone(&shared);
        std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join()
        .unwrap_err();
        assert!(shared.is_poisoned(), "setup must actually poison");
        assert_eq!(*lock_recover(&shared), 7);
    }

    #[test]
    fn wait_timeout_recover_reports_timeouts() {
        let mutex = Mutex::new(());
        let condvar = Condvar::new();
        let (_guard, timed_out) =
            wait_timeout_recover(&condvar, lock_recover(&mutex), Duration::from_millis(5));
        assert!(timed_out);
    }
}
