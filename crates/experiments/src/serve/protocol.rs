//! The `rumor-serve` wire protocol: newline-delimited JSON over TCP, with
//! multiplexed sessions.
//!
//! The workspace's `serde` is a vendored no-op facade (marker traits only),
//! so the wire layer is hand-rolled: a strict parser for a small JSON value
//! type ([`Json`]) plus line builders with **fixed field order**, which is
//! what makes result lines byte-identical across live execution, manifest
//! recovery, resume replay, and cache replay.
//!
//! A connection is a **session**: the client may send any number of request
//! lines, and every job-scoped response line carries the job digest plus a
//! monotone per-job sequence number, so one connection can carry many
//! concurrent jobs and a re-attached connection can name exactly where the
//! previous one died:
//!
//! ```text
//! → {"verb":"submit","client":"alice","topology":{"family":"complete","n":64},
//!    "protocol":"push","trials":8,"seed":1,"max_rounds":100000}
//! ← {"type":"accepted","job":"a1b2c3d4e5f60718","seq":0,"trials":8,"cached":false,"duplicate":false}
//! ← {"type":"trial","job":"a1b2c3d4e5f60718","seq":1,"index":0,"status":"completed",
//!    "rounds":9,"iv":64,"ia":0,"msgs":230}
//! ← …one line per trial, in trial-index order; trial i carries seq i+1…
//! ← {"type":"done","job":"a1b2c3d4e5f60718","seq":9,"completed":8,"round_capped":0,
//!    "timed_out":0,"panicked":0,"not_run":0,"reused":0,"cached":false}
//!
//! → {"verb":"resume","job":"a1b2c3d4e5f60718","last_seq":3}
//! ← {"type":"resumed","job":"a1b2c3d4e5f60718","seq":3,"trials":8}
//! ← …trial lines with seq 4.. — exactly the missing suffix, byte-identical…
//!
//! → {"verb":"heartbeat"}        ← {"type":"heartbeat"}
//!
//! → {"verb":"upload_begin","digest":"9f8e…","n":1002,"m":1001,"bytes":12060,
//!    "chunk_bytes":4096,"chunks":3}
//! ← {"type":"upload_ack","digest":"9f8e…","acked":0}
//! → {"verb":"upload_chunk","digest":"9f8e…","index":0,"payload":"5243…","crc":1234567}
//! ← {"type":"upload_ack","digest":"9f8e…","acked":1}
//! → …chunks strictly in order; a reconnecting client asks
//!    {"verb":"upload_status"} and restarts at the ack'd high-water mark…
//! → {"verb":"upload_commit","digest":"9f8e…"}
//! ← {"type":"upload_done","digest":"9f8e…","bytes":12060}
//! ```
//!
//! Overload, drain, and validation failures answer with a single typed line
//! (`overloaded`, `draining`, `error`) — tagged with the job digest when
//! they answer a `submit`/`resume` inside a session — so a request never
//! hangs. A request line longer than [`MAX_LINE_BYTES`] is answered with a
//! typed `protocol_error` line and the connection closes (bounded reader;
//! a hostile client cannot grow server buffers without limit).

use std::collections::BTreeMap;

use rumor_core::{ProtocolKind, SimulationSpec};
use rumor_graphs::{AnyTopology, GeneratedGraph, HubCachedGraph, ImplicitGraph};

use crate::runner::TrialOutcome;

/// Default upper bound on one NDJSON line, both directions. The server's
/// bounded reader answers anything longer with a typed `protocol_error`
/// line and closes the connection instead of growing `read_line` buffers
/// without limit; the client applies the same bound to response lines.
/// Configurable per server via `ServeConfig::with_max_line_bytes` (CLI
/// `--max-line-bytes`); upload chunk sizes derive from the configured bound
/// through [`chunk_payload_bytes`].
pub const MAX_LINE_BYTES: usize = 64 * 1024;

// ---------------------------------------------------------------------------
// JSON values
// ---------------------------------------------------------------------------

/// A parsed JSON value (the subset the protocol uses; no exponent-heavy
/// float edge cases beyond what `f64::from_str` accepts).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (kept exact so `u64` seeds survive the wire).
    Int(i128),
    /// A non-integer number literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by this protocol;
                        // lone surrogates map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                // Non-empty by the `Some(_)` guard, but this parser runs on
                // session reader threads against hostile input — answer
                // typed rather than carry a panic surface.
                let ch = rest
                    .chars()
                    .next()
                    .ok_or_else(|| "truncated string".to_string())?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err("expected ',' or ']'".to_string()),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err("expected object key".to_string());
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err("expected ':'".to_string());
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err("expected ',' or '}'".to_string()),
        }
    }
}

/// Escapes a string for embedding in a JSON line.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// The topology half of a submission: a named family plus its parameters,
/// or a reference to a previously uploaded graph.
///
/// Families map onto the workspace's cheap backends — implicit graphs for
/// the paper's structured families, the seed-keyed generated backend for
/// random ones — so a family submission never ships an edge list over the
/// wire. Measured graphs go the other way: the client uploads a canonical
/// CSR encoding once (`upload_begin`/`upload_chunk`/`upload_commit`), then
/// submits [`TopologySpec::Uploaded`] naming its content digest; the server
/// resolves the digest through its content store.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// A parameterized family built server-side.
    Family {
        /// Family name: `complete`, `star`, `double-star`, `path`, `cycle`,
        /// `hypercube` (where `n` is the dimension), `gnp`, or `chung-lu`.
        family: String,
        /// Vertex-count parameter (leaves for the star families, dimension
        /// for `hypercube`).
        n: usize,
        /// Target mean degree (`gnp`, `chung-lu` only).
        degree: f64,
        /// Power-law exponent (`chung-lu` only).
        exponent: f64,
        /// Topology seed (`gnp`, `chung-lu` only).
        seed: u64,
    },
    /// A graph uploaded ahead of time, named by the FNV-1a-64 digest of its
    /// canonical CSR encoding. Resolved through the server's content store;
    /// an evicted or never-uploaded digest answers with a typed
    /// `unknown_topology` line so the client can re-upload idempotently.
    Uploaded {
        /// FNV-1a-64 over the canonical CSR encoding
        /// ([`rumor_graphs::codec::encode_csr`]).
        digest: u64,
    },
}

impl TopologySpec {
    /// A spec for one of the parameter-free families.
    pub fn new(family: &str, n: usize) -> Self {
        TopologySpec::Family {
            family: family.to_string(),
            n,
            degree: 8.0,
            exponent: 2.5,
            seed: 1,
        }
    }

    /// A spec naming an uploaded graph by content digest.
    pub fn uploaded(digest: u64) -> Self {
        TopologySpec::Uploaded { digest }
    }

    /// Sets the target mean degree (`gnp`, `chung-lu`); no-op for uploads.
    pub fn with_degree(mut self, value: f64) -> Self {
        if let TopologySpec::Family { degree, .. } = &mut self {
            *degree = value;
        }
        self
    }

    /// Sets the power-law exponent (`chung-lu`); no-op for uploads.
    pub fn with_exponent(mut self, value: f64) -> Self {
        if let TopologySpec::Family { exponent, .. } = &mut self {
            *exponent = value;
        }
        self
    }

    /// Sets the topology seed (`gnp`, `chung-lu`); no-op for uploads.
    pub fn with_topology_seed(mut self, value: u64) -> Self {
        if let TopologySpec::Family { seed, .. } = &mut self {
            *seed = value;
        }
        self
    }

    /// The uploaded content digest, if this spec references one.
    pub fn uploaded_digest(&self) -> Option<u64> {
        match self {
            TopologySpec::Uploaded { digest } => Some(*digest),
            TopologySpec::Family { .. } => None,
        }
    }

    /// Builds the topology, choosing the cheapest backend for the family.
    ///
    /// [`TopologySpec::Uploaded`] cannot be built standalone — it resolves
    /// through the server's content store — so it answers with an error
    /// here; the scheduler intercepts it before calling `build`.
    pub fn build(&self) -> Result<AnyTopology, String> {
        let (family, n, degree, exponent, seed) = match self {
            TopologySpec::Family {
                family,
                n,
                degree,
                exponent,
                seed,
            } => (family.as_str(), *n, *degree, *exponent, *seed),
            TopologySpec::Uploaded { digest } => {
                return Err(format!(
                    "uploaded topology {digest:016x} must be resolved through the content store"
                ))
            }
        };
        let fail = |e: rumor_graphs::GraphError| format!("topology {family}: {e}");
        match family {
            "complete" => ImplicitGraph::complete(n)
                .map(AnyTopology::from)
                .map_err(fail),
            "star" => ImplicitGraph::star(n).map(AnyTopology::from).map_err(fail),
            "double-star" => ImplicitGraph::double_star(n)
                .map(AnyTopology::from)
                .map_err(fail),
            "path" => ImplicitGraph::path(n).map(AnyTopology::from).map_err(fail),
            "cycle" => ImplicitGraph::cycle(n).map(AnyTopology::from).map_err(fail),
            "hypercube" => u32::try_from(n)
                .map_err(|_| "hypercube dimension out of range".to_string())
                .and_then(|dim| ImplicitGraph::hypercube(dim).map_err(fail))
                .map(AnyTopology::from),
            "gnp" => GeneratedGraph::gnp_with_mean_degree(n, degree, seed)
                .map(AnyTopology::from)
                .map_err(fail),
            "chung-lu" => GeneratedGraph::chung_lu(n, exponent, degree, seed)
                .map(AnyTopology::from)
                .map_err(fail),
            // The same Chung–Lu instance behind the hub-cached hybrid:
            // exact adjacency for the default top n/64 vertices by degree,
            // which absorbs most agent-walk draws. Bit-identical results to
            // "chung-lu" at the same parameters (distinct job digests — the
            // family name is part of the canonical string — but identical
            // trial lines).
            "chung_lu_hub_cached" => GeneratedGraph::chung_lu(n, exponent, degree, seed)
                .map(|inner| AnyTopology::from(HubCachedGraph::over(inner)))
                .map_err(fail),
            other => Err(format!("unknown topology family {other:?}")),
        }
    }

    fn canonical(&self) -> String {
        match self {
            TopologySpec::Family {
                family,
                n,
                degree,
                exponent,
                seed,
            } => format!("{family}:{n}:{degree}:{exponent}:{seed}"),
            TopologySpec::Uploaded { digest } => format!("uploaded:{digest:016x}"),
        }
    }
}

/// One sweep submission: what to run, how many trials, and under which
/// budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Client name — the fairness unit for the scheduler's round-robin.
    /// Excluded from the job digest, so identical specs from different
    /// clients share one execution.
    pub client: String,
    /// The graph to run on.
    pub topology: TopologySpec,
    /// Protocol name (see [`ProtocolKind::from_name`]).
    pub protocol: String,
    /// Lazy agent walks (the paper's bipartite remedy); `adapted_to` is
    /// applied server-side regardless.
    pub lazy: bool,
    /// Number of trials (seeds `seed, seed+1, …`).
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Round cap per trial.
    pub max_rounds: u64,
    /// Optional wall-clock budget for the whole submission, enforced at
    /// chunk cadence: expired mid-trial suspends into
    /// [`TrialOutcome::TimedOut`], unclaimed trials report
    /// [`TrialOutcome::NotRun`]. Excluded from the job digest.
    pub deadline_ms: Option<u64>,
}

impl SubmitRequest {
    /// A submission with the default budgets: no deadline, 100k-round cap.
    pub fn new(client: &str, topology: TopologySpec, protocol: &str, trials: usize) -> Self {
        SubmitRequest {
            client: client.to_string(),
            topology,
            protocol: protocol.to_string(),
            lazy: false,
            trials,
            seed: 1,
            max_rounds: 100_000,
            deadline_ms: None,
        }
    }

    /// The idempotency key: FNV-1a-64 over the canonical job description,
    /// **excluding** the client name and the deadline — so a retry, or the
    /// same study submitted by a second client, is a cache or manifest hit
    /// rather than a re-execution.
    pub fn digest(&self) -> u64 {
        fnv1a64(
            format!(
                "serve1:{}:{}:{}:{}:{}:{}",
                self.topology.canonical(),
                self.protocol,
                self.lazy,
                self.trials,
                self.seed,
                self.max_rounds
            )
            .as_bytes(),
        )
    }

    /// Builds the validated simulation spec for this request (topology must
    /// be built by the caller; validation needs the graph).
    pub fn to_spec(&self) -> Result<SimulationSpec, String> {
        let kind = ProtocolKind::from_name(&self.protocol)
            .ok_or_else(|| format!("unknown protocol {:?}", self.protocol))?;
        let mut spec = SimulationSpec::new(kind)
            .with_seed(self.seed)
            .with_max_rounds(self.max_rounds);
        if self.lazy {
            spec = spec.with_agents(rumor_core::AgentConfig::default().lazy());
        }
        Ok(spec)
    }

    /// Renders the request as its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let topology = match &self.topology {
            TopologySpec::Family {
                family,
                n,
                degree,
                exponent,
                seed,
            } => format!(
                "{{\"family\":\"{}\",\"n\":{n},\"degree\":{degree},\"exponent\":{exponent},\"seed\":{seed}}}",
                escape_json(family)
            ),
            TopologySpec::Uploaded { digest } => {
                format!("{{\"family\":\"uploaded\",\"digest\":\"{digest:016x}\"}}")
            }
        };
        let mut line = format!(
            "{{\"verb\":\"submit\",\"client\":\"{}\",\"topology\":{topology},\"protocol\":\"{}\",\"lazy\":{},\"trials\":{},\"seed\":{},\"max_rounds\":{}",
            escape_json(&self.client),
            escape_json(&self.protocol),
            self.lazy,
            self.trials,
            self.seed,
            self.max_rounds,
        );
        if let Some(deadline) = self.deadline_ms {
            line.push_str(&format!(",\"deadline_ms\":{deadline}"));
        }
        line.push('}');
        line
    }
}

/// The fixed header of a chunked topology upload: what `upload_begin`
/// declares and what every subsequent chunk is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UploadManifest {
    /// FNV-1a-64 over the full canonical CSR encoding — the content
    /// address the committed graph is stored and later submitted under.
    pub digest: u64,
    /// Declared vertex count (cross-checked against the decoded graph at
    /// commit).
    pub n: u64,
    /// Declared undirected edge count (cross-checked at commit).
    pub m: u64,
    /// Total canonical encoding length in bytes.
    pub bytes: u64,
    /// Payload bytes per chunk (the last chunk may be shorter). Derived
    /// from the client's line bound via [`chunk_payload_bytes`].
    pub chunk_bytes: u64,
}

impl UploadManifest {
    /// Number of chunks this manifest transfers.
    pub fn chunks(&self) -> u64 {
        if self.chunk_bytes == 0 {
            0
        } else {
            self.bytes.div_ceil(self.chunk_bytes)
        }
    }

    /// Payload length of chunk `index` (the last chunk carries the
    /// remainder).
    pub fn chunk_len(&self, index: u64) -> usize {
        let start = index.saturating_mul(self.chunk_bytes).min(self.bytes);
        let end = start.saturating_add(self.chunk_bytes).min(self.bytes);
        (end - start) as usize
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a sweep.
    Submit(SubmitRequest),
    /// Open (or re-open) a chunked topology upload. Idempotent: repeating
    /// `upload_begin` for a known partial acks its high-water mark, and for
    /// a committed digest answers `upload_done` immediately.
    UploadBegin(UploadManifest),
    /// One bounded chunk of the canonical CSR encoding. Chunks are applied
    /// strictly in order; a replayed (already-acked) index re-acks without
    /// rewriting, an out-of-order future index is a typed `upload_error`.
    UploadChunk {
        /// The upload's content digest (from `upload_begin`).
        digest: u64,
        /// Zero-based chunk index.
        index: u64,
        /// Raw payload bytes (hex on the wire).
        payload: Vec<u8>,
        /// CRC-32 (IEEE) over the payload bytes, checked before the chunk
        /// is accepted.
        crc: u32,
    },
    /// Verify and publish a fully transferred upload into the content
    /// store (whole-encoding digest check, structural validation, atomic
    /// tmp+rename).
    UploadCommit {
        /// The upload's content digest.
        digest: u64,
    },
    /// Query an upload's state: committed, partial (with the ack'd
    /// high-water chunk), or unknown. The reconnect-resume entry point.
    UploadStatus {
        /// The upload's content digest.
        digest: u64,
    },
    /// Re-attach to an in-flight or completed job by digest: the server
    /// replays exactly the job-scoped lines with `seq > last_seq`.
    Resume {
        /// The job digest (the `job` field of every job-scoped line).
        job: u64,
        /// The highest sequence number the client already holds (`0` for
        /// none — trial `i` carries `seq == i + 1`).
        last_seq: u64,
    },
    /// Session keepalive: answered with a `heartbeat` line, resets the
    /// server's idle read timeout.
    Heartbeat,
    /// Liveness probe.
    Ping,
    /// Begin a graceful drain: stop admission, finish or checkpoint
    /// in-flight work, then exit.
    Drain,
    /// Server counters (executed/shed/cache hits/queue depth).
    Stats,
    /// Extended observability: queue depth, active jobs, open sessions,
    /// cache/shed/resume/heartbeat counters.
    Status,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = parse_json(line)?;
    let verb = value
        .get("verb")
        .and_then(Json::as_str)
        .ok_or("missing \"verb\"")?;
    let digest_field = |value: &Json| -> Result<u64, String> {
        let digest = value
            .get("digest")
            .and_then(Json::as_str)
            .ok_or("missing \"digest\"")?;
        u64::from_str_radix(digest, 16).map_err(|_| format!("bad digest {digest:?}"))
    };
    match verb {
        "ping" => Ok(Request::Ping),
        "drain" => Ok(Request::Drain),
        "stats" => Ok(Request::Stats),
        "status" => Ok(Request::Status),
        "heartbeat" => Ok(Request::Heartbeat),
        "upload_begin" => {
            let manifest = UploadManifest {
                digest: digest_field(&value)?,
                n: value
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or("missing \"n\"")?,
                m: value
                    .get("m")
                    .and_then(Json::as_u64)
                    .ok_or("missing \"m\"")?,
                bytes: value
                    .get("bytes")
                    .and_then(Json::as_u64)
                    .ok_or("missing \"bytes\"")?,
                chunk_bytes: value
                    .get("chunk_bytes")
                    .and_then(Json::as_u64)
                    .ok_or("missing \"chunk_bytes\"")?,
            };
            if manifest.bytes == 0 || manifest.chunk_bytes == 0 {
                return Err("upload must carry at least one byte per chunk".to_string());
            }
            let declared = value
                .get("chunks")
                .and_then(Json::as_u64)
                .ok_or("missing \"chunks\"")?;
            if declared != manifest.chunks() {
                return Err(format!(
                    "chunks {declared} inconsistent with bytes {} / chunk_bytes {}",
                    manifest.bytes, manifest.chunk_bytes
                ));
            }
            Ok(Request::UploadBegin(manifest))
        }
        "upload_chunk" => {
            let payload = value
                .get("payload")
                .and_then(Json::as_str)
                .ok_or("missing \"payload\"")?;
            Ok(Request::UploadChunk {
                digest: digest_field(&value)?,
                index: value
                    .get("index")
                    .and_then(Json::as_u64)
                    .ok_or("missing \"index\"")?,
                payload: decode_hex(payload)?,
                crc: value
                    .get("crc")
                    .and_then(Json::as_u64)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or("missing \"crc\"")?,
            })
        }
        "upload_commit" => Ok(Request::UploadCommit {
            digest: digest_field(&value)?,
        }),
        "upload_status" => Ok(Request::UploadStatus {
            digest: digest_field(&value)?,
        }),
        "resume" => {
            let job = value
                .get("job")
                .and_then(Json::as_str)
                .ok_or("missing \"job\"")?;
            let job = u64::from_str_radix(job, 16).map_err(|_| format!("bad job id {job:?}"))?;
            Ok(Request::Resume {
                job,
                last_seq: value.get("last_seq").and_then(Json::as_u64).unwrap_or(0),
            })
        }
        "submit" => {
            let topo = value.get("topology").ok_or("missing \"topology\"")?;
            let family = topo
                .get("family")
                .and_then(Json::as_str)
                .ok_or("missing topology family")?;
            let topology = if family == "uploaded" {
                let digest = topo
                    .get("digest")
                    .and_then(Json::as_str)
                    .ok_or("missing upload digest")?;
                TopologySpec::Uploaded {
                    digest: u64::from_str_radix(digest, 16)
                        .map_err(|_| format!("bad upload digest {digest:?}"))?,
                }
            } else {
                TopologySpec::Family {
                    family: family.to_string(),
                    n: topo
                        .get("n")
                        .and_then(Json::as_u64)
                        .ok_or("missing topology n")? as usize,
                    degree: topo.get("degree").and_then(Json::as_f64).unwrap_or(8.0),
                    exponent: topo.get("exponent").and_then(Json::as_f64).unwrap_or(2.5),
                    seed: topo.get("seed").and_then(Json::as_u64).unwrap_or(1),
                }
            };
            let trials = value
                .get("trials")
                .and_then(Json::as_u64)
                .ok_or("missing \"trials\"")? as usize;
            if trials == 0 {
                return Err("trials must be positive".to_string());
            }
            Ok(Request::Submit(SubmitRequest {
                client: value
                    .get("client")
                    .and_then(Json::as_str)
                    .unwrap_or("anonymous")
                    .to_string(),
                topology,
                protocol: value
                    .get("protocol")
                    .and_then(Json::as_str)
                    .ok_or("missing \"protocol\"")?
                    .to_string(),
                lazy: value.get("lazy").and_then(Json::as_bool).unwrap_or(false),
                trials,
                seed: value.get("seed").and_then(Json::as_u64).unwrap_or(1),
                max_rounds: value
                    .get("max_rounds")
                    .and_then(Json::as_u64)
                    .unwrap_or(100_000),
                deadline_ms: value.get("deadline_ms").and_then(Json::as_u64),
            }))
        }
        other => Err(format!("unknown verb {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Response lines
// ---------------------------------------------------------------------------

/// The `accepted` line opening a submission's response stream (`seq` 0 —
/// trial `i` follows with `seq == i + 1`).
pub fn accepted_line(digest: u64, trials: usize, cached: bool, duplicate: bool) -> String {
    format!(
        "{{\"type\":\"accepted\",\"job\":\"{digest:016x}\",\"seq\":0,\"trials\":{trials},\"cached\":{cached},\"duplicate\":{duplicate}}}"
    )
}

/// The `resumed` line opening a `resume` verb's replay stream: `seq` echoes
/// the resume point, so the next line on the wire carries `seq + 1`.
pub fn resumed_line(digest: u64, trials: usize, last_seq: u64) -> String {
    format!(
        "{{\"type\":\"resumed\",\"job\":\"{digest:016x}\",\"seq\":{last_seq},\"trials\":{trials}}}"
    )
}

/// The typed answer to a `resume` naming a digest this server has neither
/// in flight, in cache, nor fully recorded — the client falls back to an
/// idempotent resubmission.
pub fn unknown_job_line(digest: u64) -> String {
    format!("{{\"type\":\"unknown_job\",\"job\":\"{digest:016x}\"}}")
}

/// Session keepalive answer (and the client's request is
/// `{"verb":"heartbeat"}`).
pub fn heartbeat_line() -> String {
    "{\"type\":\"heartbeat\"}".to_string()
}

/// The `resume` request line.
pub fn resume_request_line(job: u64, last_seq: u64) -> String {
    format!("{{\"verb\":\"resume\",\"job\":\"{job:016x}\",\"last_seq\":{last_seq}}}")
}

/// The typed violation line the bounded reader answers before closing a
/// connection (oversized line, hostile framing).
pub fn protocol_error_line(message: &str) -> String {
    format!(
        "{{\"type\":\"protocol_error\",\"message\":\"{}\"}}",
        escape_json(message)
    )
}

/// Frames one stored job line for a session stream: splices
/// `"job":…,"seq":…` into the line right after its `type` field. Stored
/// trial lines stay unframed (manifest/cache compatible); framing is a pure
/// function of `(job, seq)`, so live, resumed, and cached replays of the
/// same line are byte-identical on the wire.
pub fn with_session(line: &str, job: u64, seq: u64) -> String {
    const TRIAL_PREFIX: &str = "{\"type\":\"trial\",";
    if let Some(rest) = line.strip_prefix(TRIAL_PREFIX) {
        format!("{{\"type\":\"trial\",\"job\":\"{job:016x}\",\"seq\":{seq},{rest}")
    } else {
        // Any other stored line: tag after the opening brace.
        format!(
            "{{\"job\":\"{job:016x}\",\"seq\":{seq},{}",
            line.strip_prefix('{').unwrap_or(line)
        )
    }
}

/// One trial's result line. Field order is fixed and the fields are exactly
/// those that survive a manifest round-trip, so live, recovered, and cached
/// streams are byte-identical.
pub fn trial_line(index: usize, outcome: &TrialOutcome) -> String {
    match outcome {
        TrialOutcome::Completed(o) => format!(
            "{{\"type\":\"trial\",\"index\":{index},\"status\":\"completed\",\"rounds\":{},\"iv\":{},\"ia\":{},\"msgs\":{}}}",
            o.rounds, o.informed_vertices, o.informed_agents, o.total_messages
        ),
        TrialOutcome::RoundCapped(o) => format!(
            "{{\"type\":\"trial\",\"index\":{index},\"status\":\"round-capped\",\"rounds\":{},\"iv\":{},\"ia\":{},\"msgs\":{}}}",
            o.rounds, o.informed_vertices, o.informed_agents, o.total_messages
        ),
        TrialOutcome::TimedOut {
            round,
            informed_vertices,
            informed_agents,
            messages,
        } => format!(
            "{{\"type\":\"trial\",\"index\":{index},\"status\":\"timed-out\",\"rounds\":{round},\"iv\":{informed_vertices},\"ia\":{informed_agents},\"msgs\":{messages}}}"
        ),
        TrialOutcome::Panicked { message, attempts } => format!(
            "{{\"type\":\"trial\",\"index\":{index},\"status\":\"panicked\",\"attempts\":{attempts},\"message\":\"{}\"}}",
            escape_json(message)
        ),
        TrialOutcome::NotRun => {
            format!("{{\"type\":\"trial\",\"index\":{index},\"status\":\"not-run\"}}")
        }
    }
}

/// The terminal `done` line of a job's response stream (`seq` is
/// `trials + 1`, the line after the last trial).
#[allow(clippy::too_many_arguments)]
pub fn done_line(
    digest: u64,
    seq: u64,
    completed: usize,
    round_capped: usize,
    timed_out: usize,
    panicked: usize,
    not_run: usize,
    reused: usize,
    cached: bool,
) -> String {
    format!(
        "{{\"type\":\"done\",\"job\":\"{digest:016x}\",\"seq\":{seq},\"completed\":{completed},\"round_capped\":{round_capped},\"timed_out\":{timed_out},\"panicked\":{panicked},\"not_run\":{not_run},\"reused\":{reused},\"cached\":{cached}}}"
    )
}

/// The typed load-shed rejection line. With `job` set the line answers a
/// specific in-session submission (the multi-job client correlates by it).
pub fn overloaded_line(job: Option<u64>, retry_after_ms: u64) -> String {
    match job {
        Some(job) => format!(
            "{{\"type\":\"overloaded\",\"job\":\"{job:016x}\",\"retry_after_ms\":{retry_after_ms}}}"
        ),
        None => format!("{{\"type\":\"overloaded\",\"retry_after_ms\":{retry_after_ms}}}"),
    }
}

/// The drain notification line: untagged as the answer to a `drain` verb,
/// job-tagged when it terminates one job's feed inside a session.
pub fn draining_line(job: Option<u64>) -> String {
    match job {
        Some(job) => format!("{{\"type\":\"draining\",\"job\":\"{job:016x}\"}}"),
        None => "{\"type\":\"draining\"}".to_string(),
    }
}

/// A fatal per-request error line (validation failure, bad verb, …);
/// job-tagged when rejecting one submission inside a session.
pub fn error_line(job: Option<u64>, message: &str) -> String {
    match job {
        Some(job) => format!(
            "{{\"type\":\"error\",\"job\":\"{job:016x}\",\"message\":\"{}\"}}",
            escape_json(message)
        ),
        None => format!(
            "{{\"type\":\"error\",\"message\":\"{}\"}}",
            escape_json(message)
        ),
    }
}

// ---------------------------------------------------------------------------
// Upload wire lines
// ---------------------------------------------------------------------------

/// JSON overhead budget reserved on an `upload_chunk` line: verb, digest,
/// a 20-digit index, a 10-digit CRC, braces, quotes, and the newline.
const UPLOAD_LINE_OVERHEAD: usize = 128;

/// The upload chunk payload size derived from a line bound: hex encoding
/// doubles the payload, and a 128-byte JSON framing budget (verb, digest,
/// index, CRC, braces, quotes, newline) rides along, so every
/// `upload_chunk` line stays under `max_line_bytes`.
pub fn chunk_payload_bytes(max_line_bytes: usize) -> usize {
    (max_line_bytes.saturating_sub(UPLOAD_LINE_OVERHEAD) / 2).max(1)
}

/// Lowercase hex encoding for binary chunk payloads: every byte maps to two
/// ASCII hex digits, which survive JSON string escaping untouched.
pub fn encode_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    out
}

/// Strict inverse of [`encode_hex`]: even length, hex digits only.
pub fn decode_hex(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err("odd-length hex payload".to_string());
    }
    let digit = |b: u8| -> Result<u8, String> {
        (b as char)
            .to_digit(16)
            .map(|d| d as u8)
            .ok_or_else(|| format!("bad hex digit {:?}", b as char))
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((digit(pair[0])? << 4) | digit(pair[1])?);
    }
    Ok(out)
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xedb88320`) — the per-chunk
/// integrity check on upload payloads.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// The `upload_begin` request line.
pub fn upload_begin_line(manifest: &UploadManifest) -> String {
    format!(
        "{{\"verb\":\"upload_begin\",\"digest\":\"{:016x}\",\"n\":{},\"m\":{},\"bytes\":{},\"chunk_bytes\":{},\"chunks\":{}}}",
        manifest.digest,
        manifest.n,
        manifest.m,
        manifest.bytes,
        manifest.chunk_bytes,
        manifest.chunks(),
    )
}

/// The `upload_chunk` request line with an explicit CRC (tests use this to
/// forge corrupt chunks; [`upload_chunk_line`] computes the honest one).
pub fn upload_chunk_line_with_crc(digest: u64, index: u64, payload: &[u8], crc: u32) -> String {
    format!(
        "{{\"verb\":\"upload_chunk\",\"digest\":\"{digest:016x}\",\"index\":{index},\"payload\":\"{}\",\"crc\":{crc}}}",
        encode_hex(payload)
    )
}

/// The `upload_chunk` request line, CRC computed over the payload.
pub fn upload_chunk_line(digest: u64, index: u64, payload: &[u8]) -> String {
    upload_chunk_line_with_crc(digest, index, payload, crc32(payload))
}

/// The `upload_commit` request line.
pub fn upload_commit_line(digest: u64) -> String {
    format!("{{\"verb\":\"upload_commit\",\"digest\":\"{digest:016x}\"}}")
}

/// The `upload_status` request line.
pub fn upload_status_request_line(digest: u64) -> String {
    format!("{{\"verb\":\"upload_status\",\"digest\":\"{digest:016x}\"}}")
}

/// Chunk acknowledgment: `acked` is the high-water mark — every chunk with
/// index `< acked` is durably applied, so a resuming client starts there.
pub fn upload_ack_line(digest: u64, acked: u64) -> String {
    format!("{{\"type\":\"upload_ack\",\"digest\":\"{digest:016x}\",\"acked\":{acked}}}")
}

/// Commit confirmation: the upload verified, validated, and published
/// atomically into the content store. Also the idempotent answer to
/// `upload_begin`/`upload_commit` on an already-committed digest.
pub fn upload_done_line(digest: u64, bytes: u64) -> String {
    format!("{{\"type\":\"upload_done\",\"digest\":\"{digest:016x}\",\"bytes\":{bytes}}}")
}

/// The `upload_status` answer: `state` is `committed`, `partial`, or
/// `unknown`; `acked`/`chunks` report resume progress for partials.
pub fn upload_status_line(digest: u64, state: &str, acked: u64, chunks: u64) -> String {
    format!(
        "{{\"type\":\"upload_status\",\"digest\":\"{digest:016x}\",\"state\":\"{}\",\"acked\":{acked},\"chunks\":{chunks}}}",
        escape_json(state)
    )
}

/// A typed upload failure (CRC mismatch, out-of-order chunk, digest or
/// validation failure at commit, quota) — never a panic, never a hang.
pub fn upload_error_line(digest: u64, message: &str) -> String {
    format!(
        "{{\"type\":\"upload_error\",\"digest\":\"{digest:016x}\",\"message\":\"{}\"}}",
        escape_json(message)
    )
}

/// The typed answer to a submission naming an uploaded digest the content
/// store no longer holds (evicted, or never uploaded): the client's cue to
/// re-upload and resubmit idempotently. `job` tags the rejected submission;
/// `digest` names the missing topology.
pub fn unknown_topology_line(job: u64, digest: u64) -> String {
    format!("{{\"type\":\"unknown_topology\",\"job\":\"{job:016x}\",\"digest\":\"{digest:016x}\"}}")
}

/// The `status` verb's answer: scheduler load plus session-layer counters.
/// One struct both ends share — the server renders it with [`status_line`],
/// the client parses it back with [`ServerStatus::from_json`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStatus {
    /// Trials currently queued or running.
    pub queue_depth: usize,
    /// Jobs currently open.
    pub active_jobs: usize,
    /// Trials actually executed (excludes manifest/cache reuse).
    pub executed: usize,
    /// Submissions rejected by admission control.
    pub shed: usize,
    /// Submissions answered from the result cache.
    pub cache_hits: usize,
    /// Submissions attached to an identical in-flight job.
    pub duplicate_hits: usize,
    /// Connections currently open.
    pub open_sessions: u64,
    /// Connections accepted over the server's lifetime.
    pub sessions_opened: u64,
    /// `resume` verbs served.
    pub resumes: u64,
    /// Lines replayed onto re-attached streams.
    pub replayed_lines: u64,
    /// Heartbeat verbs answered.
    pub heartbeats: u64,
    /// Violations answered with a typed `protocol_error`/`error` line.
    pub protocol_errors: u64,
    /// Half-open connections reclaimed by the idle timeout.
    pub idle_reaped: u64,
    /// Committed graphs currently in the content store.
    pub graphs_stored: usize,
    /// Bytes of committed canonical encodings currently stored.
    pub store_bytes: u64,
    /// Committed graphs evicted by the byte quota over the server's
    /// lifetime.
    pub evictions: u64,
    /// Partial (begun, uncommitted) uploads currently held.
    pub partial_uploads: usize,
    /// Uploads rejected at commit (digest mismatch, CRC, structural
    /// validation) over the server's lifetime.
    pub failed_validations: u64,
}

impl ServerStatus {
    /// Parses a `status` line's JSON object back into the struct.
    pub fn from_json(value: &Json) -> Option<ServerStatus> {
        let field = |key: &str| value.get(key).and_then(Json::as_u64);
        Some(ServerStatus {
            queue_depth: field("queue_depth")? as usize,
            active_jobs: field("active_jobs")? as usize,
            executed: field("executed")? as usize,
            shed: field("shed")? as usize,
            cache_hits: field("cache_hits")? as usize,
            duplicate_hits: field("duplicate_hits")? as usize,
            open_sessions: field("open_sessions")?,
            sessions_opened: field("sessions_opened")?,
            resumes: field("resumes")?,
            replayed_lines: field("replayed_lines")?,
            heartbeats: field("heartbeats")?,
            protocol_errors: field("protocol_errors")?,
            idle_reaped: field("idle_reaped")?,
            graphs_stored: field("graphs_stored")? as usize,
            store_bytes: field("store_bytes")?,
            evictions: field("evictions")?,
            partial_uploads: field("partial_uploads")? as usize,
            failed_validations: field("failed_validations")?,
        })
    }
}

/// The `status` verb's answer line.
pub fn status_line(status: &ServerStatus) -> String {
    format!(
        "{{\"type\":\"status\",\"queue_depth\":{},\"active_jobs\":{},\"executed\":{},\"shed\":{},\"cache_hits\":{},\"duplicate_hits\":{},\"open_sessions\":{},\"sessions_opened\":{},\"resumes\":{},\"replayed_lines\":{},\"heartbeats\":{},\"protocol_errors\":{},\"idle_reaped\":{},\"graphs_stored\":{},\"store_bytes\":{},\"evictions\":{},\"partial_uploads\":{},\"failed_validations\":{}}}",
        status.queue_depth,
        status.active_jobs,
        status.executed,
        status.shed,
        status.cache_hits,
        status.duplicate_hits,
        status.open_sessions,
        status.sessions_opened,
        status.resumes,
        status.replayed_lines,
        status.heartbeats,
        status.protocol_errors,
        status.idle_reaped,
        status.graphs_stored,
        status.store_bytes,
        status.evictions,
        status.partial_uploads,
        status.failed_validations,
    )
}

/// FNV-1a 64-bit — the workspace's standing digest primitive (snapshot
/// checksums, spec digests), reused for job idempotency keys and client
/// retry jitter.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::BroadcastOutcome;

    #[test]
    fn json_round_trips_the_submit_line() {
        let mut request = SubmitRequest::new("alice", TopologySpec::new("complete", 64), "push", 8);
        request.deadline_ms = Some(1500);
        let line = request.to_line();
        match parse_request(&line).unwrap() {
            Request::Submit(parsed) => assert_eq!(parsed, request),
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_garbage_and_trailing_bytes() {
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{\"verb\" \"submit\"}").is_err());
        assert!(parse_request("{\"verb\":\"explode\"}").is_err());
        assert!(parse_request("{\"verb\":\"submit\"}").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v =
            parse_json(r#"{"s":"a\"b\nA","i":-3,"f":1.5,"b":true,"x":null,"a":[1,2]}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\nA"));
        assert_eq!(v.get("i"), Some(&Json::Int(-3)));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
        assert_eq!(
            v.get("a"),
            Some(&Json::Array(vec![Json::Int(1), Json::Int(2)]))
        );
        // u64 seeds survive exactly.
        let big = parse_json(&format!("{{\"seed\":{}}}", u64::MAX)).unwrap();
        assert_eq!(big.get("seed").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn digest_ignores_client_and_deadline() {
        let a = SubmitRequest::new("alice", TopologySpec::new("star", 32), "push", 4);
        let mut b = SubmitRequest::new("bob", TopologySpec::new("star", 32), "push", 4);
        b.deadline_ms = Some(10);
        assert_eq!(a.digest(), b.digest());
        let c = SubmitRequest::new("alice", TopologySpec::new("star", 33), "push", 4);
        assert_ne!(a.digest(), c.digest());
        let d = SubmitRequest::new("alice", TopologySpec::new("star", 32), "pull", 4);
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn topology_families_build_on_the_cheap_backends() {
        assert!(TopologySpec::new("complete", 16).build().is_ok());
        assert!(TopologySpec::new("star", 16).build().is_ok());
        assert!(TopologySpec::new("double-star", 16).build().is_ok());
        assert!(TopologySpec::new("cycle", 16).build().is_ok());
        assert!(TopologySpec::new("path", 16).build().is_ok());
        assert!(TopologySpec::new("hypercube", 4).build().is_ok());
        assert!(TopologySpec::new("gnp", 64).build().is_ok());
        assert!(TopologySpec::new("chung-lu", 64).build().is_ok());
        assert!(TopologySpec::new("torus", 64).build().is_err());
        // Structured families land on the implicit backend.
        let star = TopologySpec::new("star", 1_000_000).build().unwrap();
        assert!(star.memory_bytes() < 100);
    }

    #[test]
    fn hub_cached_family_builds_the_hybrid_backend() {
        use rumor_graphs::Topology;
        let spec = TopologySpec::new("chung_lu_hub_cached", 512)
            .with_degree(6.0)
            .with_exponent(2.5)
            .with_topology_seed(9);
        let topology = spec.build().unwrap();
        let cached = topology.as_hub_cached().expect("hub-cached backend");
        assert_eq!(cached.num_vertices(), 512);
        assert_eq!(cached.hub_count(), 8, "default policy is n/64 hubs");
        // Same instance as the uncached family: identical edge set...
        let uncached = TopologySpec::new("chung-lu", 512)
            .with_degree(6.0)
            .with_exponent(2.5)
            .with_topology_seed(9)
            .build()
            .unwrap();
        assert_eq!(topology.num_edges(), uncached.num_edges());
        // ...but a distinct job digest (the family name is canonical).
        let a = SubmitRequest::new("alice", spec, "meet-exchange", 2);
        let b = SubmitRequest::new(
            "alice",
            TopologySpec::new("chung-lu", 512)
                .with_degree(6.0)
                .with_exponent(2.5)
                .with_topology_seed(9),
            "meet-exchange",
            2,
        );
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn trial_lines_are_stable() {
        let outcome = TrialOutcome::Completed(BroadcastOutcome {
            protocol: "push".to_string(),
            rounds: 9,
            completed: true,
            informed_vertices: 64,
            informed_agents: 0,
            total_messages: 230,
            history: Vec::new(),
            edge_traffic: None,
        });
        assert_eq!(
            trial_line(3, &outcome),
            "{\"type\":\"trial\",\"index\":3,\"status\":\"completed\",\"rounds\":9,\"iv\":64,\"ia\":0,\"msgs\":230}"
        );
        let panicked = TrialOutcome::Panicked {
            message: "boom \"quoted\"".to_string(),
            attempts: 2,
        };
        let line = trial_line(0, &panicked);
        assert!(line.contains("\\\"quoted\\\""), "line: {line}");
        // Every response line parses back.
        for line in [
            trial_line(0, &outcome),
            trial_line(0, &panicked),
            trial_line(0, &TrialOutcome::NotRun),
            with_session(&trial_line(0, &outcome), 7, 1),
            accepted_line(7, 4, false, true),
            resumed_line(7, 4, 2),
            unknown_job_line(7),
            heartbeat_line(),
            protocol_error_line("line too long"),
            done_line(7, 5, 4, 0, 0, 0, 0, 2, false),
            overloaded_line(None, 250),
            overloaded_line(Some(7), 250),
            draining_line(None),
            draining_line(Some(7)),
            error_line(None, "bad \"spec\""),
            error_line(Some(7), "bad \"spec\""),
            status_line(&ServerStatus::default()),
            upload_ack_line(7, 3),
            upload_done_line(7, 4096),
            upload_status_line(7, "partial", 2, 5),
            upload_error_line(7, "crc mismatch on chunk \"3\""),
            unknown_topology_line(7, 9),
        ] {
            parse_json(&line).unwrap_or_else(|e| panic!("unparseable line {line}: {e}"));
        }
    }

    #[test]
    fn status_round_trips() {
        let status = ServerStatus {
            queue_depth: 1,
            active_jobs: 2,
            executed: 3,
            shed: 4,
            cache_hits: 5,
            duplicate_hits: 6,
            open_sessions: 7,
            sessions_opened: 8,
            resumes: 9,
            replayed_lines: 10,
            heartbeats: 11,
            protocol_errors: 12,
            idle_reaped: 13,
            graphs_stored: 14,
            store_bytes: 15,
            evictions: 16,
            partial_uploads: 17,
            failed_validations: 18,
        };
        let parsed = parse_json(&status_line(&status)).unwrap();
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("status"));
        assert_eq!(ServerStatus::from_json(&parsed), Some(status));
    }

    #[test]
    fn session_framing_is_a_fixed_splice() {
        let outcome = TrialOutcome::NotRun;
        let framed = with_session(&trial_line(2, &outcome), 0xabc, 3);
        assert_eq!(
            framed,
            "{\"type\":\"trial\",\"job\":\"0000000000000abc\",\"seq\":3,\"index\":2,\"status\":\"not-run\"}"
        );
        let parsed = parse_json(&framed).unwrap();
        assert_eq!(
            parsed.get("job").and_then(Json::as_str),
            Some("0000000000000abc")
        );
        assert_eq!(parsed.get("seq").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("index").and_then(Json::as_u64), Some(2));
        // Framing is pure: same inputs, same bytes.
        assert_eq!(framed, with_session(&trial_line(2, &outcome), 0xabc, 3));
    }

    #[test]
    fn session_verbs_round_trip() {
        let line = resume_request_line(0xdead_beef, 17);
        match parse_request(&line).unwrap() {
            Request::Resume { job, last_seq } => {
                assert_eq!(job, 0xdead_beef);
                assert_eq!(last_seq, 17);
            }
            other => panic!("expected resume, got {other:?}"),
        }
        assert_eq!(
            parse_request("{\"verb\":\"heartbeat\"}").unwrap(),
            Request::Heartbeat
        );
        assert_eq!(
            parse_request("{\"verb\":\"status\"}").unwrap(),
            Request::Status
        );
        // Malformed job ids are rejected, not panics.
        assert!(parse_request("{\"verb\":\"resume\",\"job\":\"zz\"}").is_err());
        assert!(parse_request("{\"verb\":\"resume\"}").is_err());
    }

    #[test]
    fn hex_and_crc_are_exact() {
        assert_eq!(encode_hex(&[0x00, 0xff, 0x3a]), "00ff3a");
        assert_eq!(decode_hex("00ff3a").unwrap(), vec![0x00, 0xff, 0x3a]);
        assert!(decode_hex("0").is_err());
        assert!(decode_hex("zz").is_err());
        // CRC-32 of "123456789" is the standard check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn upload_verbs_round_trip() {
        let manifest = UploadManifest {
            digest: 0xfeed_f00d,
            n: 100,
            m: 250,
            bytes: 2428,
            chunk_bytes: 1000,
        };
        assert_eq!(manifest.chunks(), 3);
        assert_eq!(manifest.chunk_len(0), 1000);
        assert_eq!(manifest.chunk_len(2), 428);
        assert_eq!(manifest.chunk_len(3), 0);
        match parse_request(&upload_begin_line(&manifest)).unwrap() {
            Request::UploadBegin(parsed) => assert_eq!(parsed, manifest),
            other => panic!("expected upload_begin, got {other:?}"),
        }
        let payload = vec![0u8, 1, 2, 0xfe, 0xff];
        match parse_request(&upload_chunk_line(0xfeed_f00d, 2, &payload)).unwrap() {
            Request::UploadChunk {
                digest,
                index,
                payload: parsed,
                crc,
            } => {
                assert_eq!(digest, 0xfeed_f00d);
                assert_eq!(index, 2);
                assert_eq!(crc, crc32(&parsed));
                assert_eq!(parsed, payload);
            }
            other => panic!("expected upload_chunk, got {other:?}"),
        }
        assert_eq!(
            parse_request(&upload_commit_line(7)).unwrap(),
            Request::UploadCommit { digest: 7 }
        );
        assert_eq!(
            parse_request(&upload_status_request_line(7)).unwrap(),
            Request::UploadStatus { digest: 7 }
        );
        // Inconsistent chunk counts and empty uploads are rejected typed.
        assert!(parse_request(
            "{\"verb\":\"upload_begin\",\"digest\":\"1\",\"n\":2,\"m\":1,\"bytes\":10,\"chunk_bytes\":4,\"chunks\":2}"
        )
        .is_err());
        assert!(parse_request(
            "{\"verb\":\"upload_begin\",\"digest\":\"1\",\"n\":2,\"m\":1,\"bytes\":0,\"chunk_bytes\":4,\"chunks\":0}"
        )
        .is_err());
    }

    #[test]
    fn uploaded_topology_round_trips_and_digests_distinctly() {
        let request = SubmitRequest::new("carol", TopologySpec::uploaded(0xabcd), "push", 4);
        let line = request.to_line();
        assert!(line.contains("\"family\":\"uploaded\""), "line: {line}");
        assert!(
            line.contains("\"digest\":\"000000000000abcd\""),
            "line: {line}"
        );
        match parse_request(&line).unwrap() {
            Request::Submit(parsed) => assert_eq!(parsed, request),
            other => panic!("expected submit, got {other:?}"),
        }
        let family = SubmitRequest::new("carol", TopologySpec::new("complete", 64), "push", 4);
        assert_ne!(request.digest(), family.digest());
        let other = SubmitRequest::new("carol", TopologySpec::uploaded(0xabce), "push", 4);
        assert_ne!(request.digest(), other.digest());
        // Uploaded specs refuse to build standalone — the scheduler resolves
        // them through the content store instead.
        assert!(request.topology.build().is_err());
        assert_eq!(request.topology.uploaded_digest(), Some(0xabcd));
    }

    #[test]
    fn chunk_payload_bytes_fit_the_line_bound() {
        for bound in [1024usize, 4096, MAX_LINE_BYTES, 256 * 1024] {
            let payload = vec![0xa5u8; chunk_payload_bytes(bound)];
            let line = upload_chunk_line(u64::MAX, u64::MAX, &payload);
            assert!(
                line.len() < bound,
                "chunk line ({} bytes) must stay under the {bound}-byte bound",
                line.len()
            );
        }
        assert_eq!(chunk_payload_bytes(0), 1, "bound never collapses to zero");
    }
}
