//! The `rumor-serve` wire protocol: newline-delimited JSON over TCP.
//!
//! The workspace's `serde` is a vendored no-op facade (marker traits only),
//! so the wire layer is hand-rolled: a strict parser for a small JSON value
//! type ([`Json`]) plus line builders with **fixed field order**, which is
//! what makes result lines byte-identical across live execution, manifest
//! recovery, and cache replay.
//!
//! One request line per connection, a stream of response lines back:
//!
//! ```text
//! → {"verb":"submit","client":"alice","topology":{"family":"complete","n":64},
//!    "protocol":"push","trials":8,"seed":1,"max_rounds":100000}
//! ← {"type":"accepted","job":"a1b2c3d4e5f60718","trials":8,"cached":false,"duplicate":false}
//! ← {"type":"trial","index":0,"status":"completed","rounds":9,"iv":64,"ia":0,"msgs":230}
//! ← …one line per trial, in trial-index order…
//! ← {"type":"done","job":"a1b2c3d4e5f60718","completed":8,"round_capped":0,
//!    "timed_out":0,"panicked":0,"not_run":0,"reused":0,"cached":false}
//! ```
//!
//! Overload, drain, and validation failures answer with a single typed line
//! (`overloaded`, `draining`, `error`) and close the connection — a request
//! never hangs.

use std::collections::BTreeMap;

use rumor_core::{ProtocolKind, SimulationSpec};
use rumor_graphs::{AnyTopology, GeneratedGraph, ImplicitGraph};

use crate::runner::TrialOutcome;

// ---------------------------------------------------------------------------
// JSON values
// ---------------------------------------------------------------------------

/// A parsed JSON value (the subset the protocol uses; no exponent-heavy
/// float edge cases beyond what `f64::from_str` accepts).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (kept exact so `u64` seeds survive the wire).
    Int(i128),
    /// A non-integer number literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by this protocol;
                        // lone surrogates map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err("expected ',' or ']'".to_string()),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err("expected object key".to_string());
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err("expected ':'".to_string());
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err("expected ',' or '}'".to_string()),
        }
    }
}

/// Escapes a string for embedding in a JSON line.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// The topology half of a submission: a named family plus its parameters.
///
/// Families map onto the workspace's cheap backends — implicit graphs for
/// the paper's structured families, the seed-keyed generated backend for
/// random ones — so a submission never ships an edge list over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// Family name: `complete`, `star`, `double-star`, `path`, `cycle`,
    /// `hypercube` (where `n` is the dimension), `gnp`, or `chung-lu`.
    pub family: String,
    /// Vertex-count parameter (leaves for the star families, dimension for
    /// `hypercube`).
    pub n: usize,
    /// Target mean degree (`gnp`, `chung-lu` only).
    pub degree: f64,
    /// Power-law exponent (`chung-lu` only).
    pub exponent: f64,
    /// Topology seed (`gnp`, `chung-lu` only).
    pub seed: u64,
}

impl TopologySpec {
    /// A spec for one of the parameter-free families.
    pub fn new(family: &str, n: usize) -> Self {
        TopologySpec {
            family: family.to_string(),
            n,
            degree: 8.0,
            exponent: 2.5,
            seed: 1,
        }
    }

    /// Builds the topology, choosing the cheapest backend for the family.
    pub fn build(&self) -> Result<AnyTopology, String> {
        let fail = |e: rumor_graphs::GraphError| format!("topology {}: {e}", self.family);
        match self.family.as_str() {
            "complete" => ImplicitGraph::complete(self.n)
                .map(AnyTopology::from)
                .map_err(fail),
            "star" => ImplicitGraph::star(self.n)
                .map(AnyTopology::from)
                .map_err(fail),
            "double-star" => ImplicitGraph::double_star(self.n)
                .map(AnyTopology::from)
                .map_err(fail),
            "path" => ImplicitGraph::path(self.n)
                .map(AnyTopology::from)
                .map_err(fail),
            "cycle" => ImplicitGraph::cycle(self.n)
                .map(AnyTopology::from)
                .map_err(fail),
            "hypercube" => u32::try_from(self.n)
                .map_err(|_| "hypercube dimension out of range".to_string())
                .and_then(|dim| ImplicitGraph::hypercube(dim).map_err(fail))
                .map(AnyTopology::from),
            "gnp" => GeneratedGraph::gnp_with_mean_degree(self.n, self.degree, self.seed)
                .map(AnyTopology::from)
                .map_err(fail),
            "chung-lu" => GeneratedGraph::chung_lu(self.n, self.exponent, self.degree, self.seed)
                .map(AnyTopology::from)
                .map_err(fail),
            other => Err(format!("unknown topology family {other:?}")),
        }
    }

    fn canonical(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}",
            self.family, self.n, self.degree, self.exponent, self.seed
        )
    }
}

/// One sweep submission: what to run, how many trials, and under which
/// budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Client name — the fairness unit for the scheduler's round-robin.
    /// Excluded from the job digest, so identical specs from different
    /// clients share one execution.
    pub client: String,
    /// The graph to run on.
    pub topology: TopologySpec,
    /// Protocol name (see [`ProtocolKind::from_name`]).
    pub protocol: String,
    /// Lazy agent walks (the paper's bipartite remedy); `adapted_to` is
    /// applied server-side regardless.
    pub lazy: bool,
    /// Number of trials (seeds `seed, seed+1, …`).
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Round cap per trial.
    pub max_rounds: u64,
    /// Optional wall-clock budget for the whole submission, enforced at
    /// chunk cadence: expired mid-trial suspends into
    /// [`TrialOutcome::TimedOut`], unclaimed trials report
    /// [`TrialOutcome::NotRun`]. Excluded from the job digest.
    pub deadline_ms: Option<u64>,
}

impl SubmitRequest {
    /// A submission with the default budgets: no deadline, 100k-round cap.
    pub fn new(client: &str, topology: TopologySpec, protocol: &str, trials: usize) -> Self {
        SubmitRequest {
            client: client.to_string(),
            topology,
            protocol: protocol.to_string(),
            lazy: false,
            trials,
            seed: 1,
            max_rounds: 100_000,
            deadline_ms: None,
        }
    }

    /// The idempotency key: FNV-1a-64 over the canonical job description,
    /// **excluding** the client name and the deadline — so a retry, or the
    /// same study submitted by a second client, is a cache or manifest hit
    /// rather than a re-execution.
    pub fn digest(&self) -> u64 {
        fnv1a64(
            format!(
                "serve1:{}:{}:{}:{}:{}:{}",
                self.topology.canonical(),
                self.protocol,
                self.lazy,
                self.trials,
                self.seed,
                self.max_rounds
            )
            .as_bytes(),
        )
    }

    /// Builds the validated simulation spec for this request (topology must
    /// be built by the caller; validation needs the graph).
    pub fn to_spec(&self) -> Result<SimulationSpec, String> {
        let kind = ProtocolKind::from_name(&self.protocol)
            .ok_or_else(|| format!("unknown protocol {:?}", self.protocol))?;
        let mut spec = SimulationSpec::new(kind)
            .with_seed(self.seed)
            .with_max_rounds(self.max_rounds);
        if self.lazy {
            spec = spec.with_agents(rumor_core::AgentConfig::default().lazy());
        }
        Ok(spec)
    }

    /// Renders the request as its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "{{\"verb\":\"submit\",\"client\":\"{}\",\"topology\":{{\"family\":\"{}\",\"n\":{},\"degree\":{},\"exponent\":{},\"seed\":{}}},\"protocol\":\"{}\",\"lazy\":{},\"trials\":{},\"seed\":{},\"max_rounds\":{}",
            escape_json(&self.client),
            escape_json(&self.topology.family),
            self.topology.n,
            self.topology.degree,
            self.topology.exponent,
            self.topology.seed,
            escape_json(&self.protocol),
            self.lazy,
            self.trials,
            self.seed,
            self.max_rounds,
        );
        if let Some(deadline) = self.deadline_ms {
            line.push_str(&format!(",\"deadline_ms\":{deadline}"));
        }
        line.push('}');
        line
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a sweep.
    Submit(SubmitRequest),
    /// Liveness probe.
    Ping,
    /// Begin a graceful drain: stop admission, finish or checkpoint
    /// in-flight work, then exit.
    Drain,
    /// Server counters (executed/shed/cache hits/queue depth).
    Stats,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = parse_json(line)?;
    let verb = value
        .get("verb")
        .and_then(Json::as_str)
        .ok_or("missing \"verb\"")?;
    match verb {
        "ping" => Ok(Request::Ping),
        "drain" => Ok(Request::Drain),
        "stats" => Ok(Request::Stats),
        "submit" => {
            let topo = value.get("topology").ok_or("missing \"topology\"")?;
            let topology = TopologySpec {
                family: topo
                    .get("family")
                    .and_then(Json::as_str)
                    .ok_or("missing topology family")?
                    .to_string(),
                n: topo
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or("missing topology n")? as usize,
                degree: topo.get("degree").and_then(Json::as_f64).unwrap_or(8.0),
                exponent: topo.get("exponent").and_then(Json::as_f64).unwrap_or(2.5),
                seed: topo.get("seed").and_then(Json::as_u64).unwrap_or(1),
            };
            let trials = value
                .get("trials")
                .and_then(Json::as_u64)
                .ok_or("missing \"trials\"")? as usize;
            if trials == 0 {
                return Err("trials must be positive".to_string());
            }
            Ok(Request::Submit(SubmitRequest {
                client: value
                    .get("client")
                    .and_then(Json::as_str)
                    .unwrap_or("anonymous")
                    .to_string(),
                topology,
                protocol: value
                    .get("protocol")
                    .and_then(Json::as_str)
                    .ok_or("missing \"protocol\"")?
                    .to_string(),
                lazy: value.get("lazy").and_then(Json::as_bool).unwrap_or(false),
                trials,
                seed: value.get("seed").and_then(Json::as_u64).unwrap_or(1),
                max_rounds: value
                    .get("max_rounds")
                    .and_then(Json::as_u64)
                    .unwrap_or(100_000),
                deadline_ms: value.get("deadline_ms").and_then(Json::as_u64),
            }))
        }
        other => Err(format!("unknown verb {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Response lines
// ---------------------------------------------------------------------------

/// The `accepted` line opening a submission's response stream.
pub fn accepted_line(digest: u64, trials: usize, cached: bool, duplicate: bool) -> String {
    format!(
        "{{\"type\":\"accepted\",\"job\":\"{digest:016x}\",\"trials\":{trials},\"cached\":{cached},\"duplicate\":{duplicate}}}"
    )
}

/// One trial's result line. Field order is fixed and the fields are exactly
/// those that survive a manifest round-trip, so live, recovered, and cached
/// streams are byte-identical.
pub fn trial_line(index: usize, outcome: &TrialOutcome) -> String {
    match outcome {
        TrialOutcome::Completed(o) => format!(
            "{{\"type\":\"trial\",\"index\":{index},\"status\":\"completed\",\"rounds\":{},\"iv\":{},\"ia\":{},\"msgs\":{}}}",
            o.rounds, o.informed_vertices, o.informed_agents, o.total_messages
        ),
        TrialOutcome::RoundCapped(o) => format!(
            "{{\"type\":\"trial\",\"index\":{index},\"status\":\"round-capped\",\"rounds\":{},\"iv\":{},\"ia\":{},\"msgs\":{}}}",
            o.rounds, o.informed_vertices, o.informed_agents, o.total_messages
        ),
        TrialOutcome::TimedOut {
            round,
            informed_vertices,
            informed_agents,
            messages,
        } => format!(
            "{{\"type\":\"trial\",\"index\":{index},\"status\":\"timed-out\",\"rounds\":{round},\"iv\":{informed_vertices},\"ia\":{informed_agents},\"msgs\":{messages}}}"
        ),
        TrialOutcome::Panicked { message, attempts } => format!(
            "{{\"type\":\"trial\",\"index\":{index},\"status\":\"panicked\",\"attempts\":{attempts},\"message\":\"{}\"}}",
            escape_json(message)
        ),
        TrialOutcome::NotRun => {
            format!("{{\"type\":\"trial\",\"index\":{index},\"status\":\"not-run\"}}")
        }
    }
}

/// The terminal `done` line of a submission's response stream.
#[allow(clippy::too_many_arguments)]
pub fn done_line(
    digest: u64,
    completed: usize,
    round_capped: usize,
    timed_out: usize,
    panicked: usize,
    not_run: usize,
    reused: usize,
    cached: bool,
) -> String {
    format!(
        "{{\"type\":\"done\",\"job\":\"{digest:016x}\",\"completed\":{completed},\"round_capped\":{round_capped},\"timed_out\":{timed_out},\"panicked\":{panicked},\"not_run\":{not_run},\"reused\":{reused},\"cached\":{cached}}}"
    )
}

/// The typed load-shed rejection line.
pub fn overloaded_line(retry_after_ms: u64) -> String {
    format!("{{\"type\":\"overloaded\",\"retry_after_ms\":{retry_after_ms}}}")
}

/// The drain notification line (sent both as the answer to a `drain` verb
/// and as the terminal line of streams cut short by a drain).
pub fn draining_line() -> String {
    "{\"type\":\"draining\"}".to_string()
}

/// A fatal per-request error line (validation failure, bad verb, …).
pub fn error_line(message: &str) -> String {
    format!(
        "{{\"type\":\"error\",\"message\":\"{}\"}}",
        escape_json(message)
    )
}

/// FNV-1a 64-bit — the workspace's standing digest primitive (snapshot
/// checksums, spec digests), reused for job idempotency keys and client
/// retry jitter.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::BroadcastOutcome;

    #[test]
    fn json_round_trips_the_submit_line() {
        let mut request = SubmitRequest::new("alice", TopologySpec::new("complete", 64), "push", 8);
        request.deadline_ms = Some(1500);
        let line = request.to_line();
        match parse_request(&line).unwrap() {
            Request::Submit(parsed) => assert_eq!(parsed, request),
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_garbage_and_trailing_bytes() {
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{\"verb\" \"submit\"}").is_err());
        assert!(parse_request("{\"verb\":\"explode\"}").is_err());
        assert!(parse_request("{\"verb\":\"submit\"}").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v =
            parse_json(r#"{"s":"a\"b\nA","i":-3,"f":1.5,"b":true,"x":null,"a":[1,2]}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\nA"));
        assert_eq!(v.get("i"), Some(&Json::Int(-3)));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
        assert_eq!(
            v.get("a"),
            Some(&Json::Array(vec![Json::Int(1), Json::Int(2)]))
        );
        // u64 seeds survive exactly.
        let big = parse_json(&format!("{{\"seed\":{}}}", u64::MAX)).unwrap();
        assert_eq!(big.get("seed").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn digest_ignores_client_and_deadline() {
        let a = SubmitRequest::new("alice", TopologySpec::new("star", 32), "push", 4);
        let mut b = SubmitRequest::new("bob", TopologySpec::new("star", 32), "push", 4);
        b.deadline_ms = Some(10);
        assert_eq!(a.digest(), b.digest());
        let c = SubmitRequest::new("alice", TopologySpec::new("star", 33), "push", 4);
        assert_ne!(a.digest(), c.digest());
        let d = SubmitRequest::new("alice", TopologySpec::new("star", 32), "pull", 4);
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn topology_families_build_on_the_cheap_backends() {
        assert!(TopologySpec::new("complete", 16).build().is_ok());
        assert!(TopologySpec::new("star", 16).build().is_ok());
        assert!(TopologySpec::new("double-star", 16).build().is_ok());
        assert!(TopologySpec::new("cycle", 16).build().is_ok());
        assert!(TopologySpec::new("path", 16).build().is_ok());
        assert!(TopologySpec::new("hypercube", 4).build().is_ok());
        assert!(TopologySpec::new("gnp", 64).build().is_ok());
        assert!(TopologySpec::new("chung-lu", 64).build().is_ok());
        assert!(TopologySpec::new("torus", 64).build().is_err());
        // Structured families land on the implicit backend.
        let star = TopologySpec::new("star", 1_000_000).build().unwrap();
        assert!(star.memory_bytes() < 100);
    }

    #[test]
    fn trial_lines_are_stable() {
        let outcome = TrialOutcome::Completed(BroadcastOutcome {
            protocol: "push".to_string(),
            rounds: 9,
            completed: true,
            informed_vertices: 64,
            informed_agents: 0,
            total_messages: 230,
            history: Vec::new(),
            edge_traffic: None,
        });
        assert_eq!(
            trial_line(3, &outcome),
            "{\"type\":\"trial\",\"index\":3,\"status\":\"completed\",\"rounds\":9,\"iv\":64,\"ia\":0,\"msgs\":230}"
        );
        let panicked = TrialOutcome::Panicked {
            message: "boom \"quoted\"".to_string(),
            attempts: 2,
        };
        let line = trial_line(0, &panicked);
        assert!(line.contains("\\\"quoted\\\""), "line: {line}");
        // Every response line parses back.
        for line in [
            trial_line(0, &outcome),
            trial_line(0, &panicked),
            trial_line(0, &TrialOutcome::NotRun),
            accepted_line(7, 4, false, true),
            done_line(7, 4, 0, 0, 0, 0, 2, false),
            overloaded_line(250),
            draining_line(),
            error_line("bad \"spec\""),
        ] {
            parse_json(&line).unwrap_or_else(|e| panic!("unparseable line {line}: {e}"));
        }
    }
}
