//! Simulation-as-a-service: the `rumor-serve` server and client library.
//!
//! A std-only (blocking TCP, thread-per-core — the vendored-deps rule
//! forbids an async runtime) long-running server that accepts
//! newline-delimited JSON sweep submissions, validates them through
//! [`rumor_core::SimulationSpec::validate`], runs them on a shared worker
//! pool with **per-client round-robin fairness**, and streams one result
//! line per trial back. Robustness is mechanical, not best-effort:
//!
//! * **Admission control + load shedding** — a bounded submission queue
//!   ([`AdmissionLimits`]); past it, submissions get a typed
//!   `overloaded {retry_after_ms}` rejection instead of queueing without
//!   bound ([`shed`]).
//! * **Per-request deadlines** — a submission's optional `deadline_ms` is
//!   enforced at chunk cadence: running trials suspend into the existing
//!   `TrialOutcome::TimedOut` taxonomy, unclaimed ones report `NotRun`, and
//!   the connection always terminates with a typed line — never a hang.
//! * **Graceful degradation + shutdown** — a `drain` request stops
//!   admission, lets in-flight trials finish or checkpoint (PR 6 snapshot
//!   sink), and exits. Hard kills (`SIGKILL`/`SIGTERM` — this crate forbids
//!   `unsafe`, so no in-process signal handler) are crash-equivalent by
//!   design: every finished trial is already in a digest-keyed manifest
//!   written through atomic renames, so a restarted server loses **zero
//!   completed trials**.
//! * **Client-side resilience** — [`ServeClient`] retries shed, draining,
//!   and transport failures with exponential backoff plus deterministic
//!   jitter; submissions are idempotent (digest-keyed), so retries are free
//!   cache/manifest hits.
//! * **Result cache** — a spec-digest → result cache answers duplicate
//!   submissions in O(1) with byte-identical trial lines.
//!
//! See the README's *Serving* section for the wire protocol and
//! operational guarantees, and `rumor-serve --help` for the binary.

pub mod client;
pub mod protocol;
mod scheduler;
mod server;
pub mod shed;

pub use client::{ClientError, JobResult, RetryPolicy, ServeClient};
pub use protocol::{SubmitRequest, TopologySpec};
pub use scheduler::{ServeConfig, ServeStats};
pub use server::{Server, ServerHandle};
pub use shed::AdmissionLimits;
