//! Simulation-as-a-service: the `rumor-serve` server and client library.
//!
//! A std-only (blocking TCP, thread-per-core — the vendored-deps rule
//! forbids an async runtime) long-running server that accepts
//! newline-delimited JSON sweep submissions, validates them through
//! [`rumor_core::SimulationSpec::validate`], runs them on a shared worker
//! pool with **per-client round-robin fairness**, and streams one result
//! line per trial back. Robustness is mechanical, not best-effort:
//!
//! * **Admission control + load shedding** — a bounded submission queue
//!   ([`AdmissionLimits`]); past it, submissions get a typed
//!   `overloaded {retry_after_ms}` rejection instead of queueing without
//!   bound ([`shed`]).
//! * **Per-request deadlines** — a submission's optional `deadline_ms` is
//!   enforced at chunk cadence: running trials suspend into the existing
//!   `TrialOutcome::TimedOut` taxonomy, unclaimed ones report `NotRun`, and
//!   the connection always terminates with a typed line — never a hang.
//! * **Graceful degradation + shutdown** — a `drain` request stops
//!   admission, lets in-flight trials finish or checkpoint (PR 6 snapshot
//!   sink), and exits. Hard kills (`SIGKILL`/`SIGTERM` — this crate forbids
//!   `unsafe`, so no in-process signal handler) are crash-equivalent by
//!   design: every finished trial is already in a digest-keyed manifest
//!   written through atomic renames, so a restarted server loses **zero
//!   completed trials**.
//! * **Multiplexed sessions** — a connection carries any number of
//!   concurrent jobs; every job-scoped line is `(job, seq)`-tagged, and a
//!   `resume {job, last_seq}` verb re-attaches a client to an in-flight or
//!   cached job replaying exactly the missing suffix, byte-identical to an
//!   uninterrupted stream ([`protocol`], [`Server`]).
//! * **Liveness** — `heartbeat` keepalives plus a server-side idle read
//!   timeout reclaim the threads behind half-open connections; the reader
//!   is byte-bounded ([`protocol::MAX_LINE_BYTES`]), so hostile framing
//!   gets a typed `protocol_error` instead of unbounded buffers.
//! * **Client-side resilience** — [`ServeClient`] survives connection
//!   death by transparent reconnect + resume (the per-job `seq` filter
//!   drops replayed overlap — zero lost, zero duplicated lines) and
//!   retries shed, draining, and connect failures with exponential backoff
//!   plus deterministic jitter; submissions are idempotent (digest-keyed),
//!   so retries are free cache/manifest hits.
//! * **Result cache** — a spec-digest → result cache answers duplicate
//!   submissions in O(1) with byte-identical trial lines.
//! * **Deterministic network chaos** — [`FaultNet`] is an in-process TCP
//!   proxy injecting drops, resets, truncations, and stalls on a seed-keyed
//!   (Philox) schedule — optionally on the client→server pump too
//!   ([`FaultSpec::fault_upstream`]) — so the `serve_chaos` suite pins the
//!   zero-loss guarantees under reproducible network failure.
//! * **Crash-safe remote topologies** — chunked, resumable CSR uploads land
//!   in a digest-addressed [`ContentStore`] under `--state-dir`: per-chunk
//!   CRC plus a whole-graph digest check before an atomic tmp+rename
//!   publish, partial uploads persisted so a killed client resumes from the
//!   ack'd high-water mark, structural validation at commit (typed
//!   [`UploadError`], never a panic), and an LRU byte quota that evicts
//!   only unreferenced graphs — submissions naming an evicted digest get a
//!   typed `unknown_topology` cue to re-upload idempotently ([`store`]).
//!
//! See the README's *Serving* section for the wire protocol and
//! operational guarantees, and `rumor-serve --help` for the binary.

pub mod client;
pub mod faultnet;
pub mod protocol;
mod scheduler;
mod server;
pub mod shed;
pub mod store;
mod sync;

pub use client::{ClientError, JobResult, RetryPolicy, ServeClient, SessionStats, UploadReport};
pub use faultnet::{FaultKind, FaultNet, FaultReport, FaultSpec};
pub use protocol::{ServerStatus, SubmitRequest, TopologySpec, UploadManifest, MAX_LINE_BYTES};
pub use scheduler::{ServeConfig, ServeStats};
pub use server::{Server, ServerHandle};
pub use shed::AdmissionLimits;
pub use store::{ContentStore, StoreCounters, UploadError, UploadState};
