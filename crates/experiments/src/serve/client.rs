//! The `rumor-serve` client library: blocking submission with typed
//! errors, bounded retry, exponential backoff, and deterministic jitter.
//!
//! Retrying a submission is always safe: the job digest excludes the client
//! name and deadline, so a retry (or a second client running the same
//! study) lands on the server's manifest/cache and costs no duplicate
//! work. Backoff doubles per attempt from [`RetryPolicy::base_delay`] and
//! adds jitter derived from FNV-1a over `(digest, attempt)` — deterministic
//! per request, decorrelated across concurrent clients.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::runner::TrialTaxonomy;
use crate::serve::protocol::{fnv1a64, parse_json, Json, SubmitRequest};

/// A typed client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClientError {
    /// The server shed the submission (still overloaded after every retry).
    Overloaded {
        /// The server's last retry hint.
        retry_after_ms: u64,
    },
    /// The server is draining for shutdown (still draining after every
    /// retry — retry against the restarted server).
    Draining,
    /// The server rejected the spec (not retryable; the message names the
    /// cause, including panic payloads from failed trials).
    Rejected(String),
    /// Transport failure after every retry (connection refused, reset, …).
    Io(String),
    /// The server answered with something the protocol does not allow.
    Protocol(String),
    /// The submission's deadline expired server-side: `timed_out` trials
    /// suspended mid-run, `not_run` never started. Returned by
    /// [`JobResult::ensure_complete`], never by `submit` itself.
    DeadlineExceeded {
        /// Trials suspended at their deadline checkpoint.
        timed_out: usize,
        /// Trials that never started.
        not_run: usize,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded (retry after {retry_after_ms} ms)")
            }
            ClientError::Draining => write!(f, "server draining"),
            ClientError::Rejected(m) => write!(f, "submission rejected: {m}"),
            ClientError::Io(m) => write!(f, "transport failure: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::DeadlineExceeded { timed_out, not_run } => {
                write!(
                    f,
                    "deadline exceeded: {timed_out} timed out, {not_run} not run"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Retry schedule for [`ServeClient::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// First backoff delay; doubles per attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// Five attempts, 50 ms base, 2 s ceiling.
    pub fn new() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }

    /// No retries: one attempt, fail fast.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Self::new()
        }
    }

    /// The wait before `attempt` (0-based) retries a request with this
    /// digest: `base · 2^attempt + jitter`, capped at `max_delay`. Jitter
    /// is deterministic in `(digest, attempt)` so tests are reproducible
    /// while concurrent clients (different digests... or the same digest at
    /// different attempt counts) stay decorrelated.
    pub fn backoff(&self, attempt: u32, digest: u64) -> Duration {
        let base = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        let jitter_key =
            fnv1a64(&[digest.to_le_bytes(), u64::from(attempt).to_le_bytes()].concat());
        let jitter =
            Duration::from_millis(jitter_key % (self.base_delay.as_millis().max(1) as u64));
        (base + jitter).min(self.max_delay)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// The parsed result of one accepted submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The job digest (hex) echoed by the server.
    pub job: String,
    /// Raw per-trial result lines, in trial-index order — byte-identical
    /// across live, recovered, duplicate, and cached streams.
    pub trial_lines: Vec<String>,
    /// Outcome taxonomy from the `done` line.
    pub taxonomy: TrialTaxonomy,
    /// Trials recovered from a manifest (or the whole sweep, when cached).
    pub reused: usize,
    /// Whether the server answered from its result cache.
    pub cached: bool,
    /// Whether the server attached this submission to an identical job
    /// already in flight.
    pub duplicate: bool,
}

impl JobResult {
    /// Fraction of trials the server reused instead of re-running.
    pub fn recovered_fraction(&self) -> f64 {
        let total = self.taxonomy.completed
            + self.taxonomy.round_capped
            + self.taxonomy.timed_out
            + self.taxonomy.panicked
            + self.taxonomy.not_run;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }

    /// Errors with the typed deadline taxonomy if any trial timed out or
    /// never ran.
    pub fn ensure_complete(&self) -> Result<&Self, ClientError> {
        if self.taxonomy.timed_out > 0 || self.taxonomy.not_run > 0 {
            return Err(ClientError::DeadlineExceeded {
                timed_out: self.taxonomy.timed_out,
                not_run: self.taxonomy.not_run,
            });
        }
        Ok(self)
    }
}

/// A blocking client for one `rumor-serve` endpoint.
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: String,
    retry: RetryPolicy,
}

impl ServeClient {
    /// A client with the default retry policy.
    pub fn new(addr: &str) -> Self {
        ServeClient {
            addr: addr.to_string(),
            retry: RetryPolicy::new(),
        }
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Submits a sweep and blocks until its result stream completes,
    /// retrying shed/draining/transport failures with exponential backoff
    /// and deterministic jitter. Duplicate submissions are free server-side
    /// (digest-keyed cache/manifest), so retries never duplicate work.
    pub fn submit(&self, request: &SubmitRequest) -> Result<JobResult, ClientError> {
        let digest = request.digest();
        let mut last = ClientError::Io("no attempt made".to_string());
        for attempt in 0..self.retry.max_attempts {
            match self.submit_once(request) {
                Ok(result) => return Ok(result),
                Err(e @ (ClientError::Rejected(_) | ClientError::Protocol(_))) => return Err(e),
                Err(retryable) => {
                    let mut wait = self.retry.backoff(attempt, digest);
                    if let ClientError::Overloaded { retry_after_ms } = &retryable {
                        wait = wait.max(Duration::from_millis(*retry_after_ms));
                    }
                    last = retryable;
                    if attempt + 1 < self.retry.max_attempts {
                        std::thread::sleep(wait);
                    }
                }
            }
        }
        Err(last)
    }

    /// One submission attempt, no retry.
    pub fn submit_once(&self, request: &SubmitRequest) -> Result<JobResult, ClientError> {
        let io = |e: std::io::Error| ClientError::Io(e.to_string());
        let stream = TcpStream::connect(&self.addr).map_err(io)?;
        stream.set_nodelay(true).ok();
        let mut writer = stream.try_clone().map_err(io)?;
        writeln!(writer, "{}", request.to_line()).map_err(io)?;
        let mut reader = BufReader::new(stream);

        let header = read_value(&mut reader)?;
        let kind = header
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ClientError::Protocol("untyped response line".to_string()))?;
        match kind {
            "overloaded" => {
                return Err(ClientError::Overloaded {
                    retry_after_ms: header
                        .get("retry_after_ms")
                        .and_then(Json::as_u64)
                        .unwrap_or(100),
                })
            }
            "draining" => return Err(ClientError::Draining),
            "error" => {
                return Err(ClientError::Rejected(
                    header
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("unspecified")
                        .to_string(),
                ))
            }
            "accepted" => {}
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected accepted, got {other:?}"
                )))
            }
        }
        let mut result = JobResult {
            job: header
                .get("job")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            trial_lines: Vec::new(),
            taxonomy: TrialTaxonomy::default(),
            reused: 0,
            cached: header
                .get("cached")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            duplicate: header
                .get("duplicate")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        };
        loop {
            let mut raw = String::new();
            let n = reader.read_line(&mut raw).map_err(io)?;
            if n == 0 {
                return Err(ClientError::Io(
                    "connection closed before done line".to_string(),
                ));
            }
            let raw = raw.trim_end().to_string();
            let value = parse_json(&raw).map_err(ClientError::Protocol)?;
            match value.get("type").and_then(Json::as_str) {
                Some("trial") => result.trial_lines.push(raw),
                Some("draining") => return Err(ClientError::Draining),
                Some("done") => {
                    let count =
                        |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0) as usize;
                    result.taxonomy = TrialTaxonomy {
                        completed: count("completed"),
                        round_capped: count("round_capped"),
                        timed_out: count("timed_out"),
                        panicked: count("panicked"),
                        not_run: count("not_run"),
                    };
                    result.reused = count("reused");
                    result.cached |= value.get("cached").and_then(Json::as_bool).unwrap_or(false);
                    return Ok(result);
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected stream line type {other:?}"
                    )))
                }
            }
        }
    }

    /// Sends a `drain` request; `Ok` once the server acknowledges.
    pub fn drain(&self) -> Result<(), ClientError> {
        let value = self.roundtrip("{\"verb\":\"drain\"}")?;
        match value.get("type").and_then(Json::as_str) {
            Some("draining") => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected draining, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ClientError> {
        let value = self.roundtrip("{\"verb\":\"ping\"}")?;
        match value.get("type").and_then(Json::as_str) {
            Some("pong") => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Fetches server counters: `(executed, shed, cache_hits,
    /// duplicate_hits, pending_trials, pending_jobs)`.
    pub fn stats(&self) -> Result<(u64, u64, u64, u64, u64, u64), ClientError> {
        let value = self.roundtrip("{\"verb\":\"stats\"}")?;
        if value.get("type").and_then(Json::as_str) != Some("stats") {
            return Err(ClientError::Protocol("expected stats".to_string()));
        }
        let count = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
        Ok((
            count("executed"),
            count("shed"),
            count("cache_hits"),
            count("duplicate_hits"),
            count("pending_trials"),
            count("pending_jobs"),
        ))
    }

    fn roundtrip(&self, line: &str) -> Result<Json, ClientError> {
        let io = |e: std::io::Error| ClientError::Io(e.to_string());
        let stream = TcpStream::connect(&self.addr).map_err(io)?;
        let mut writer = stream.try_clone().map_err(io)?;
        writeln!(writer, "{line}").map_err(io)?;
        read_value(&mut BufReader::new(stream))
    }
}

fn read_value(reader: &mut BufReader<TcpStream>) -> Result<Json, ClientError> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| ClientError::Io(e.to_string()))?;
    if n == 0 {
        return Err(ClientError::Io("connection closed".to_string()));
    }
    parse_json(line.trim_end()).map_err(ClientError::Protocol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_is_jittered_and_caps() {
        let policy = RetryPolicy::new();
        let a0 = policy.backoff(0, 7);
        let a1 = policy.backoff(1, 7);
        let a5 = policy.backoff(10, 7);
        assert!(a1 > a0, "backoff must grow: {a0:?} vs {a1:?}");
        assert_eq!(a5, policy.max_delay, "backoff must cap");
        // Deterministic…
        assert_eq!(policy.backoff(0, 7), a0);
        // …but decorrelated across digests.
        assert_ne!(policy.backoff(0, 7), policy.backoff(0, 8));
        // Attempt counts beyond the shift width saturate instead of
        // wrapping.
        assert_eq!(policy.backoff(40, 7), policy.max_delay);
    }

    #[test]
    fn deadline_taxonomy_is_a_typed_error() {
        let result = JobResult {
            job: "0".to_string(),
            trial_lines: Vec::new(),
            taxonomy: TrialTaxonomy {
                completed: 2,
                timed_out: 1,
                not_run: 1,
                ..TrialTaxonomy::default()
            },
            reused: 1,
            cached: false,
            duplicate: false,
        };
        assert_eq!(
            result.ensure_complete(),
            Err(ClientError::DeadlineExceeded {
                timed_out: 1,
                not_run: 1
            })
        );
        assert!((result.recovered_fraction() - 0.25).abs() < 1e-12);
        let clean = JobResult {
            taxonomy: TrialTaxonomy {
                completed: 4,
                ..TrialTaxonomy::default()
            },
            ..result
        };
        assert!(clean.ensure_complete().is_ok());
    }

    #[test]
    fn connection_refused_is_a_typed_io_error_after_retries() {
        // Port 1 on localhost: reliably refused, so the retry loop runs to
        // exhaustion and surfaces Io — quickly, with a fail-fast policy.
        let client = ServeClient::new("127.0.0.1:1").with_retry(RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        });
        let request = SubmitRequest::new(
            "t",
            crate::serve::protocol::TopologySpec::new("star", 8),
            "push",
            1,
        );
        match client.submit(&request) {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
