//! The `rumor-serve` client library: multiplexed sessions with transparent
//! reconnect/resume, typed errors, bounded retry, and deterministic jitter.
//!
//! One connection carries any number of concurrent jobs; every job-scoped
//! line is `(job, seq)`-tagged, so the client demultiplexes by digest and
//! deduplicates by sequence number. When the connection dies mid-stream the
//! client reconnects and sends `resume {job, last_seq}` per unfinished job:
//! the server replays exactly the missing suffix, and any overlap (e.g.
//! after a fallback resubmission to a restarted server) is dropped by the
//! seq filter — zero lost and zero duplicated trial lines, byte-identical
//! to an uninterrupted stream.
//!
//! Retrying a submission is always safe: the job digest excludes the client
//! name and deadline, so a retry (or a second client running the same
//! study) lands on the server's manifest/cache and costs no duplicate
//! work. Backoff doubles per attempt from [`RetryPolicy::base_delay`] and
//! adds jitter derived from FNV-1a over `(digest, attempt)` — deterministic
//! per request, decorrelated across concurrent clients.
//!
//! Liveness is symmetric: the client sends `heartbeat` verbs at a fixed
//! interval (keeping the server's idle timer at bay during long quiet
//! stretches) and declares the connection dead when heartbeats go
//! unanswered for three intervals.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::runner::TrialTaxonomy;
use crate::serve::protocol::{
    fnv1a64, parse_json, resume_request_line, upload_begin_line, upload_chunk_line,
    upload_commit_line, Json, ServerStatus, SubmitRequest, MAX_LINE_BYTES,
};
use crate::serve::store::manifest_for;

/// A typed client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClientError {
    /// The server shed the submission (still overloaded after every retry).
    Overloaded {
        /// The server's last retry hint.
        retry_after_ms: u64,
    },
    /// The server is draining for shutdown (still draining after every
    /// retry — retry against the restarted server).
    Draining,
    /// The server rejected the spec (not retryable; the message names the
    /// cause, including panic payloads from failed trials).
    Rejected(String),
    /// Transport failure after every retry (connection refused, reset, …).
    Io(String),
    /// The server answered with something the protocol does not allow.
    Protocol(String),
    /// The submission's deadline expired server-side: `timed_out` trials
    /// suspended mid-run, `not_run` never started. Returned by
    /// [`JobResult::ensure_complete`], never by `submit` itself.
    DeadlineExceeded {
        /// Trials suspended at their deadline checkpoint.
        timed_out: usize,
        /// Trials that never started.
        not_run: usize,
    },
    /// The submission named an uploaded topology the server's content store
    /// no longer holds (evicted under quota, or never uploaded). Re-upload
    /// with [`ServeClient::upload_bytes`] and resubmit — both are
    /// idempotent; [`ServeClient::submit_uploaded`] does the round-trip.
    UnknownTopology {
        /// The missing content digest.
        digest: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded (retry after {retry_after_ms} ms)")
            }
            ClientError::Draining => write!(f, "server draining"),
            ClientError::Rejected(m) => write!(f, "submission rejected: {m}"),
            ClientError::Io(m) => write!(f, "transport failure: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::DeadlineExceeded { timed_out, not_run } => {
                write!(
                    f,
                    "deadline exceeded: {timed_out} timed out, {not_run} not run"
                )
            }
            ClientError::UnknownTopology { digest } => {
                write!(
                    f,
                    "topology {digest:016x} not in the server's content store (re-upload and resubmit)"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Retry schedule for [`ServeClient::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// First backoff delay; doubles per attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// Five attempts, 50 ms base, 2 s ceiling.
    pub fn new() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }

    /// No retries: one attempt, fail fast.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Self::new()
        }
    }

    /// The wait before `attempt` (0-based) retries a request with this
    /// digest: `base · 2^attempt + jitter`, capped at `max_delay`. Jitter
    /// is deterministic in `(digest, attempt)` so tests are reproducible
    /// while concurrent clients (different digests... or the same digest at
    /// different attempt counts) stay decorrelated.
    pub fn backoff(&self, attempt: u32, digest: u64) -> Duration {
        let base = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        let jitter_key =
            fnv1a64(&[digest.to_le_bytes(), u64::from(attempt).to_le_bytes()].concat());
        let jitter =
            Duration::from_millis(jitter_key % (self.base_delay.as_millis().max(1) as u64));
        (base + jitter).min(self.max_delay)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// The parsed result of one accepted submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The job digest (hex) echoed by the server.
    pub job: String,
    /// Raw per-trial result lines, in trial-index order — byte-identical
    /// across live, recovered, duplicate, resumed, and cached streams.
    pub trial_lines: Vec<String>,
    /// Outcome taxonomy from the `done` line.
    pub taxonomy: TrialTaxonomy,
    /// Trials recovered from a manifest (or the whole sweep, when cached).
    pub reused: usize,
    /// Whether the server answered from its result cache.
    pub cached: bool,
    /// Whether the server attached this submission to an identical job
    /// already in flight.
    pub duplicate: bool,
}

impl JobResult {
    /// Fraction of trials the server reused instead of re-running.
    pub fn recovered_fraction(&self) -> f64 {
        let total = self.taxonomy.completed
            + self.taxonomy.round_capped
            + self.taxonomy.timed_out
            + self.taxonomy.panicked
            + self.taxonomy.not_run;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }

    /// Errors with the typed deadline taxonomy if any trial timed out or
    /// never ran.
    pub fn ensure_complete(&self) -> Result<&Self, ClientError> {
        if self.taxonomy.timed_out > 0 || self.taxonomy.not_run > 0 {
            return Err(ClientError::DeadlineExceeded {
                timed_out: self.taxonomy.timed_out,
                not_run: self.taxonomy.not_run,
            });
        }
        Ok(self)
    }
}

/// Transport-level accounting for one client session (reconnects are
/// otherwise invisible — results come back as if nothing happened).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Successful connections (1 for an undisturbed session).
    pub connects: u64,
    /// Mid-session reconnect cycles survived.
    pub reconnects: u64,
    /// Replayed lines dropped by the per-job `seq` filter (overlap after a
    /// resume or fallback resubmission).
    pub duplicate_lines_dropped: u64,
    /// Heartbeat verbs sent.
    pub heartbeats_sent: u64,
    /// Per-reconnect recovery latency, in milliseconds: from failure
    /// detection to the first line received on the replacement connection.
    pub recovery_ms: Vec<u64>,
}

/// Transfer accounting for one [`ServeClient::upload_bytes`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UploadReport {
    /// FNV-1a-64 content digest addressing the graph in the store.
    pub digest: u64,
    /// Canonical encoding size in bytes.
    pub bytes: u64,
    /// Total chunk count at the negotiated chunk size.
    pub chunks: u64,
    /// Chunks transmitted by this call (0 when the digest was already
    /// committed; less than `chunks` when a prior attempt's partial
    /// survived on the server).
    pub chunks_sent: u64,
    /// The server's durable high-water mark at first contact: chunks a
    /// previous (killed or disconnected) attempt already landed.
    pub resumed_from: u64,
    /// Mid-upload reconnect cycles survived.
    pub reconnects: u64,
}

/// A blocking client for one `rumor-serve` endpoint.
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: String,
    retry: RetryPolicy,
    heartbeat: Duration,
    max_reconnects: u32,
    max_line_bytes: usize,
}

impl ServeClient {
    /// A client with the default retry policy, a 2 s heartbeat interval,
    /// and up to 32 mid-session reconnects.
    pub fn new(addr: &str) -> Self {
        ServeClient {
            addr: addr.to_string(),
            retry: RetryPolicy::new(),
            heartbeat: Duration::from_secs(2),
            max_reconnects: 32,
            max_line_bytes: MAX_LINE_BYTES,
        }
    }

    /// Replaces the wire-line byte bound (must match the server's
    /// `--max-line-bytes`); upload chunk sizes derive from it.
    pub fn with_max_line_bytes(mut self, max_line_bytes: usize) -> Self {
        self.max_line_bytes = max_line_bytes;
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the heartbeat interval (liveness declares the connection
    /// dead after three unanswered intervals).
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// Replaces the mid-session reconnect budget.
    pub fn with_max_reconnects(mut self, max_reconnects: u32) -> Self {
        self.max_reconnects = max_reconnects;
        self
    }

    /// Submits one sweep and blocks until its result stream completes,
    /// surviving connection death by reconnect + `resume` and retrying
    /// shed/draining/connect failures with exponential backoff and
    /// deterministic jitter. Duplicate submissions are free server-side
    /// (digest-keyed cache/manifest), so retries never duplicate work.
    pub fn submit(&self, request: &SubmitRequest) -> Result<JobResult, ClientError> {
        let (mut results, _) = self.run_session(
            std::slice::from_ref(request),
            self.retry,
            self.max_reconnects,
        );
        results.remove(0)
    }

    /// One submission attempt on one connection: no retries, no reconnect.
    pub fn submit_once(&self, request: &SubmitRequest) -> Result<JobResult, ClientError> {
        let (mut results, _) =
            self.run_session(std::slice::from_ref(request), RetryPolicy::none(), 0);
        results.remove(0)
    }

    /// Submits many sweeps over **one** multiplexed session; results come
    /// back in request order. See [`ServeClient::submit_session`] for the
    /// transport accounting.
    pub fn submit_many(&self, requests: &[SubmitRequest]) -> Vec<Result<JobResult, ClientError>> {
        self.submit_session(requests).0
    }

    /// [`ServeClient::submit_many`] plus the session's transport stats
    /// (reconnects survived, duplicate lines dropped, recovery latencies).
    pub fn submit_session(
        &self,
        requests: &[SubmitRequest],
    ) -> (Vec<Result<JobResult, ClientError>>, SessionStats) {
        self.run_session(requests, self.retry, self.max_reconnects)
    }

    /// Sends a `drain` request; `Ok` once the server acknowledges.
    pub fn drain(&self) -> Result<(), ClientError> {
        let value = self.roundtrip("{\"verb\":\"drain\"}")?;
        match value.get("type").and_then(Json::as_str) {
            Some("draining") => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected draining, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ClientError> {
        let value = self.roundtrip("{\"verb\":\"ping\"}")?;
        match value.get("type").and_then(Json::as_str) {
            Some("pong") => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Fetches server counters: `(executed, shed, cache_hits,
    /// duplicate_hits, pending_trials, pending_jobs)`.
    pub fn stats(&self) -> Result<(u64, u64, u64, u64, u64, u64), ClientError> {
        let value = self.roundtrip("{\"verb\":\"stats\"}")?;
        if value.get("type").and_then(Json::as_str) != Some("stats") {
            return Err(ClientError::Protocol("expected stats".to_string()));
        }
        let count = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
        Ok((
            count("executed"),
            count("shed"),
            count("cache_hits"),
            count("duplicate_hits"),
            count("pending_trials"),
            count("pending_jobs"),
        ))
    }

    /// Fetches the extended `status` report: scheduler load plus
    /// session-layer counters.
    pub fn status(&self) -> Result<ServerStatus, ClientError> {
        let value = self.roundtrip("{\"verb\":\"status\"}")?;
        if value.get("type").and_then(Json::as_str) != Some("status") {
            return Err(ClientError::Protocol("expected status".to_string()));
        }
        ServerStatus::from_json(&value)
            .ok_or_else(|| ClientError::Protocol("malformed status line".to_string()))
    }

    /// Uploads a graph's canonical CSR encoding into the server's content
    /// store. See [`ServeClient::upload_bytes`] for the transfer contract.
    pub fn upload(&self, graph: &rumor_graphs::Graph) -> Result<UploadReport, ClientError> {
        self.upload_bytes(&rumor_graphs::codec::encode_csr(graph))
    }

    /// Uploads an already-encoded canonical CSR byte string, chunked to fit
    /// the wire-line bound, and blocks until the server commits it.
    ///
    /// The transfer is crash-safe end to end: every chunk carries a CRC and
    /// is acknowledged only once durable, so when the connection dies the
    /// client reconnects, reopens the transfer, and the server's `begin`
    /// ack names the durable high-water mark — the upload resumes exactly
    /// there, never retransmitting landed chunks. Uploading a digest the
    /// store already holds is a no-op answered idempotently.
    pub fn upload_bytes(&self, bytes: &[u8]) -> Result<UploadReport, ClientError> {
        let manifest = manifest_for(bytes, self.max_line_bytes)
            .map_err(|e| ClientError::Rejected(e.to_string()))?;
        let chunks = manifest.chunks();
        let mut report = UploadReport {
            digest: manifest.digest,
            bytes: manifest.bytes,
            chunks,
            chunks_sent: 0,
            resumed_from: 0,
            reconnects: 0,
        };
        let mut first_contact = true;
        let mut reconnects_used = 0u32;
        'session: loop {
            // One closure per connection loss: spend a reconnect or fail.
            let stream = connect_with_retry(&self.addr, manifest.digest, self.retry)?;
            stream
                .set_read_timeout(Some(Duration::from_millis(50)))
                .ok();
            let mut writer = stream
                .try_clone()
                .map_err(|e| ClientError::Io(e.to_string()))?;
            let mut reader = BufReader::new(stream);
            let mut buf: Vec<u8> = Vec::new();

            // (Re)open the transfer. The ack names the durable high-water
            // mark — the only state the resume needs.
            let mut acked = match upload_roundtrip(
                &mut writer,
                &mut reader,
                &mut buf,
                &upload_begin_line(&manifest),
                manifest.digest,
            ) {
                Ok(value) => match upload_answer(&value)? {
                    UploadAnswer::Done => return Ok(report),
                    UploadAnswer::Acked(acked) => acked,
                },
                Err(message) => {
                    if reconnects_used >= self.max_reconnects {
                        return Err(ClientError::Io(message));
                    }
                    reconnects_used += 1;
                    report.reconnects += 1;
                    continue 'session;
                }
            };
            if first_contact {
                report.resumed_from = acked;
                first_contact = false;
            }

            // Lockstep chunk/ack past the high-water mark, then commit.
            while acked < chunks {
                let start = (acked * manifest.chunk_bytes) as usize;
                let end = (start + manifest.chunk_bytes as usize).min(bytes.len());
                let line = upload_chunk_line(manifest.digest, acked, &bytes[start..end]);
                match upload_roundtrip(&mut writer, &mut reader, &mut buf, &line, manifest.digest) {
                    Ok(value) => match upload_answer(&value)? {
                        UploadAnswer::Done => return Ok(report),
                        UploadAnswer::Acked(now) => {
                            report.chunks_sent += 1;
                            acked = now.max(acked + 1);
                        }
                    },
                    Err(message) => {
                        if reconnects_used >= self.max_reconnects {
                            return Err(ClientError::Io(message));
                        }
                        reconnects_used += 1;
                        report.reconnects += 1;
                        continue 'session;
                    }
                }
            }
            match upload_roundtrip(
                &mut writer,
                &mut reader,
                &mut buf,
                &upload_commit_line(manifest.digest),
                manifest.digest,
            ) {
                Ok(value) => match upload_answer(&value)? {
                    UploadAnswer::Done => return Ok(report),
                    UploadAnswer::Acked(_) => {
                        return Err(ClientError::Protocol(
                            "commit answered with an ack".to_string(),
                        ))
                    }
                },
                Err(message) => {
                    if reconnects_used >= self.max_reconnects {
                        return Err(ClientError::Io(message));
                    }
                    reconnects_used += 1;
                    report.reconnects += 1;
                    continue 'session;
                }
            }
        }
    }

    /// Submits a sweep over an uploaded topology, transparently
    /// (re)uploading `encoded` when the server answers `unknown_topology`
    /// (fresh server, or the digest was evicted under quota) — upload and
    /// resubmission are both idempotent, so the round-trip is always safe.
    pub fn submit_uploaded(
        &self,
        request: &SubmitRequest,
        encoded: &[u8],
    ) -> Result<JobResult, ClientError> {
        match self.submit(request) {
            Err(ClientError::UnknownTopology { .. }) => {
                self.upload_bytes(encoded)?;
                self.submit(request)
            }
            other => other,
        }
    }

    fn roundtrip(&self, line: &str) -> Result<Json, ClientError> {
        let io = |e: std::io::Error| ClientError::Io(e.to_string());
        let stream = TcpStream::connect(&self.addr).map_err(io)?;
        let mut writer = stream.try_clone().map_err(io)?;
        writeln!(writer, "{line}").map_err(io)?;
        let mut line = String::new();
        let mut reader = BufReader::new(stream);
        let n = reader.read_line(&mut line).map_err(io)?;
        if n == 0 {
            return Err(ClientError::Io("connection closed".to_string()));
        }
        parse_json(line.trim_end()).map_err(ClientError::Protocol)
    }

    // -- session engine ----------------------------------------------------

    /// Runs one session to completion: dedupes identical digests, drives
    /// every job over a shared connection, reconnects and resumes on
    /// transport death, and maps results back to request order.
    fn run_session(
        &self,
        requests: &[SubmitRequest],
        retry: RetryPolicy,
        max_reconnects: u32,
    ) -> (Vec<Result<JobResult, ClientError>>, SessionStats) {
        let mut stats = SessionStats::default();
        if requests.is_empty() {
            return (Vec::new(), stats);
        }
        // Identical digests share one slot: the server would stream them
        // indistinguishably anyway, and the result is cloned per request.
        let mut slots: Vec<Slot> = Vec::new();
        let mut index_of: Vec<usize> = Vec::with_capacity(requests.len());
        for request in requests {
            let digest = request.digest();
            match slots.iter().position(|slot| slot.digest == digest) {
                Some(i) => index_of.push(i),
                None => {
                    slots.push(Slot::new(request.clone()));
                    index_of.push(slots.len() - 1);
                }
            }
        }
        let first_digest = slots[0].digest;
        let mut reconnects_used = 0u32;
        let mut failure_at: Option<Instant> = None;

        loop {
            match connect_with_retry(&self.addr, first_digest, retry) {
                Err(error) => {
                    fail_open_slots(&mut slots, &error);
                    break;
                }
                Ok(stream) => {
                    stats.connects += 1;
                    match self.drive_connection(
                        stream,
                        &mut slots,
                        retry,
                        &mut stats,
                        &mut failure_at,
                    ) {
                        ConnOutcome::Done => break,
                        ConnOutcome::Lost(error) => {
                            if reconnects_used >= max_reconnects {
                                fail_open_slots(&mut slots, &error);
                                break;
                            }
                            reconnects_used += 1;
                            stats.reconnects += 1;
                            for slot in slots.iter_mut().filter(|s| s.result.is_none()) {
                                slot.active = false;
                                if slot.accepted_once {
                                    slot.resume_next = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        let results = index_of
            .into_iter()
            .map(|i| {
                slots[i].result.clone().unwrap_or_else(|| {
                    Err(ClientError::Io("session ended without result".to_string()))
                })
            })
            .collect();
        (results, stats)
    }

    /// Drives one connection until every slot is terminal or the transport
    /// dies: issues submit/resume lines, demultiplexes responses by job
    /// tag, sends heartbeats, and declares half-open connections dead.
    fn drive_connection(
        &self,
        stream: TcpStream,
        slots: &mut [Slot],
        retry: RetryPolicy,
        stats: &mut SessionStats,
        failure_at: &mut Option<Instant>,
    ) -> ConnOutcome {
        let poll =
            (self.heartbeat / 4).clamp(Duration::from_millis(10), Duration::from_millis(250));
        stream.set_read_timeout(Some(poll)).ok();
        let mut writer = match stream.try_clone() {
            Ok(writer) => writer,
            Err(e) => return lost(failure_at, ClientError::Io(e.to_string())),
        };
        let mut reader = BufReader::new(stream);
        let mut buf: Vec<u8> = Vec::new();
        let mut heartbeat_due = Instant::now() + self.heartbeat;
        let mut last_rx = Instant::now();
        let mut heartbeat_outstanding = false;

        loop {
            // (Re)issue requests for every idle, non-terminal slot whose
            // backoff has elapsed.
            let now = Instant::now();
            for slot in slots.iter_mut() {
                if slot.result.is_some() || slot.active || slot.retry_at.is_some_and(|at| now < at)
                {
                    continue;
                }
                slot.retry_at = None;
                let line = if slot.resume_next {
                    resume_request_line(slot.digest, slot.trial_lines.len() as u64)
                } else {
                    slot.request.to_line()
                };
                if writeln!(writer, "{line}").is_err() {
                    return lost(
                        failure_at,
                        ClientError::Io("request write failed".to_string()),
                    );
                }
                slot.active = true;
            }
            if slots.iter().all(|slot| slot.result.is_some()) {
                return ConnOutcome::Done;
            }

            match next_line(&mut reader, &mut buf) {
                NetEvent::Line(raw) => {
                    last_rx = Instant::now();
                    heartbeat_outstanding = false;
                    if let Some(at) = failure_at.take() {
                        stats.recovery_ms.push(at.elapsed().as_millis() as u64);
                    }
                    dispatch_line(&raw, slots, retry, stats);
                }
                NetEvent::Tick => {
                    let now = Instant::now();
                    if now >= heartbeat_due {
                        if writeln!(writer, "{{\"verb\":\"heartbeat\"}}").is_err() {
                            return lost(
                                failure_at,
                                ClientError::Io("heartbeat write failed".to_string()),
                            );
                        }
                        stats.heartbeats_sent += 1;
                        heartbeat_outstanding = true;
                        heartbeat_due = now + self.heartbeat;
                    }
                    if heartbeat_outstanding && now.duration_since(last_rx) > self.heartbeat * 3 {
                        return lost(
                            failure_at,
                            ClientError::Io(
                                "connection unresponsive (heartbeats unanswered)".to_string(),
                            ),
                        );
                    }
                }
                NetEvent::Eof => {
                    return lost(
                        failure_at,
                        ClientError::Io("connection closed mid-session".to_string()),
                    )
                }
                NetEvent::TooLong => {
                    return lost(
                        failure_at,
                        ClientError::Protocol("oversized response line".to_string()),
                    )
                }
                NetEvent::Failed(message) => return lost(failure_at, ClientError::Io(message)),
            }
        }
    }
}

/// One deduplicated job inside a session.
#[derive(Debug)]
struct Slot {
    request: SubmitRequest,
    digest: u64,
    job_hex: String,
    /// Framed trial lines as received, in index order — `seq == len + 1` is
    /// the only accepted next line, everything at or below `len` is a
    /// replay duplicate, anything beyond is a gap.
    trial_lines: Vec<String>,
    cached: bool,
    duplicate: bool,
    /// Shed/drain retries consumed.
    attempts: u32,
    /// The server has seen this job on some connection.
    accepted_once: bool,
    /// Re-attach with `resume` (instead of an idempotent resubmit) on the
    /// next issue pass.
    resume_next: bool,
    /// A submit/resume is outstanding on the current connection.
    active: bool,
    retry_at: Option<Instant>,
    result: Option<Result<JobResult, ClientError>>,
}

impl Slot {
    fn new(request: SubmitRequest) -> Slot {
        let digest = request.digest();
        Slot {
            request,
            digest,
            job_hex: format!("{digest:016x}"),
            trial_lines: Vec::new(),
            cached: false,
            duplicate: false,
            attempts: 0,
            accepted_once: false,
            resume_next: false,
            active: false,
            retry_at: None,
            result: None,
        }
    }
}

enum ConnOutcome {
    Done,
    Lost(ClientError),
}

/// Marks the failure-detection instant (for recovery-latency accounting)
/// and wraps the error.
fn lost(failure_at: &mut Option<Instant>, error: ClientError) -> ConnOutcome {
    if failure_at.is_none() {
        *failure_at = Some(Instant::now());
    }
    ConnOutcome::Lost(error)
}

fn fail_open_slots(slots: &mut [Slot], error: &ClientError) {
    for slot in slots.iter_mut().filter(|s| s.result.is_none()) {
        slot.result = Some(Err(error.clone()));
    }
}

fn connect_with_retry(
    addr: &str,
    digest: u64,
    retry: RetryPolicy,
) -> Result<TcpStream, ClientError> {
    let mut last = ClientError::Io("no attempt made".to_string());
    for attempt in 0..retry.max_attempts {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return Ok(stream);
            }
            Err(e) => {
                last = ClientError::Io(e.to_string());
                if attempt + 1 < retry.max_attempts {
                    std::thread::sleep(retry.backoff(attempt, digest));
                }
            }
        }
    }
    Err(last)
}

/// How long an upload waits for its lockstep answer before declaring the
/// connection dead and reconnecting.
const UPLOAD_RESPONSE_TIMEOUT: Duration = Duration::from_secs(10);

/// A terminal-or-progress upload answer (errors already mapped).
enum UploadAnswer {
    /// `upload_done`: the digest is committed.
    Done,
    /// `upload_ack {acked}`: the durable high-water mark.
    Acked(u64),
}

/// Maps one upload-tagged response line to progress, completion, or a typed
/// rejection (`upload_error` is never retryable transport-side: the server
/// names a protocol or validation cause).
fn upload_answer(value: &Json) -> Result<UploadAnswer, ClientError> {
    match value.get("type").and_then(Json::as_str) {
        Some("upload_done") => Ok(UploadAnswer::Done),
        Some("upload_ack") => Ok(UploadAnswer::Acked(
            value.get("acked").and_then(Json::as_u64).unwrap_or(0),
        )),
        Some("upload_error") => Err(ClientError::Rejected(
            value
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("unspecified upload error")
                .to_string(),
        )),
        other => Err(ClientError::Protocol(format!(
            "unexpected upload answer {other:?}"
        ))),
    }
}

/// Sends one upload line and blocks for the matching `upload_*` answer
/// (heartbeats and unrelated lines are skipped). `Err` is a transport-level
/// loss: the caller reconnects and resumes.
fn upload_roundtrip(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    line: &str,
    digest: u64,
) -> Result<Json, String> {
    if writeln!(writer, "{line}").is_err() {
        return Err("upload write failed".to_string());
    }
    let hex = format!("{digest:016x}");
    let deadline = Instant::now() + UPLOAD_RESPONSE_TIMEOUT;
    loop {
        match next_line(reader, buf) {
            NetEvent::Line(raw) => {
                let Ok(value) = parse_json(&raw) else {
                    continue;
                };
                let kind = value.get("type").and_then(Json::as_str).unwrap_or("");
                if !kind.starts_with("upload_") {
                    continue;
                }
                if value.get("digest").and_then(Json::as_str) == Some(&hex) {
                    return Ok(value);
                }
            }
            NetEvent::Tick => {
                if Instant::now() >= deadline {
                    return Err("upload answer timed out".to_string());
                }
            }
            NetEvent::Eof => return Err("connection closed mid-upload".to_string()),
            NetEvent::TooLong => return Err("oversized response line".to_string()),
            NetEvent::Failed(message) => return Err(message),
        }
    }
}

/// Applies one response line to the session's slots.
fn dispatch_line(raw: &str, slots: &mut [Slot], retry: RetryPolicy, stats: &mut SessionStats) {
    let Ok(value) = parse_json(raw) else {
        let message = format!("unparseable response line: {raw}");
        for slot in slots.iter_mut().filter(|s| s.result.is_none() && s.active) {
            slot.result = Some(Err(ClientError::Protocol(message.clone())));
        }
        return;
    };
    let kind = value.get("type").and_then(Json::as_str).unwrap_or("");
    let tag = value.get("job").and_then(Json::as_str);
    let slot_index = tag.and_then(|hex| slots.iter().position(|s| s.job_hex == hex));
    match kind {
        "heartbeat" | "pong" => {}
        "protocol_error" => {
            // The server is about to close the connection; the reader will
            // see EOF and the reconnect path takes over.
        }
        "accepted" => {
            if let Some(slot) = slot_index.map(|i| &mut slots[i]) {
                slot.accepted_once = true;
                slot.resume_next = false;
                slot.cached |= value.get("cached").and_then(Json::as_bool).unwrap_or(false);
                slot.duplicate |= value
                    .get("duplicate")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
            }
        }
        "resumed" => {
            if let Some(slot) = slot_index.map(|i| &mut slots[i]) {
                slot.accepted_once = true;
            }
        }
        "unknown_topology" => {
            // The content store no longer holds this submission's uploaded
            // topology: terminal for this session, typed so the caller can
            // re-upload and resubmit (both idempotent).
            let digest = value
                .get("digest")
                .and_then(Json::as_str)
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .unwrap_or(0);
            if let Some(slot) = slot_index.map(|i| &mut slots[i]) {
                if slot.result.is_none() {
                    slot.result = Some(Err(ClientError::UnknownTopology { digest }));
                }
            }
        }
        "unknown_job" => {
            // The server no longer knows this digest (restart): fall back
            // to an idempotent resubmission — the manifest replays recorded
            // trials from seq 1 and the seq filter drops our held prefix.
            if let Some(slot) = slot_index.map(|i| &mut slots[i]) {
                slot.resume_next = false;
                slot.active = false;
            }
        }
        "trial" => {
            let Some(slot) = slot_index.map(|i| &mut slots[i]) else {
                return;
            };
            if slot.result.is_some() {
                return;
            }
            let expected = slot.trial_lines.len() as u64 + 1;
            match value.get("seq").and_then(Json::as_u64) {
                Some(seq) if seq < expected => stats.duplicate_lines_dropped += 1,
                Some(seq) if seq == expected => slot.trial_lines.push(raw.to_string()),
                Some(seq) => {
                    slot.result = Some(Err(ClientError::Protocol(format!(
                        "sequence gap: got seq {seq}, expected {expected}"
                    ))));
                }
                None => {
                    slot.result = Some(Err(ClientError::Protocol(
                        "trial line without seq".to_string(),
                    )));
                }
            }
        }
        "done" => {
            let Some(slot) = slot_index.map(|i| &mut slots[i]) else {
                return;
            };
            if slot.result.is_some() {
                return;
            }
            let count = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0) as usize;
            let taxonomy = TrialTaxonomy {
                completed: count("completed"),
                round_capped: count("round_capped"),
                timed_out: count("timed_out"),
                panicked: count("panicked"),
                not_run: count("not_run"),
            };
            let trials = taxonomy.completed
                + taxonomy.round_capped
                + taxonomy.timed_out
                + taxonomy.panicked
                + taxonomy.not_run;
            if slot.trial_lines.len() != trials {
                slot.result = Some(Err(ClientError::Protocol(format!(
                    "done after {} of {trials} trial lines",
                    slot.trial_lines.len()
                ))));
                return;
            }
            slot.cached |= value.get("cached").and_then(Json::as_bool).unwrap_or(false);
            slot.result = Some(Ok(JobResult {
                job: slot.job_hex.clone(),
                trial_lines: slot.trial_lines.clone(),
                taxonomy,
                reused: count("reused"),
                cached: slot.cached,
                duplicate: slot.duplicate,
            }));
        }
        "overloaded" => {
            let retry_after_ms = value
                .get("retry_after_ms")
                .and_then(Json::as_u64)
                .unwrap_or(100);
            let error = ClientError::Overloaded { retry_after_ms };
            match slot_index {
                Some(i) => retry_or_fail(&mut slots[i], error, Some(retry_after_ms), retry),
                None => {
                    for slot in slots.iter_mut().filter(|s| s.result.is_none() && s.active) {
                        retry_or_fail(slot, error.clone(), Some(retry_after_ms), retry);
                    }
                }
            }
        }
        "draining" => match slot_index {
            Some(i) => retry_or_fail(&mut slots[i], ClientError::Draining, None, retry),
            None => {
                for slot in slots.iter_mut().filter(|s| s.result.is_none() && s.active) {
                    retry_or_fail(slot, ClientError::Draining, None, retry);
                }
            }
        },
        "error" => {
            let message = value
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_string();
            match slot_index {
                Some(i) => slots[i].result = Some(Err(ClientError::Rejected(message))),
                None => {
                    for slot in slots.iter_mut().filter(|s| s.result.is_none() && s.active) {
                        slot.result = Some(Err(ClientError::Rejected(message.clone())));
                    }
                }
            }
        }
        // Unknown line types are skipped (forward compatibility), matching
        // the parser's tolerance for unknown fields.
        _ => {}
    }
}

/// Consumes one shed/drain answer: schedule a retry on this session (the
/// server hint and the backoff schedule both respected) or, with the retry
/// budget exhausted, make the typed error terminal.
fn retry_or_fail(
    slot: &mut Slot,
    error: ClientError,
    wait_hint_ms: Option<u64>,
    retry: RetryPolicy,
) {
    if slot.result.is_some() {
        return;
    }
    slot.active = false;
    slot.attempts += 1;
    if slot.attempts >= retry.max_attempts {
        slot.result = Some(Err(error));
        return;
    }
    let mut wait = retry.backoff(slot.attempts - 1, slot.digest);
    if let Some(ms) = wait_hint_ms {
        wait = wait.max(Duration::from_millis(ms));
    }
    slot.retry_at = Some(Instant::now() + wait);
}

/// One step of the client's bounded reader (mirror of the server's: partial
/// lines accumulate across timeout ticks, and no line may grow past
/// [`MAX_LINE_BYTES`]).
enum NetEvent {
    Line(String),
    Eof,
    TooLong,
    Tick,
    Failed(String),
}

fn next_line(reader: &mut BufReader<TcpStream>, buf: &mut Vec<u8>) -> NetEvent {
    loop {
        let remaining = (MAX_LINE_BYTES + 1).saturating_sub(buf.len());
        if remaining == 0 {
            return NetEvent::TooLong;
        }
        match (&mut *reader).take(remaining as u64).read_until(b'\n', buf) {
            Ok(0) => return NetEvent::Eof,
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    if buf.len() > MAX_LINE_BYTES {
                        return NetEvent::TooLong;
                    }
                    let line = String::from_utf8_lossy(buf).trim_end().to_string();
                    buf.clear();
                    return NetEvent::Line(line);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return NetEvent::Tick
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return NetEvent::Failed(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_is_jittered_and_caps() {
        let policy = RetryPolicy::new();
        let a0 = policy.backoff(0, 7);
        let a1 = policy.backoff(1, 7);
        let a5 = policy.backoff(10, 7);
        assert!(a1 > a0, "backoff must grow: {a0:?} vs {a1:?}");
        assert_eq!(a5, policy.max_delay, "backoff must cap");
        // Deterministic…
        assert_eq!(policy.backoff(0, 7), a0);
        // …but decorrelated across digests.
        assert_ne!(policy.backoff(0, 7), policy.backoff(0, 8));
        // Attempt counts beyond the shift width saturate instead of
        // wrapping.
        assert_eq!(policy.backoff(40, 7), policy.max_delay);
    }

    #[test]
    fn deadline_taxonomy_is_a_typed_error() {
        let result = JobResult {
            job: "0".to_string(),
            trial_lines: Vec::new(),
            taxonomy: TrialTaxonomy {
                completed: 2,
                timed_out: 1,
                not_run: 1,
                ..TrialTaxonomy::default()
            },
            reused: 1,
            cached: false,
            duplicate: false,
        };
        assert_eq!(
            result.ensure_complete(),
            Err(ClientError::DeadlineExceeded {
                timed_out: 1,
                not_run: 1
            })
        );
        assert!((result.recovered_fraction() - 0.25).abs() < 1e-12);
        let clean = JobResult {
            taxonomy: TrialTaxonomy {
                completed: 4,
                ..TrialTaxonomy::default()
            },
            ..result
        };
        assert!(clean.ensure_complete().is_ok());
    }

    #[test]
    fn connection_refused_is_a_typed_io_error_after_retries() {
        // Port 1 on localhost: reliably refused, so the retry loop runs to
        // exhaustion and surfaces Io — quickly, with a fail-fast policy.
        let client = ServeClient::new("127.0.0.1:1").with_retry(RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        });
        let request = SubmitRequest::new(
            "t",
            crate::serve::protocol::TopologySpec::new("star", 8),
            "push",
            1,
        );
        match client.submit(&request) {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn seq_filter_drops_replays_and_rejects_gaps() {
        let request = SubmitRequest::new(
            "t",
            crate::serve::protocol::TopologySpec::new("star", 8),
            "push",
            2,
        );
        let digest = request.digest();
        let mut slots = vec![Slot::new(request)];
        slots[0].active = true;
        let mut stats = SessionStats::default();
        let frame = |seq: u64, index: usize| {
            format!(
                "{{\"type\":\"trial\",\"job\":\"{digest:016x}\",\"seq\":{seq},\"index\":{index},\"status\":\"not-run\"}}"
            )
        };
        let retry = RetryPolicy::none();
        dispatch_line(&frame(1, 0), &mut slots, retry, &mut stats);
        // A replayed seq 1 is dropped, not duplicated.
        dispatch_line(&frame(1, 0), &mut slots, retry, &mut stats);
        dispatch_line(&frame(2, 1), &mut slots, retry, &mut stats);
        assert_eq!(slots[0].trial_lines.len(), 2);
        assert_eq!(stats.duplicate_lines_dropped, 1);
        // A gap is a protocol violation, never a silent loss.
        dispatch_line(&frame(9, 5), &mut slots, retry, &mut stats);
        assert!(matches!(
            slots[0].result,
            Some(Err(ClientError::Protocol(_)))
        ));
    }
}
