//! A deterministic in-process TCP chaos proxy for the serve stack.
//!
//! [`FaultNet`] sits between a client and a `rumor-serve` server and
//! injects network faults — connection drops, mid-stream resets, byte
//! truncations, and stalls — at **seed-keyed** points: the schedule is a
//! pure function of `(seed, connection index)` through the workspace's
//! Philox counter RNG, exactly like PR 6's `FaultPlan` for in-process
//! faults. Two runs of the same scenario therefore inject the same faults
//! at the same byte offsets, which is what lets the `serve_chaos` suite pin
//! *byte-identity* of a sweep's result stream under sustained network
//! failure rather than merely "it eventually finished".
//!
//! The proxy is std-only (vendored-deps constraint): one accept-poll
//! thread, two pump threads per connection, timeout-driven reads so
//! everything unwinds promptly on [`FaultNet::shutdown`].

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::stream::philox2x64;

/// How a faulted connection fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Closed at accept, before any byte flows (connect storm / SYN-then-die).
    Drop,
    /// Both directions cut abruptly once the fault point passes — the
    /// client sees the stream die mid-line.
    Reset,
    /// Exactly `after_bytes` of the response stream are delivered, then the
    /// connection closes — a clean-looking prefix with a silent cut.
    Truncate,
    /// The response stream stalls for the configured delay at the fault
    /// point, then continues undamaged — latency, not loss.
    Delay,
}

/// The seed-keyed fault schedule's parameters.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Schedule key: same seed, same faults, same byte offsets.
    pub seed: u64,
    /// Fraction of connections that fault (0.0 ..= 1.0).
    pub fault_rate: f64,
    /// Fault-point range, in bytes forwarded by the faulted pump
    /// (server→client by default; client→server too with
    /// [`FaultSpec::fault_upstream`]). Keep the lower bound past one line
    /// so every connection makes progress and a resuming client always
    /// converges.
    pub min_after_bytes: u64,
    /// Upper bound of the fault point.
    pub max_after_bytes: u64,
    /// Stall length for [`FaultKind::Delay`] faults.
    pub delay_ms: u64,
    /// Also fault the client→server pump, on its own seed-keyed schedule
    /// (pure in `(seed, connection index)`, independent of the downstream
    /// one). Off by default: request-path faults mainly exercise upload
    /// chunk streams; plain submissions are a single request line.
    pub fault_upstream: bool,
}

impl FaultSpec {
    /// A schedule faulting roughly two connections in three, cutting
    /// 150–1200 bytes into the response stream, with 50 ms stalls.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            fault_rate: 0.65,
            min_after_bytes: 150,
            max_after_bytes: 1200,
            delay_ms: 50,
            fault_upstream: false,
        }
    }

    /// Enables client→server faulting (see [`FaultSpec::fault_upstream`]).
    pub fn with_upstream_faults(mut self) -> Self {
        self.fault_upstream = true;
        self
    }

    /// The fault (kind + downstream byte offset) for connection `index`,
    /// or `None` for a clean connection. Pure in `(seed, index)`.
    pub fn fault_for(&self, index: u64) -> Option<(FaultKind, u64)> {
        let word = philox2x64([index, 0x6661_756c_745f_6e31], self.seed);
        let unit = (word[0] >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= self.fault_rate {
            return None;
        }
        let kind = match word[1] % 4 {
            0 => FaultKind::Drop,
            1 => FaultKind::Reset,
            2 => FaultKind::Truncate,
            _ => FaultKind::Delay,
        };
        let span = self.max_after_bytes.max(self.min_after_bytes) - self.min_after_bytes + 1;
        let offset = philox2x64([index, 0x6661_756c_745f_6e32], self.seed)[0] % span;
        Some((kind, self.min_after_bytes + offset))
    }

    /// The upstream (client→server) fault for connection `index`, or `None`
    /// when upstream faulting is off or this connection's request path is
    /// clean. Pure in `(seed, index)`, drawn from its own Philox nonce so
    /// the two directions' schedules are independent. Never a
    /// [`FaultKind::Drop`] — drops happen at accept, before direction
    /// exists.
    pub fn upstream_fault_for(&self, index: u64) -> Option<(FaultKind, u64)> {
        if !self.fault_upstream {
            return None;
        }
        let word = philox2x64([index, 0x6661_756c_745f_6e33], self.seed);
        let unit = (word[0] >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= self.fault_rate {
            return None;
        }
        let kind = match word[1] % 3 {
            0 => FaultKind::Reset,
            1 => FaultKind::Truncate,
            _ => FaultKind::Delay,
        };
        let span = self.max_after_bytes.max(self.min_after_bytes) - self.min_after_bytes + 1;
        let offset = philox2x64([index, 0x6661_756c_745f_6e34], self.seed)[0] % span;
        Some((kind, self.min_after_bytes + offset))
    }
}

/// What the proxy actually injected (the chaos suite asserts a floor on
/// `total` so a mis-tuned schedule cannot pass vacuously).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Connections accepted.
    pub connections: u64,
    /// Connections closed at accept.
    pub drops: u64,
    /// Connections cut abruptly mid-stream.
    pub resets: u64,
    /// Connections truncated at an exact byte offset.
    pub truncations: u64,
    /// Stalls injected.
    pub delays: u64,
    /// Of the above, faults injected on the client→server pump.
    pub upstream_faults: u64,
}

impl FaultReport {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.drops + self.resets + self.truncations + self.delays
    }
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    drops: AtomicU64,
    resets: AtomicU64,
    truncations: AtomicU64,
    delays: AtomicU64,
    upstream_faults: AtomicU64,
}

/// One proxied connection pair; `kill` tears both sides down exactly once.
struct Link {
    client: TcpStream,
    server: TcpStream,
    dead: AtomicBool,
}

impl Link {
    fn kill(&self) {
        if !self.dead.swap(true, Ordering::SeqCst) {
            self.client.shutdown(Shutdown::Both).ok();
            self.server.shutdown(Shutdown::Both).ok();
        }
    }

    fn dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }
}

/// The running proxy: listens on an ephemeral local port and forwards to
/// the upstream address, injecting the [`FaultSpec`] schedule.
#[derive(Debug)]
pub struct FaultNet {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultNet {
    /// Starts the proxy in front of `upstream`.
    pub fn start(upstream: SocketAddr, spec: FaultSpec) -> std::io::Result<FaultNet> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            Some(std::thread::spawn(move || {
                accept_loop(&listener, upstream, spec, &shutdown, &counters);
            }))
        };
        Ok(FaultNet {
            addr,
            shutdown,
            counters,
            accept_thread,
        })
    }

    /// The proxy's client-facing address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the injected-fault counters.
    pub fn report(&self) -> FaultReport {
        FaultReport {
            connections: self.counters.connections.load(Ordering::Relaxed),
            drops: self.counters.drops.load(Ordering::Relaxed),
            resets: self.counters.resets.load(Ordering::Relaxed),
            truncations: self.counters.truncations.load(Ordering::Relaxed),
            delays: self.counters.delays.load(Ordering::Relaxed),
            upstream_faults: self.counters.upstream_faults.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, tears down every live link, and joins the proxy's
    /// threads.
    pub fn shutdown(mut self) -> FaultReport {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        self.report()
    }
}

impl Drop for FaultNet {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    spec: FaultSpec,
    shutdown: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
) {
    let mut index = 0u64;
    let links: Arc<Mutex<Vec<Arc<Link>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let fault = spec.fault_for(index);
                let upstream_fault = spec.upstream_fault_for(index);
                index += 1;
                if let Some((FaultKind::Drop, _)) = fault {
                    counters.drops.fetch_add(1, Ordering::Relaxed);
                    drop(client); // closed before any byte flows
                    continue;
                }
                let Ok(server) = TcpStream::connect(upstream) else {
                    continue; // upstream gone (drained); client sees EOF
                };
                client.set_nodelay(true).ok();
                server.set_nodelay(true).ok();
                client
                    .set_read_timeout(Some(Duration::from_millis(50)))
                    .ok();
                server
                    .set_read_timeout(Some(Duration::from_millis(50)))
                    .ok();
                let link = match (client.try_clone(), server.try_clone()) {
                    (Ok(c), Ok(s)) => Arc::new(Link {
                        client: c,
                        server: s,
                        dead: AtomicBool::new(false),
                    }),
                    _ => continue,
                };
                links.lock().unwrap().push(Arc::clone(&link));
                // Upstream pump (client → server): clean by default; with
                // `fault_upstream` it carries its own independently
                // scheduled fault, exercising chunked upload request
                // streams.
                {
                    let link = Arc::clone(&link);
                    let shutdown = Arc::clone(shutdown);
                    let counters = Arc::clone(counters);
                    let delay_ms = spec.delay_ms;
                    let (from, to) = (client.try_clone(), server.try_clone());
                    if let (Ok(from), Ok(to)) = (from, to) {
                        pumps.push(std::thread::spawn(move || {
                            pump(
                                from,
                                to,
                                &link,
                                &shutdown,
                                upstream_fault,
                                Some(counters),
                                delay_ms,
                                true,
                            );
                        }));
                    }
                }
                // Downstream pump (server → client): carries the fault.
                {
                    let shutdown = Arc::clone(shutdown);
                    let counters = Arc::clone(counters);
                    let delay_ms = spec.delay_ms;
                    pumps.push(std::thread::spawn(move || {
                        pump(
                            server,
                            client,
                            &link,
                            &shutdown,
                            fault,
                            Some(counters),
                            delay_ms,
                            false,
                        );
                    }));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for link in links.lock().unwrap().iter() {
        link.kill();
    }
    for thread in pumps {
        let _ = thread.join();
    }
}

/// Forwards bytes `from → to` until EOF, error, shutdown, or the link dies;
/// applies the fault (if any) at its byte offset in this pump's direction.
/// `upstream` only affects attribution in the fault counters.
#[allow(clippy::too_many_arguments)]
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    link: &Arc<Link>,
    shutdown: &Arc<AtomicBool>,
    fault: Option<(FaultKind, u64)>,
    counters: Option<Arc<Counters>>,
    delay_ms: u64,
    upstream: bool,
) {
    let mut buf = [0u8; 4096];
    let mut forwarded = 0u64;
    let mut fault = fault;
    loop {
        if link.dead() || shutdown.load(Ordering::SeqCst) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let mut chunk = &buf[..n];
                if let Some((kind, after)) = fault {
                    if forwarded + n as u64 >= after {
                        let counters = counters.as_ref().expect("faulted pump has counters");
                        if upstream {
                            counters.upstream_faults.fetch_add(1, Ordering::Relaxed);
                        }
                        match kind {
                            FaultKind::Reset => {
                                // Cut abruptly: nothing past the fault point
                                // is delivered, both directions die.
                                let keep = (after - forwarded) as usize;
                                let _ = to.write_all(&chunk[..keep.min(chunk.len())]);
                                counters.resets.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            FaultKind::Truncate => {
                                let keep = (after - forwarded) as usize;
                                let _ = to
                                    .write_all(&chunk[..keep.min(chunk.len())])
                                    .and_then(|()| to.flush());
                                counters.truncations.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            FaultKind::Delay => {
                                counters.delays.fetch_add(1, Ordering::Relaxed);
                                let keep = ((after - forwarded) as usize).min(chunk.len());
                                if to.write_all(&chunk[..keep]).is_err() {
                                    break;
                                }
                                std::thread::sleep(Duration::from_millis(delay_ms));
                                chunk = &chunk[keep..];
                                fault = None; // one stall per connection
                            }
                            FaultKind::Drop => unreachable!("drops happen at accept"),
                        }
                    }
                }
                if !chunk.is_empty() && to.write_all(chunk).is_err() {
                    break;
                }
                forwarded += n as u64;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    link.kill();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_mixes_kinds() {
        let spec = FaultSpec::new(42);
        let a: Vec<_> = (0..64).map(|i| spec.fault_for(i)).collect();
        let b: Vec<_> = (0..64).map(|i| spec.fault_for(i)).collect();
        assert_eq!(a, b, "same seed must give the same schedule");
        let faulted = a.iter().flatten().count();
        assert!(
            (20..=55).contains(&faulted),
            "fault rate badly off: {faulted}/64"
        );
        for kind in [
            FaultKind::Drop,
            FaultKind::Reset,
            FaultKind::Truncate,
            FaultKind::Delay,
        ] {
            assert!(
                a.iter().flatten().any(|(k, _)| *k == kind),
                "kind {kind:?} never scheduled in 64 connections"
            );
        }
        for (_, after) in a.iter().flatten() {
            assert!((150..=1200).contains(after), "offset out of range: {after}");
        }
        // A different seed shuffles the schedule.
        let other: Vec<_> = (0..64).map(|i| FaultSpec::new(43).fault_for(i)).collect();
        assert_ne!(a, other);
    }

    #[test]
    fn upstream_schedule_is_gated_independent_and_dropless() {
        let spec = FaultSpec::new(42);
        assert!(
            (0..64).all(|i| spec.upstream_fault_for(i).is_none()),
            "upstream faulting must be off by default"
        );
        let spec = spec.with_upstream_faults();
        let a: Vec<_> = (0..64).map(|i| spec.upstream_fault_for(i)).collect();
        let b: Vec<_> = (0..64).map(|i| spec.upstream_fault_for(i)).collect();
        assert_eq!(a, b, "same seed must give the same upstream schedule");
        assert!(
            a.iter().flatten().all(|(k, _)| *k != FaultKind::Drop),
            "drops happen at accept, never per-direction"
        );
        let faulted = a.iter().flatten().count();
        assert!(
            (20..=55).contains(&faulted),
            "upstream fault rate badly off: {faulted}/64"
        );
        // Independent of the downstream schedule: where both directions
        // fault, the offsets must not be correlated copies.
        let paired: Vec<_> = (0..64)
            .filter_map(|i| Some((spec.fault_for(i)?, a[i as usize]?)))
            .collect();
        assert!(
            paired.iter().any(|((_, down), (_, up))| down != up),
            "upstream offsets mirror downstream ones"
        );
    }

    #[test]
    fn proxy_forwards_cleanly_at_rate_zero() {
        use std::io::{BufRead, BufReader, Write};
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (stream, _) = upstream.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut writer = stream;
            write!(writer, "echo: {line}").unwrap();
        });
        let spec = FaultSpec {
            fault_rate: 0.0,
            ..FaultSpec::new(1)
        };
        let proxy = FaultNet::start(upstream_addr, spec).unwrap();
        let client = TcpStream::connect(proxy.addr()).unwrap();
        let mut writer = client.try_clone().unwrap();
        writeln!(writer, "hello").unwrap();
        let mut line = String::new();
        BufReader::new(client).read_line(&mut line).unwrap();
        assert_eq!(line, "echo: hello\n");
        echo.join().unwrap();
        let report = proxy.shutdown();
        assert_eq!(report.connections, 1);
        assert_eq!(report.total(), 0);
    }
}
