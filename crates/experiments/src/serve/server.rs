//! The blocking TCP front of `rumor-serve`: one accept-poll loop, one
//! handler thread per connection, no async runtime (vendored-deps
//! constraint — std only).
//!
//! Every connection carries exactly one request line and receives a typed
//! response stream (see [`crate::serve::protocol`]). The accept loop polls a
//! non-blocking listener so a `drain` request can stop admission and let
//! the process exit without signal handling (the crate forbids `unsafe`, so
//! `SIGTERM` cannot be trapped in-process; kill-safety comes from the
//! scheduler's atomic manifests and checkpoints instead — see the module
//! docs of [`crate::serve`]).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::serve::protocol::{
    accepted_line, done_line, draining_line, error_line, overloaded_line, parse_request, Request,
};
use crate::serve::scheduler::{Scheduler, ServeConfig, ServeStats, Submission};

/// A running serve instance: listener + scheduler.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    connections: Arc<AtomicUsize>,
}

/// A cheap handle onto a running [`Server`] for in-process control
/// (tests, benches): counters and programmatic drain.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    scheduler: Arc<Scheduler>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current scheduler counters.
    pub fn stats(&self) -> ServeStats {
        self.scheduler.stats()
    }

    /// Requests a graceful drain, as if a `drain` verb had arrived.
    pub fn drain(&self) {
        self.scheduler.begin_drain();
    }
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port) and starts the
    /// worker pool.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            scheduler: Arc::new(Scheduler::start(config)),
            connections: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// The bound address (after an ephemeral-port bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A control handle that outlives `run`.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            scheduler: Arc::clone(&self.scheduler),
            addr: self.addr,
        }
    }

    /// Serves until drained: accepts connections, spawning one handler
    /// thread per connection, and returns once a drain request has stopped
    /// admission, in-flight work has finished or checkpointed, and open
    /// connections have unwound (bounded by the configured grace).
    pub fn run(self) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let scheduler = Arc::clone(&self.scheduler);
                    let connections = Arc::clone(&self.connections);
                    connections.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        let _ = handle_connection(stream, &scheduler);
                        connections.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.scheduler.draining() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: workers finish or checkpoint their current trial, every
        // unfinished feed is terminated, then connection threads unwind.
        self.scheduler.finish_drain();
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, scheduler: &Scheduler) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let request = match parse_request(line.trim_end()) {
        Ok(request) => request,
        Err(message) => {
            writeln!(writer, "{}", error_line(&message))?;
            return Ok(());
        }
    };
    match request {
        Request::Ping => writeln!(writer, "{{\"type\":\"pong\"}}"),
        Request::Drain => {
            scheduler.begin_drain();
            writeln!(writer, "{}", draining_line())
        }
        Request::Stats => {
            let stats = scheduler.stats();
            writeln!(
                writer,
                "{{\"type\":\"stats\",\"executed\":{},\"shed\":{},\"cache_hits\":{},\"duplicate_hits\":{},\"pending_trials\":{},\"pending_jobs\":{}}}",
                stats.trials_executed,
                stats.shed,
                stats.cache_hits,
                stats.duplicate_hits,
                stats.pending_trials,
                stats.pending_jobs,
            )
        }
        Request::Submit(request) => {
            let trials = request.trials;
            match scheduler.submit(request) {
                Submission::Rejected(message) => writeln!(writer, "{}", error_line(&message)),
                Submission::Draining => writeln!(writer, "{}", draining_line()),
                Submission::Overloaded { retry_after_ms } => {
                    writeln!(writer, "{}", overloaded_line(retry_after_ms))
                }
                Submission::Cached(cached) => stream_cached(&mut writer, trials, &cached),
                Submission::Attached { job, duplicate } => {
                    writeln!(
                        writer,
                        "{}",
                        accepted_line(job.digest, trials, false, duplicate)
                    )?;
                    let mut sent = 0usize;
                    loop {
                        let (lines, finished, drained) = job.wait_lines(sent);
                        sent += lines.len();
                        for line in lines {
                            writeln!(writer, "{line}")?;
                        }
                        if drained {
                            writeln!(writer, "{}", draining_line())?;
                            break;
                        }
                        if finished {
                            let tax = job.taxonomy();
                            writeln!(
                                writer,
                                "{}",
                                done_line(
                                    job.digest,
                                    tax.completed,
                                    tax.round_capped,
                                    tax.timed_out,
                                    tax.panicked,
                                    tax.not_run,
                                    job.reused,
                                    false,
                                )
                            )?;
                            break;
                        }
                    }
                    Ok(())
                }
            }
        }
    }
}

fn stream_cached(
    writer: &mut TcpStream,
    trials: usize,
    cached: &crate::serve::scheduler::CachedJob,
) -> std::io::Result<()> {
    // Cached replay: identical trial lines, `cached:true` bookkeeping, and
    // the whole sweep counts as reused work.
    writeln!(
        writer,
        "{}",
        accepted_line(cached.digest, trials, true, false)
    )?;
    for line in &cached.trial_lines {
        writeln!(writer, "{line}")?;
    }
    let tax = &cached.taxonomy;
    writeln!(
        writer,
        "{}",
        done_line(
            cached.digest,
            tax.completed,
            tax.round_capped,
            tax.timed_out,
            tax.panicked,
            tax.not_run,
            trials,
            true,
        )
    )
}
