//! The blocking TCP front of `rumor-serve`: one accept-poll loop, one
//! session per connection, no async runtime (vendored-deps constraint —
//! std only).
//!
//! ## Sessions
//!
//! A connection is a multiplexed **session**: a reader thread parses any
//! number of request lines, a writer thread drains a shared outbox, and
//! every accepted job gets a forwarder thread that frames the job's stored
//! lines with `"job"`/`"seq"` tags (see [`crate::serve::protocol`]) and
//! pushes them into the outbox. Many jobs therefore stream concurrently
//! over one connection, and a `resume` re-attaches to a live or cached job
//! replaying exactly the suffix past the client's `last_seq`.
//!
//! ## Liveness
//!
//! The reader is bounded in both dimensions: a line longer than the
//! configured bound ([`crate::serve::protocol::MAX_LINE_BYTES`] by default,
//! [`ServeConfig::with_max_line_bytes`] to change it) answers with a typed
//! `protocol_error` and closes (a
//! hostile client cannot grow buffers without limit), and a connection that
//! sends nothing — not even a heartbeat — for the configured idle timeout
//! is reclaimed, so half-open TCP peers cannot leak session threads.
//!
//! The accept loop polls a non-blocking listener so a `drain` request can
//! stop admission and let the process exit without signal handling (the
//! crate forbids `unsafe`, so `SIGTERM` cannot be trapped in-process;
//! kill-safety comes from the scheduler's atomic manifests and checkpoints
//! instead — see the module docs of [`crate::serve`]).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::serve::protocol::{
    accepted_line, done_line, draining_line, error_line, heartbeat_line, overloaded_line,
    parse_request, protocol_error_line, resumed_line, status_line, unknown_job_line,
    unknown_topology_line, upload_ack_line, upload_done_line, upload_error_line,
    upload_status_line, with_session, Request, ServerStatus,
};
use crate::serve::scheduler::{
    CachedJob, Job, Lookup, Scheduler, ServeConfig, ServeStats, Submission,
};
use crate::serve::store::UploadState;
use crate::serve::sync::{lock_recover, wait_recover};

/// How long a forwarder waits on a silent feed before re-checking the
/// session's closed flag — bounds forwarder-thread lifetime after a
/// connection dies.
const FORWARD_POLL: Duration = Duration::from_millis(100);

/// Session-layer counters (the non-scheduler half of the `status` verb).
#[derive(Debug, Default)]
struct SessionCounters {
    opened: AtomicU64,
    open: AtomicU64,
    resumes: AtomicU64,
    replayed_lines: AtomicU64,
    heartbeats: AtomicU64,
    protocol_errors: AtomicU64,
    idle_reaped: AtomicU64,
}

/// A running serve instance: listener + scheduler + session counters.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    counters: Arc<SessionCounters>,
    connections: Arc<AtomicUsize>,
    idle_timeout: Duration,
    max_line_bytes: usize,
}

/// A cheap handle onto a running [`Server`] for in-process control
/// (tests, benches): counters and programmatic drain.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    scheduler: Arc<Scheduler>,
    counters: Arc<SessionCounters>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current scheduler counters.
    pub fn stats(&self) -> ServeStats {
        self.scheduler.stats()
    }

    /// Current scheduler load plus session-layer counters (the `status`
    /// verb, without the round-trip).
    pub fn status(&self) -> ServerStatus {
        current_status(&self.scheduler, &self.counters)
    }

    /// Requests a graceful drain, as if a `drain` verb had arrived.
    pub fn drain(&self) {
        self.scheduler.begin_drain();
    }
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port) and starts the
    /// worker pool.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let idle_timeout = config.idle_timeout;
        let max_line_bytes = config.max_line_bytes;
        Ok(Server {
            listener,
            addr,
            scheduler: Arc::new(Scheduler::start(config)?),
            counters: Arc::new(SessionCounters::default()),
            connections: Arc::new(AtomicUsize::new(0)),
            idle_timeout,
            max_line_bytes,
        })
    }

    /// The bound address (after an ephemeral-port bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A control handle that outlives `run`.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            scheduler: Arc::clone(&self.scheduler),
            counters: Arc::clone(&self.counters),
            addr: self.addr,
        }
    }

    /// Serves until drained: accepts connections, spawning one session per
    /// connection, and returns once a drain request has stopped admission,
    /// in-flight work has finished or checkpointed, and open connections
    /// have unwound (bounded by the configured grace).
    pub fn run(self) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let scheduler = Arc::clone(&self.scheduler);
                    let counters = Arc::clone(&self.counters);
                    let connections = Arc::clone(&self.connections);
                    let idle_timeout = self.idle_timeout;
                    let max_line_bytes = self.max_line_bytes;
                    connections.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        let _ = handle_connection(
                            stream,
                            &scheduler,
                            &counters,
                            idle_timeout,
                            max_line_bytes,
                        );
                        connections.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.scheduler.draining() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: workers finish or checkpoint their current trial, every
        // unfinished feed is terminated, then sessions unwind (each open
        // job's forwarder sends a job-tagged `draining` line first).
        self.scheduler.finish_drain();
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Session plumbing
// ---------------------------------------------------------------------------

struct OutboxState {
    lines: VecDeque<String>,
    closed: bool,
}

/// One connection's shared state: the response outbox (reader + forwarders
/// push, the writer thread drains) and the teardown flags.
struct Session {
    outbox: Mutex<OutboxState>,
    ready: Condvar,
    /// The reader has exited; forwarders must stop pushing and return.
    closed: AtomicBool,
    /// The writer hit an I/O error (dead peer); pushes become no-ops.
    writer_dead: AtomicBool,
}

impl Session {
    fn new() -> Session {
        Session {
            outbox: Mutex::new(OutboxState {
                lines: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
            writer_dead: AtomicBool::new(false),
        }
    }

    /// Queues one response line; `false` once the session is tearing down
    /// (callers treat that as "stop producing"). Poison-tolerant: a
    /// forwarder that panicked while holding the outbox must not take the
    /// rest of the session — let alone the server — down with it.
    fn push(&self, line: String) -> bool {
        if self.writer_dead.load(Ordering::Relaxed) {
            return false;
        }
        let mut outbox = lock_recover(&self.outbox);
        if outbox.closed {
            return false;
        }
        outbox.lines.push_back(line);
        self.ready.notify_one();
        true
    }

    /// Seals the outbox: the writer drains what is queued, then exits.
    fn close_outbox(&self) {
        let mut outbox = lock_recover(&self.outbox);
        outbox.closed = true;
        self.ready.notify_all();
    }

    /// Blocks for the next line; `None` once the outbox is sealed and empty.
    fn pop_blocking(&self) -> Option<String> {
        let mut outbox = lock_recover(&self.outbox);
        loop {
            if let Some(line) = outbox.lines.pop_front() {
                return Some(line);
            }
            if outbox.closed {
                return None;
            }
            outbox = wait_recover(&self.ready, outbox);
        }
    }
}

fn writer_loop(session: &Session, stream: TcpStream) {
    let mut writer = std::io::BufWriter::new(stream);
    while let Some(line) = session.pop_blocking() {
        if writeln!(writer, "{line}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            session.writer_dead.store(true, Ordering::Relaxed);
            return;
        }
    }
}

/// One step of the bounded reader.
enum ReadEvent {
    /// A complete request line (newline stripped).
    Line(String),
    /// The peer closed the connection.
    Eof,
    /// The line exceeded the configured byte bound — protocol violation.
    TooLong,
    /// The read timeout elapsed with no complete line; the caller checks
    /// the idle deadline and teardown flags, then polls again.
    Tick,
    /// A non-retryable I/O error.
    Failed,
}

/// Reads the next request line without ever growing `buf` past the bound:
/// each read is capped at the remaining budget, partial lines accumulate
/// across timeout ticks, and a line that fills the budget without a newline
/// is a [`ReadEvent::TooLong`] violation.
fn next_event(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max_line_bytes: usize,
) -> ReadEvent {
    loop {
        let remaining = (max_line_bytes + 1).saturating_sub(buf.len());
        if remaining == 0 {
            return ReadEvent::TooLong;
        }
        match (&mut *reader).take(remaining as u64).read_until(b'\n', buf) {
            Ok(0) => return ReadEvent::Eof,
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    if buf.len() > max_line_bytes {
                        return ReadEvent::TooLong;
                    }
                    let line = String::from_utf8_lossy(buf).trim_end().to_string();
                    buf.clear();
                    return ReadEvent::Line(line);
                }
                // No newline yet: either the take-cap was exhausted (the
                // next iteration reports TooLong) or the peer paused
                // mid-line; keep accumulating.
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return ReadEvent::Tick
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadEvent::Failed,
        }
    }
}

/// The read-timeout granularity: fine enough to honor small (test-sized)
/// idle timeouts, coarse enough not to spin.
fn poll_interval(idle_timeout: Duration) -> Duration {
    (idle_timeout / 4).clamp(Duration::from_millis(10), Duration::from_millis(500))
}

fn handle_connection(
    stream: TcpStream,
    scheduler: &Arc<Scheduler>,
    counters: &Arc<SessionCounters>,
    idle_timeout: Duration,
    max_line_bytes: usize,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(poll_interval(idle_timeout)))
        .ok();
    // A write stalled this long means a dead or wedged peer; the writer
    // marks itself dead and the session unwinds instead of blocking forever.
    stream.set_write_timeout(Some(Duration::from_secs(10))).ok();
    counters.opened.fetch_add(1, Ordering::Relaxed);
    counters.open.fetch_add(1, Ordering::Relaxed);

    let session = Arc::new(Session::new());
    let writer = {
        let session = Arc::clone(&session);
        let stream = stream.try_clone()?;
        std::thread::spawn(move || writer_loop(&session, stream))
    };
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut forwarders: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut idle_deadline = Instant::now() + idle_timeout;

    loop {
        if session.writer_dead.load(Ordering::Relaxed) {
            break;
        }
        match next_event(&mut reader, &mut buf, max_line_bytes) {
            ReadEvent::Tick => {
                if Instant::now() >= idle_deadline {
                    counters.idle_reaped.fetch_add(1, Ordering::Relaxed);
                    session.push(protocol_error_line("idle timeout: no request or heartbeat"));
                    break;
                }
            }
            ReadEvent::Eof | ReadEvent::Failed => break,
            ReadEvent::TooLong => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                session.push(protocol_error_line(&format!(
                    "line exceeds {max_line_bytes} bytes"
                )));
                break;
            }
            ReadEvent::Line(line) => {
                idle_deadline = Instant::now() + idle_timeout;
                if line.is_empty() {
                    continue;
                }
                match parse_request(&line) {
                    Err(message) => {
                        // An unparseable line cannot be correlated to a job;
                        // answer and close, like the pre-session server.
                        counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        session.push(error_line(None, &message));
                        break;
                    }
                    Ok(request) => {
                        if !handle_request(request, scheduler, counters, &session, &mut forwarders)
                        {
                            break;
                        }
                    }
                }
            }
        }
    }

    // Teardown in dependency order: stop the forwarders, then seal the
    // outbox so the writer flushes whatever is queued and exits.
    session.closed.store(true, Ordering::Relaxed);
    for forwarder in forwarders {
        let _ = forwarder.join();
    }
    session.close_outbox();
    let _ = writer.join();
    counters.open.fetch_sub(1, Ordering::Relaxed);
    Ok(())
}

/// Dispatches one parsed request inside a session. Returns `false` when the
/// session should close (the `drain` verb: answer, then disconnect).
fn handle_request(
    request: Request,
    scheduler: &Arc<Scheduler>,
    counters: &Arc<SessionCounters>,
    session: &Arc<Session>,
    forwarders: &mut Vec<std::thread::JoinHandle<()>>,
) -> bool {
    match request {
        Request::Ping => {
            session.push("{\"type\":\"pong\"}".to_string());
        }
        Request::Heartbeat => {
            counters.heartbeats.fetch_add(1, Ordering::Relaxed);
            session.push(heartbeat_line());
        }
        Request::Drain => {
            scheduler.begin_drain();
            session.push(draining_line(None));
            return false;
        }
        Request::Stats => {
            let stats = scheduler.stats();
            session.push(format!(
                "{{\"type\":\"stats\",\"executed\":{},\"shed\":{},\"cache_hits\":{},\"duplicate_hits\":{},\"pending_trials\":{},\"pending_jobs\":{}}}",
                stats.trials_executed,
                stats.shed,
                stats.cache_hits,
                stats.duplicate_hits,
                stats.pending_trials,
                stats.pending_jobs,
            ));
        }
        Request::Status => {
            session.push(status_line(&current_status(scheduler, counters)));
        }
        Request::Submit(request) => {
            let digest = request.digest();
            let trials = request.trials;
            match scheduler.submit(request) {
                Submission::Rejected(message) => {
                    session.push(error_line(Some(digest), &message));
                }
                Submission::Draining => {
                    session.push(draining_line(Some(digest)));
                }
                Submission::Overloaded { retry_after_ms } => {
                    session.push(overloaded_line(Some(digest), retry_after_ms));
                }
                Submission::Cached(cached) => {
                    session.push(accepted_line(digest, trials, true, false));
                    replay_cached(session, counters, &cached, 0, trials, false);
                }
                Submission::Attached { job, duplicate } => {
                    session.push(accepted_line(digest, trials, false, duplicate));
                    forwarders.push(spawn_forwarder(job, session, counters, 0, false));
                }
                Submission::UnknownTopology { topology } => {
                    session.push(unknown_topology_line(digest, topology));
                }
            }
        }
        Request::UploadBegin(manifest) => {
            let digest = manifest.digest;
            match scheduler.store().begin(manifest) {
                Ok(UploadState::Committed { bytes }) => {
                    session.push(upload_done_line(digest, bytes));
                }
                Ok(UploadState::Partial { acked, .. }) => {
                    session.push(upload_ack_line(digest, acked));
                }
                // `begin` never answers Unknown (it creates the partial);
                // ack from zero for exhaustiveness.
                Ok(UploadState::Unknown) => {
                    session.push(upload_ack_line(digest, 0));
                }
                Err(e) => {
                    session.push(upload_error_line(digest, &e.to_string()));
                }
            }
        }
        Request::UploadChunk {
            digest,
            index,
            payload,
            crc,
        } => match scheduler.store().chunk(digest, index, &payload, crc) {
            Ok(acked) => {
                session.push(upload_ack_line(digest, acked));
            }
            Err(e) => {
                session.push(upload_error_line(digest, &e.to_string()));
            }
        },
        Request::UploadCommit { digest } => match scheduler.store().commit(digest) {
            Ok(bytes) => {
                session.push(upload_done_line(digest, bytes));
            }
            Err(e) => {
                session.push(upload_error_line(digest, &e.to_string()));
            }
        },
        Request::UploadStatus { digest } => {
            // For a committed entry "resume progress" is moot; acked and
            // chunks both carry the stored byte size.
            let (state, acked, chunks) = match scheduler.store().status(digest) {
                UploadState::Committed { bytes } => ("committed", bytes, bytes),
                UploadState::Partial { acked, chunks } => ("partial", acked, chunks),
                UploadState::Unknown => ("unknown", 0, 0),
            };
            session.push(upload_status_line(digest, state, acked, chunks));
        }
        Request::Resume { job, last_seq } => {
            counters.resumes.fetch_add(1, Ordering::Relaxed);
            match scheduler.lookup(job) {
                Lookup::Running(running) => {
                    session.push(resumed_line(job, running.trials, last_seq));
                    let start = (last_seq as usize).min(running.trials);
                    forwarders.push(spawn_forwarder(running, session, counters, start, true));
                }
                Lookup::Cached(cached) => {
                    let trials = cached.trial_lines.len();
                    session.push(resumed_line(job, trials, last_seq));
                    replay_cached(session, counters, &cached, last_seq as usize, trials, true);
                }
                Lookup::Unknown => {
                    session.push(unknown_job_line(job));
                }
            }
        }
    }
    true
}

/// Replays a cached job's suffix past `from` (a line index) and the `done`
/// line, all framed — byte-identical to the live stream.
fn replay_cached(
    session: &Arc<Session>,
    counters: &Arc<SessionCounters>,
    cached: &CachedJob,
    from: usize,
    reused: usize,
    resumed: bool,
) {
    let total = cached.trial_lines.len();
    let from = from.min(total);
    for (index, line) in cached.trial_lines.iter().enumerate().skip(from) {
        if !session.push(with_session(line, cached.digest, index as u64 + 1)) {
            return;
        }
    }
    if resumed {
        counters
            .replayed_lines
            .fetch_add((total - from) as u64, Ordering::Relaxed);
    }
    let tax = &cached.taxonomy;
    session.push(done_line(
        cached.digest,
        total as u64 + 1,
        tax.completed,
        tax.round_capped,
        tax.timed_out,
        tax.panicked,
        tax.not_run,
        reused,
        true,
    ));
}

/// Spawns the per-job forwarder: tails the job's feed from line index
/// `start`, frames each line with `(job, seq)`, and finishes with the
/// `done` (or job-tagged `draining`) line. Exits within [`FORWARD_POLL`] of
/// the session closing, so a dead connection reclaims its threads.
fn spawn_forwarder(
    job: Arc<Job>,
    session: &Arc<Session>,
    counters: &Arc<SessionCounters>,
    start: usize,
    resumed: bool,
) -> std::thread::JoinHandle<()> {
    let session = Arc::clone(session);
    let counters = Arc::clone(counters);
    std::thread::spawn(move || {
        let mut sent = start;
        loop {
            if session.closed.load(Ordering::Relaxed) {
                return;
            }
            let (lines, finished, drained) = job.wait_lines_timeout(sent, FORWARD_POLL);
            if resumed && !lines.is_empty() {
                counters
                    .replayed_lines
                    .fetch_add(lines.len() as u64, Ordering::Relaxed);
            }
            for line in &lines {
                sent += 1;
                if !session.push(with_session(line, job.digest, sent as u64)) {
                    return;
                }
            }
            if drained {
                session.push(draining_line(Some(job.digest)));
                return;
            }
            if finished && sent >= job.trials {
                let tax = job.taxonomy();
                session.push(done_line(
                    job.digest,
                    job.trials as u64 + 1,
                    tax.completed,
                    tax.round_capped,
                    tax.timed_out,
                    tax.panicked,
                    tax.not_run,
                    job.reused,
                    false,
                ));
                return;
            }
        }
    })
}

fn current_status(scheduler: &Scheduler, counters: &SessionCounters) -> ServerStatus {
    let stats = scheduler.stats();
    let store = scheduler.store().counters();
    ServerStatus {
        queue_depth: stats.pending_trials,
        active_jobs: stats.pending_jobs,
        executed: stats.trials_executed,
        shed: stats.shed,
        cache_hits: stats.cache_hits,
        duplicate_hits: stats.duplicate_hits,
        open_sessions: counters.open.load(Ordering::Relaxed),
        sessions_opened: counters.opened.load(Ordering::Relaxed),
        resumes: counters.resumes.load(Ordering::Relaxed),
        replayed_lines: counters.replayed_lines.load(Ordering::Relaxed),
        heartbeats: counters.heartbeats.load(Ordering::Relaxed),
        protocol_errors: counters.protocol_errors.load(Ordering::Relaxed),
        idle_reaped: counters.idle_reaped.load(Ordering::Relaxed),
        graphs_stored: store.graphs_stored,
        store_bytes: store.store_bytes,
        evictions: store.evictions,
        partial_uploads: store.partial_uploads,
        failed_validations: store.failed_validations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The wedge class the poison-tolerant outbox closes: a session thread
    /// that panics while holding the outbox lock used to poison it, after
    /// which every `push` panicked in turn and the writer died inside
    /// `Condvar::wait` — lines queued forever, session threads leaked. Now
    /// the remaining threads recover the guard and drain normally.
    #[test]
    fn outbox_survives_a_poisoning_session_thread() {
        let session = Arc::new(Session::new());
        session.push("before".to_string());

        let poisoner = Arc::clone(&session);
        std::thread::spawn(move || {
            let _guard = poisoner.outbox.lock().unwrap();
            panic!("forwarder dies mid-push");
        })
        .join()
        .unwrap_err();
        assert!(session.outbox.is_poisoned(), "setup must actually poison");

        // Pushes keep landing, the blocked pop drains them, and sealing
        // still unblocks the writer loop.
        assert!(session.push("after".to_string()));
        assert_eq!(session.pop_blocking().as_deref(), Some("before"));
        assert_eq!(session.pop_blocking().as_deref(), Some("after"));
        let drainer = Arc::clone(&session);
        let writer = std::thread::spawn(move || drainer.pop_blocking());
        std::thread::sleep(Duration::from_millis(20));
        session.close_outbox();
        assert_eq!(writer.join().unwrap(), None);
        assert!(!session.push("sealed".to_string()));
    }
}
