//! CHURN — fault tolerance of `visit-exchange` under agent churn
//! (the open problem sketched in Section 9 of the paper).
//!
//! The paper notes that the agent protocols are probably *not* robust to
//! losing agents on faulty nodes/links, but conjectures that a dynamic agent
//! population (agents die, fresh agents are born at a proportional rate) would
//! tolerate losses. [`ChurnVisitExchange`]
//! implements that variant; this experiment sweeps the per-round churn
//! probability and reports the slowdown relative to churn-free
//! `visit-exchange` on the graphs where the agent protocols matter most
//! (double star and a random regular graph).

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_analysis::{Summary, Table};
use rumor_core::{
    run_to_completion, AgentConfig, ChurnVisitExchange, ProtocolKind, ProtocolOptions,
    SimulationSpec,
};
use rumor_graphs::generators::{double_star, logarithmic_degree, random_regular};
use rumor_graphs::{Graph, VertexId};

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::runner::{run_trials_guarded, FaultPlan, TrialPolicy};

/// Identifier of this experiment.
pub const ID: &str = "robustness-churn";

fn mean_time(
    graph: &Graph,
    source: VertexId,
    agents: &AgentConfig,
    churn: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    let times: Vec<u64> = (0..trials as u64)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t));
            let mut p = ChurnVisitExchange::new(
                graph,
                source,
                agents,
                churn,
                ProtocolOptions::none(),
                &mut rng,
            )
            .expect("valid churn");
            run_to_completion(&mut p, 100_000_000, &mut rng).rounds
        })
        .collect();
    Summary::of_u64(&times).mean
}

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let trials = config.trials(4, 12, 25);
    let churn_levels = [0.0, 0.01, 0.05, 0.1, 0.25];

    let mut report = ExperimentReport::new(
        ID,
        "Fault tolerance: visit-exchange with a dynamic (churning) agent population",
        "Section 9 (open problems): the paper conjectures that losing agents can be tolerated if a \
         dynamic agent set is used, with agents dying and fresh agents being born at a \
         proportional rate. This experiment replaces a fraction of the agents with fresh \
         uninformed agents every round and measures the slowdown.",
    );

    // Double star: the graph where the agent protocols carry the day.
    let leaves = config.pick(64, 512, 2048);
    let dstar = double_star(leaves).expect("double star generator");
    let lazy = AgentConfig::default().lazy();
    let mut dstar_table = Table::new(
        &format!(
            "Double star (n = {}): broadcast time vs per-round churn",
            dstar.num_vertices()
        ),
        &["churn", "mean rounds", "slowdown vs churn-free"],
    );
    let dstar_baseline = mean_time(&dstar, 2, &lazy, 0.0, trials, config.seed);
    let mut dstar_worst_slowdown: f64 = 1.0;
    for &churn in &churn_levels {
        let t = mean_time(&dstar, 2, &lazy, churn, trials, config.seed);
        let slowdown = t / dstar_baseline.max(1e-9);
        dstar_worst_slowdown = dstar_worst_slowdown.max(slowdown);
        dstar_table.push_row(&[
            format!("{churn:.2}"),
            format!("{t:.1}"),
            format!("{slowdown:.2}×"),
        ]);
    }
    report.push_table(dstar_table);

    // Random regular graph: the Theorem 1 regime.
    let n = config.pick(128, 1024, 4096);
    let d = logarithmic_degree(n, 2.0);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC4);
    let regular = random_regular(n, d, &mut rng).expect("random regular generator");
    let default_agents = AgentConfig::default();
    let mut regular_table = Table::new(
        &format!("Random {d}-regular graph (n = {n}): broadcast time vs per-round churn"),
        &["churn", "mean rounds", "slowdown vs churn-free"],
    );
    let regular_baseline = mean_time(&regular, 0, &default_agents, 0.0, trials, config.seed);
    let mut regular_worst_slowdown: f64 = 1.0;
    for &churn in &churn_levels {
        let t = mean_time(&regular, 0, &default_agents, churn, trials, config.seed);
        let slowdown = t / regular_baseline.max(1e-9);
        regular_worst_slowdown = regular_worst_slowdown.max(slowdown);
        regular_table.push_row(&[
            format!("{churn:.2}"),
            format!("{t:.1}"),
            format!("{slowdown:.2}×"),
        ]);
    }
    report.push_table(regular_table);

    // Crash recovery: the other half of fault tolerance — not losing agents
    // mid-protocol but losing the *sweep process* mid-experiment. A guarded
    // sweep with a manifest is "crashed" (injected stop) halfway through and
    // re-run; the manifest hands the completed trials back instead of
    // redoing them.
    let recovery_trials = config.trials(6, 16, 32);
    let stop_after = recovery_trials / 2;
    let spec = SimulationSpec::new(ProtocolKind::VisitExchange)
        .with_agents(lazy.clone())
        .with_max_rounds(100_000_000)
        .with_seed(config.seed)
        .adapted_to(&dstar);
    let manifest_dir = std::env::temp_dir().join(format!(
        "rumor-churn-recovery-{}-{}",
        std::process::id(),
        config.seed
    ));
    std::fs::remove_dir_all(&manifest_dir).ok();
    std::fs::create_dir_all(&manifest_dir).expect("manifest directory");
    let manifest = manifest_dir.join("sweep.rman");
    // One worker makes the crash point deterministic.
    let one_worker = (*config).with_threads(1);
    let crash_policy = TrialPolicy {
        fault: FaultPlan {
            stop_after_trials: Some(stop_after),
            ..FaultPlan::none()
        },
        ..TrialPolicy::new()
    };
    let crashed = run_trials_guarded(
        &dstar,
        2,
        &spec,
        recovery_trials,
        &one_worker,
        &crash_policy,
        Some(&manifest),
    );
    let resumed = run_trials_guarded(
        &dstar,
        2,
        &spec,
        recovery_trials,
        &one_worker,
        &TrialPolicy::new(),
        Some(&manifest),
    );
    std::fs::remove_dir_all(&manifest_dir).ok();
    let mut recovery_table = Table::new(
        &format!(
            "Crash recovery: {recovery_trials}-trial visit-exchange sweep on the double star, \
             killed after {stop_after} trials"
        ),
        &[
            "sweep",
            "outcome taxonomy",
            "reused from manifest",
            "recovered work",
        ],
    );
    recovery_table.push_row(&[
        "crashed".to_string(),
        crashed.taxonomy().to_string(),
        crashed.reused_trials.to_string(),
        format!("{:.0}%", 100.0 * crashed.recovered_fraction()),
    ]);
    recovery_table.push_row(&[
        "resumed".to_string(),
        resumed.taxonomy().to_string(),
        resumed.reused_trials.to_string(),
        format!("{:.0}%", 100.0 * resumed.recovered_fraction()),
    ]);
    report.push_table(recovery_table);

    report.push_note(format!(
        "Killing the sweep after {} of {} trials loses no completed work: the resumed sweep \
         recovers {:.0}% of its trials from the manifest and only runs the remainder.",
        stop_after,
        recovery_trials,
        100.0 * resumed.recovered_fraction()
    ));

    report.push_note(format!(
        "Replacing up to 25% of the agents per round slows visit-exchange down by at most \
         {:.1}× on the double star and {:.1}× on the random regular graph — the broadcast always \
         completes, supporting the paper's conjecture that a dynamic agent population restores \
         fault tolerance.",
        dstar_worst_slowdown, regular_worst_slowdown
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert_eq!(report.tables.len(), 3);
        assert_eq!(report.tables[0].num_rows(), 5);
        // The crash-recovery table: crashed and resumed sweeps.
        assert_eq!(report.tables[2].num_rows(), 2);
        assert!(report.notes.iter().any(|n| n.contains("recovers")));
    }
}
