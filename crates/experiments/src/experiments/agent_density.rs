//! DENSITY — how many agents are needed? (Section 9: "It would be interesting
//! to study the performance of the protocols when a sub-linear number of
//! agents is available.")
//!
//! The paper assumes a linear number of agents, `|A| = αn`. This experiment
//! sweeps the agent count from `n^{1/2}` up to `2n` on a random regular graph
//! and on the double star, and reports how the broadcast times of
//! `visit-exchange` and `meet-exchange` degrade as the agent population
//! shrinks — locating where the agent protocols stop being competitive with
//! `push-pull`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_analysis::{Summary, Table};
use rumor_core::{simulate, AgentConfig, AgentCount, ProtocolKind, SimulationSpec};
use rumor_graphs::generators::{double_star, logarithmic_degree, random_regular};
use rumor_graphs::{Graph, VertexId};

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;

/// Identifier of this experiment.
pub const ID: &str = "agent-density";

fn mean_time(
    graph: &Graph,
    source: VertexId,
    kind: ProtocolKind,
    agents: AgentConfig,
    trials: usize,
    seed: u64,
) -> f64 {
    let times: Vec<u64> = (0..trials as u64)
        .map(|t| {
            simulate(
                graph,
                source,
                &SimulationSpec::new(kind)
                    .with_seed(seed.wrapping_add(t))
                    .with_agents(agents.clone())
                    .with_max_rounds(10_000_000),
            )
            .rounds
        })
        .collect();
    Summary::of_u64(&times).mean
}

/// Agent-count levels as (label, count) pairs for an `n`-vertex graph.
fn levels(n: usize) -> Vec<(String, usize)> {
    let nf = n as f64;
    vec![
        ("n^(1/2)".to_string(), nf.sqrt().round() as usize),
        ("n^(2/3)".to_string(), nf.powf(2.0 / 3.0).round() as usize),
        ("n/4".to_string(), n / 4),
        ("n".to_string(), n),
        ("2n".to_string(), 2 * n),
    ]
}

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let trials = config.trials(4, 12, 25);

    let mut report = ExperimentReport::new(
        ID,
        "Sub-linear and super-linear agent populations",
        "Section 9 (open problems): the paper assumes |A| = Θ(n) agents and asks what happens with \
         a sub-linear number. This experiment sweeps |A| from √n to 2n and measures the agent \
         protocols against the push-pull baseline (which needs no agents at all).",
    );

    // Random regular graph (Theorem 1 regime).
    let n = config.pick(128, 1024, 4096);
    let d = logarithmic_degree(n, 2.0);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xDE);
    let regular = random_regular(n, d, &mut rng).expect("random regular generator");
    let ppull_regular = mean_time(
        &regular,
        0,
        ProtocolKind::PushPull,
        AgentConfig::default(),
        trials,
        config.seed,
    );
    let mut regular_table = Table::new(
        &format!(
            "Random {d}-regular graph (n = {n}); push-pull baseline = {ppull_regular:.1} rounds"
        ),
        &["|A|", "agents", "visit-exchange", "meet-exchange"],
    );
    for (label, count) in levels(n) {
        let agents = AgentConfig {
            count: AgentCount::Exact(count),
            ..AgentConfig::default()
        };
        let visitx = mean_time(
            &regular,
            0,
            ProtocolKind::VisitExchange,
            agents.clone(),
            trials,
            config.seed,
        );
        let meetx = mean_time(
            &regular,
            0,
            ProtocolKind::MeetExchange,
            agents,
            trials,
            config.seed,
        );
        regular_table.push_row(&[
            label,
            count.to_string(),
            format!("{visitx:.1}"),
            format!("{meetx:.1}"),
        ]);
    }
    report.push_table(regular_table);

    // Double star (the separation example that motivates the agent protocols).
    let leaves = config.pick(64, 512, 2048);
    let dstar = double_star(leaves).expect("double star generator");
    let dn = dstar.num_vertices();
    let ppull_dstar = mean_time(
        &dstar,
        2,
        ProtocolKind::PushPull,
        AgentConfig::default(),
        trials,
        config.seed,
    );
    let mut dstar_table = Table::new(
        &format!("Double star (n = {dn}); push-pull baseline = {ppull_dstar:.1} rounds"),
        &["|A|", "agents", "visit-exchange", "meet-exchange"],
    );
    let mut crossover: Option<String> = None;
    for (label, count) in levels(dn) {
        let agents = AgentConfig {
            count: AgentCount::Exact(count),
            ..AgentConfig::default()
        }
        .lazy();
        let visitx = mean_time(
            &dstar,
            2,
            ProtocolKind::VisitExchange,
            agents.clone(),
            trials,
            config.seed,
        );
        let meetx = mean_time(
            &dstar,
            2,
            ProtocolKind::MeetExchange,
            agents,
            trials,
            config.seed,
        );
        if visitx < ppull_dstar && crossover.is_none() {
            crossover = Some(label.clone());
        }
        dstar_table.push_row(&[
            label,
            count.to_string(),
            format!("{visitx:.1}"),
            format!("{meetx:.1}"),
        ]);
    }
    report.push_table(dstar_table);

    report.push_note(format!(
        "On the double star, visit-exchange first beats the push-pull baseline at |A| = {} — \
         fewer agents slow the agent protocols roughly in proportion to n/|A| (each vertex is \
         visited at a rate |A|/n per round).",
        crossover.unwrap_or_else(|| "(not reached in this sweep)".to_string())
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.tables[0].num_rows(), 5);
        assert!(!report.notes.is_empty());
    }

    #[test]
    fn fewer_agents_means_slower_visit_exchange() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = random_regular(256, 16, &mut rng).unwrap();
        let sparse = AgentConfig {
            count: AgentCount::Exact(16),
            ..AgentConfig::default()
        };
        let dense = AgentConfig {
            count: AgentCount::Exact(512),
            ..AgentConfig::default()
        };
        let slow = mean_time(&g, 0, ProtocolKind::VisitExchange, sparse, 4, 1);
        let fast = mean_time(&g, 0, ProtocolKind::VisitExchange, dense, 4, 1);
        assert!(
            slow > fast,
            "sparse agents ({slow}) should be slower than dense ({fast})"
        );
    }
}
