//! SOCIAL-NETWORKS — rumor spreading on generated power-law topologies:
//! push vs visit-exchange vs meet-exchange across Chung–Lu exponents.
//!
//! The paper's lower-bound families are adversarial constructions; the
//! related literature (Zehmakan, Out & Hesamipour, *Why Rumors Spread Fast
//! in Social Networks, and How to Stop It*; Vega-Oliveros & da F. Costa on
//! heterogeneous transmission) asks the same push-vs-agents question on
//! *power-law social networks*. This experiment runs the comparison on the
//! seed-keyed [`GeneratedGraph`] Chung–Lu
//! backend: for each exponent β the three protocols spread a rumor from the
//! top hub and from the periphery, and we record the rounds until 90% of
//! the network is informed (vertices for the vertex protocols, agents for
//! meet-exchange — its carriers are the agents). The 90% target is the
//! standard choice on random topologies, where a handful of isolated
//! vertices make full broadcast unreachable by definition, not by protocol
//! quality.
//!
//! Expected shape (and what the tables show): flatter exponents (β → 2)
//! concentrate degree mass in hubs, which *accelerates* push (hubs are
//! drawn as targets degree-proportionally via pull-free contagion through
//! their huge neighborhoods is fast) and accelerate the agent protocols
//! even more at the start (stationary placement seeds hubs with Θ(w) agents
//! each), while steeper exponents (β ≥ 3) look increasingly like sparse
//! G(n, p).

use rumor_analysis::{format_value, Summary, Table};
use rumor_core::{BroadcastOutcome, ProtocolKind, ProtocolOptions, SimulationSpec};
use rumor_graphs::{GeneratedGraph, Topology};

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::runner::run_trials;

/// Identifier of this experiment.
pub const ID: &str = "social-networks";

/// Rounds until `target` entities are informed, by history scan
/// (meet-exchange's population is its agents; the vertex protocols' is the
/// vertices); the round cap for runs that never get there, mirroring the
/// walk estimators' truncated-mean convention.
fn rounds_to_target(outcome: &BroadcastOutcome, target: usize, agents_based: bool) -> u64 {
    for rec in &outcome.history {
        let informed = if agents_based {
            rec.informed_agents
        } else {
            rec.informed_vertices
        };
        if informed >= target {
            return rec.round;
        }
    }
    outcome.rounds
}

/// The largest-index non-isolated vertex: the deterministic "periphery"
/// source (the tail of the weight profile, but still able to speak).
fn periphery_source<G: Topology>(graph: &G) -> usize {
    (0..graph.num_vertices())
        .rev()
        .find(|&u| graph.degree(u) > 0)
        .expect("graph has at least one edge")
}

struct Cell {
    label: &'static str,
    kind: ProtocolKind,
}

const PROTOCOLS: [Cell; 3] = [
    Cell {
        label: "push",
        kind: ProtocolKind::Push,
    },
    Cell {
        label: "visit-exchange",
        kind: ProtocolKind::VisitExchange,
    },
    Cell {
        label: "meet-exchange",
        kind: ProtocolKind::MeetExchange,
    },
];

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let exponents: Vec<f64> = config.pick(vec![2.5], vec![2.2, 2.5, 3.0], vec![2.2, 2.5, 2.8, 3.0]);
    let n = config.pick(400usize, 20_000, 100_000);
    let mean_degree = 8.0;
    let trials = config.trials(3, 10, 20);
    let max_rounds: u64 = config.pick(2_000, 5_000, 10_000);
    let frac = 0.9;

    let mut report = ExperimentReport::new(
        ID,
        "Power-law social networks: push vs the agent protocols",
        "Chung–Lu generated topologies across power-law exponents (the regime of the related \
         social-network rumor literature): rounds until 90% of the network is informed, from the \
         top hub and from the periphery. The topology is the seed-keyed GeneratedGraph backend — \
         adjacency derived on demand from a counter-based hash, O(n) memory — so the same \
         experiment scales to sizes whose CSR builds would not fit.",
    );

    // One graph per exponent, shared by the hub and periphery tables (the
    // construction seed does not depend on the source choice, and sharing
    // reuses the lazily cached bipartiteness `adapted_to` consults).
    let graphs: Vec<GeneratedGraph> = exponents
        .iter()
        .map(|&beta| {
            GeneratedGraph::chung_lu(n, beta, mean_degree, config.seed ^ 0x50C1A1)
                .expect("chung_lu generator")
        })
        .collect();

    for &source_is_hub in &[true, false] {
        let mut headers = vec!["beta", "n", "m"];
        headers.extend(PROTOCOLS.iter().map(|p| p.label));
        let mut table = Table::new(
            if source_is_hub {
                "Rounds to 90% informed, source = top hub (vertex 0)"
            } else {
                "Rounds to 90% informed, source = periphery (largest-index non-isolated vertex)"
            },
            &headers,
        );
        for (row, (&beta, graph)) in exponents.iter().zip(&graphs).enumerate() {
            let source = if source_is_hub {
                0
            } else {
                periphery_source(graph)
            };
            let mut cells: Vec<String> = vec![
                format!("{beta:.1}"),
                graph.num_vertices().to_string(),
                graph.num_edges().to_string(),
            ];
            for proto in &PROTOCOLS {
                let agents_based = proto.kind == ProtocolKind::MeetExchange;
                let spec = SimulationSpec::new(proto.kind)
                    .with_seed(
                        config
                            .seed
                            .wrapping_add((row as u64) << 24)
                            .wrapping_add(u64::from(source_is_hub) << 16),
                    )
                    .with_max_rounds(max_rounds)
                    .with_options(ProtocolOptions::with_history())
                    .adapted_to(graph);
                // Meet-exchange's population is the configured agent count
                // (NOT the final informed count — a truncated run must
                // report the cap, not an early round of its partial reach).
                let target_total = if agents_based {
                    spec.agents.count.resolve(graph.num_vertices())
                } else {
                    graph.num_vertices()
                };
                let target = (target_total as f64 * frac).ceil() as usize;
                let outcomes = run_trials(graph, source, &spec, trials, config);
                let times: Vec<u64> = outcomes
                    .iter()
                    .map(|o| rounds_to_target(o, target, agents_based))
                    .collect();
                let summary = Summary::of_u64(&times);
                cells.push(format!(
                    "{} ±{}",
                    format_value(summary.mean),
                    format_value(summary.ci95_half_width())
                ));
            }
            let cell_refs: Vec<&str> = cells.iter().map(String::as_str).collect();
            table.push_row(&cell_refs);
        }
        report.push_table(table);
    }

    report.push_note(format!(
        "Topology backend: GeneratedGraph (Chung–Lu, mean degree {mean_degree}, weight cap \
         √(d̄·n)), {n} vertices, {trials} trials per cell, {max_rounds}-round cap with the \
         truncated-mean convention. The 90% target sidesteps the isolated vertices every sparse \
         random graph contains."
    ));
    report.push_note(
        "Meet-exchange counts informed agents (its carriers); push and visit-exchange count \
         informed vertices. Flatter exponents concentrate degree mass in hubs, which speeds all \
         three protocols; the agent protocols additionally benefit from stationary placement \
         seeding hubs with Θ(w) agents."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert_eq!(report.tables.len(), 2, "hub + periphery tables");
        assert_eq!(report.notes.len(), 2);
        // One row per exponent, one column per protocol + beta/n/m.
        assert_eq!(report.tables[0].num_rows(), 1);
        assert_eq!(report.tables[0].num_columns(), 6);
    }

    #[test]
    fn rounds_to_target_reads_history_and_falls_back_to_cap() {
        let graph = GeneratedGraph::chung_lu(200, 2.5, 7.0, 3).unwrap();
        let spec = SimulationSpec::new(ProtocolKind::Push)
            .with_seed(1)
            .with_max_rounds(1_000)
            .with_options(ProtocolOptions::with_history());
        let outcome = rumor_core::simulate_on(&graph, 0, &spec);
        let t90 = rounds_to_target(
            &outcome,
            (graph.num_vertices() as f64 * 0.9).ceil() as usize,
            false,
        );
        assert!(t90 >= 1);
        assert!(t90 <= outcome.rounds);
        // An unreachable target falls back to the truncated round count.
        let impossible = rounds_to_target(&outcome, graph.num_vertices() + 1, false);
        assert_eq!(impossible, outcome.rounds);
    }

    #[test]
    fn periphery_source_is_the_last_non_isolated_vertex() {
        let graph = GeneratedGraph::chung_lu(300, 2.5, 6.0, 1).unwrap();
        let src = periphery_source(&graph);
        assert!(graph.degree(src) > 0);
        for u in src + 1..graph.num_vertices() {
            assert_eq!(graph.degree(u), 0);
        }
    }
}
