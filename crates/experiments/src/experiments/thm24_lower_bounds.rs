//! THM24+25 — `Ω(log n)` lower bounds for the agent protocols on regular
//! graphs.
//!
//! Theorems 24 and 25 show that on any `d`-regular graph with `d = Ω(log n)`
//! and `|A| = O(n)` agents, both `visit-exchange` and `meet-exchange` need
//! `Ω(log n)` rounds w.h.p. (some vertices/agents simply are not reached
//! earlier). The experiment measures the *minimum* broadcast time over many
//! trials and normalizes it by `log2 n`: the normalized minimum should stay
//! bounded away from zero as `n` grows.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_analysis::Table;
use rumor_core::{ProtocolKind, SimulationSpec};
use rumor_graphs::generators::{complete, logarithmic_degree, random_regular};

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::runner::broadcast_times;

/// Identifier of this experiment.
pub const ID: &str = "thm24-25-lower-bounds";

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let sizes: Vec<usize> = config.pick(
        vec![128, 256],
        vec![256, 512, 1024, 2048],
        vec![1024, 2048, 4096, 8192, 16384],
    );
    let trials = config.trials(5, 20, 40);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x24);

    let mut report = ExperimentReport::new(
        ID,
        "Logarithmic lower bounds for the agent protocols on regular graphs",
        "Theorems 24 & 25: on any d-regular graph with d = Ω(log n) and |A| = O(n) agents, \
         T_visitx and T_meetx are Ω(log n) w.h.p.",
    );

    let mut table = Table::new(
        "Minimum observed broadcast time over all trials, normalized by log2 n",
        &["graph", "min T_visitx / log2 n", "min T_meetx / log2 n"],
    );
    let mut smallest_ratio = f64::INFINITY;
    for &n in &sizes {
        let d = logarithmic_degree(n, 2.0);
        let g = random_regular(n, d, &mut rng).expect("random regular generator");
        let log2n = (n as f64).log2();
        let visitx = broadcast_times(
            &g,
            0,
            &SimulationSpec::new(ProtocolKind::VisitExchange).with_seed(config.seed),
            trials,
            config,
        );
        let meetx = broadcast_times(
            &g,
            0,
            &SimulationSpec::new(ProtocolKind::MeetExchange).with_seed(config.seed),
            trials,
            config,
        );
        let min_v = *visitx.iter().min().expect("non-empty") as f64 / log2n;
        let min_m = *meetx.iter().min().expect("non-empty") as f64 / log2n;
        smallest_ratio = smallest_ratio.min(min_v).min(min_m);
        table.push_row(&[
            format!("random {d}-regular, n={n}"),
            format!("{min_v:.2}"),
            format!("{min_m:.2}"),
        ]);
    }

    // The complete graph is the extreme high-degree regular graph; the lower
    // bound still applies (d = n - 1 = Ω(log n)).
    let kn_sizes: Vec<usize> = config.pick(vec![128], vec![256, 1024], vec![1024, 4096]);
    for &n in &kn_sizes {
        let g = complete(n).expect("complete graph");
        let log2n = (n as f64).log2();
        let visitx = broadcast_times(
            &g,
            0,
            &SimulationSpec::new(ProtocolKind::VisitExchange).with_seed(config.seed),
            trials,
            config,
        );
        let meetx = broadcast_times(
            &g,
            0,
            &SimulationSpec::new(ProtocolKind::MeetExchange).with_seed(config.seed),
            trials,
            config,
        );
        let min_v = *visitx.iter().min().expect("non-empty") as f64 / log2n;
        let min_m = *meetx.iter().min().expect("non-empty") as f64 / log2n;
        smallest_ratio = smallest_ratio.min(min_v).min(min_m);
        table.push_row(&[
            format!("complete K_{n}"),
            format!("{min_v:.2}"),
            format!("{min_m:.2}"),
        ]);
    }
    report.push_table(table);
    report.push_note(format!(
        "Across all instances and trials the smallest observed broadcast time is \
         {smallest_ratio:.2} · log2 n — bounded away from zero, as Theorems 24 and 25 require."
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert_eq!(report.tables.len(), 1);
        assert!(!report.notes.is_empty());
    }

    #[test]
    fn broadcast_times_are_at_least_a_fraction_of_log_n() {
        let config = ExperimentConfig::smoke();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 512;
        let g = random_regular(n, 18, &mut rng).unwrap();
        let times = broadcast_times(
            &g,
            0,
            &SimulationSpec::new(ProtocolKind::VisitExchange).with_seed(0),
            8,
            &config,
        );
        let min = *times.iter().min().unwrap() as f64;
        assert!(
            min >= 0.3 * (n as f64).log2(),
            "visit-exchange finished in {min} rounds, below the Ω(log n) bound"
        );
    }
}
