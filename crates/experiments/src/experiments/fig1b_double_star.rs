//! FIG1B — the double star `S²_n` (Fig. 1(b), Lemma 3).
//!
//! Claims reproduced: `E[T_ppull] = Ω(n)` while `T_visitx` and `T_meetx` are
//! `O(log n)` w.h.p. This is the paper's showcase for the *local bandwidth
//! fairness* of the agent protocols: the center–center edge is crossed by some
//! agent with constant probability per round, but is sampled by `push-pull`
//! only with probability `O(1/n)`.

use rumor_core::ProtocolKind;
use rumor_graphs::generators::double_star;

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::sweep::{ProtocolSetup, ScalingSweep, SweepPoint};

/// Identifier of this experiment.
pub const ID: &str = "fig1b-double-star";

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let leaves_per_star: Vec<usize> = config.pick(
        vec![32, 64, 128],
        vec![128, 256, 512, 1024, 2048],
        vec![512, 1024, 2048, 4096, 8192, 16384],
    );
    let trials = config.trials(5, 20, 40);

    let points: Vec<SweepPoint> = leaves_per_star
        .iter()
        .map(|&l| {
            let g = double_star(l).expect("double star generator");
            // Source is a leaf of the first star — the worst case for push-pull.
            SweepPoint::new(g, 2)
        })
        .collect();

    let sweep = ScalingSweep {
        points,
        protocols: vec![
            ProtocolSetup::new(ProtocolKind::Push),
            ProtocolSetup::new(ProtocolKind::PushPull),
            ProtocolSetup::lazy(ProtocolKind::VisitExchange),
            ProtocolSetup::lazy(ProtocolKind::MeetExchange),
            ProtocolSetup::new(ProtocolKind::PushPullVisitExchange).with_label("combined"),
        ],
        trials,
        max_rounds: 100_000_000,
    };
    let result = sweep.run(config);

    let mut report = ExperimentReport::new(
        ID,
        "Double star S²_n",
        "Lemma 3: E[T_ppull] = Ω(n) while T_visitx, T_meetx = O(log n) w.h.p.; the combined \
         push-pull + visit-exchange protocol inherits the logarithmic time.",
    );
    report.push_table(result.times_table("Mean broadcast time on the double star (source = leaf)"));
    report.push_table(result.fits_table("Fitted growth laws"));
    report.push_table(result.ratio_table(
        "push-pull / visit-exchange mean-time ratio",
        "push-pull",
        "visit-exchange",
    ));

    let ppull_fit = rumor_analysis::fit_power_law(&result.scaling_points("push-pull"));
    let visitx_fit = rumor_analysis::fit_power_law(&result.scaling_points("visit-exchange"));
    report.push_note(format!(
        "push-pull empirical exponent {:.2} (linear ⇒ ≈ 1); visit-exchange exponent {:.2} (logarithmic ⇒ ≈ 0).",
        ppull_fit.exponent, visitx_fit.exponent
    ));
    report.push_note(format!(
        "At the largest size push-pull is {:.0}× slower than visit-exchange; the combined protocol tracks visit-exchange ({:.1}× its time).",
        result.final_ratio("push-pull", "visit-exchange"),
        result.final_ratio("combined", "visit-exchange"),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_shows_push_pull_losing() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert!(report.tables.len() >= 3);
    }

    #[test]
    fn push_pull_is_slower_than_agent_protocols() {
        let config = ExperimentConfig::smoke();
        // 256 leaves per star: large enough for the Ω(n) vs O(log n) gap of
        // Lemma 3 to dominate the constants. Simple (non-lazy) walks for
        // visit-exchange — laziness is only needed by meet-exchange here.
        let g = double_star(256).unwrap();
        let sweep = ScalingSweep {
            points: vec![SweepPoint::new(g, 2)],
            protocols: vec![
                ProtocolSetup::new(ProtocolKind::PushPull),
                ProtocolSetup::new(ProtocolKind::VisitExchange),
                ProtocolSetup::new(ProtocolKind::PushPullVisitExchange).with_label("combined"),
            ],
            trials: 6,
            max_rounds: 10_000_000,
        };
        let result = sweep.run(&config);
        assert!(
            result.final_ratio("push-pull", "visit-exchange") > 2.0,
            "push-pull should be well behind visit-exchange on the double star"
        );
        // The combination is never much slower than visit-exchange alone.
        assert!(result.final_ratio("combined", "visit-exchange") < 2.0);
    }
}
