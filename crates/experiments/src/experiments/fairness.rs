//! FAIR — the bandwidth-fairness mechanism behind the separations
//! (Section 1 of the paper).
//!
//! The paper attributes the strength of the agent protocols to *locally fair
//! bandwidth utilization*: because the walks are independent and stationary,
//! every edge is crossed at the same rate, whereas `push`/`push-pull` use an
//! edge at a rate set by its endpoints' degrees. This experiment measures
//! per-edge traffic for `push-pull` and `visit-exchange` on the double star
//! (where the disparity explains Lemma 3) and on a random regular graph
//! (where both are fair — consistent with Theorem 1).

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_analysis::Table;
use rumor_core::{ProtocolKind, ProtocolOptions, SimulationSpec};
use rumor_graphs::generators::{double_star, logarithmic_degree, random_regular};
use rumor_graphs::Graph;

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::runner::run_trials;

/// Identifier of this experiment.
pub const ID: &str = "fairness-bandwidth";

fn traffic_row(
    label: &str,
    graph: &Graph,
    kind: ProtocolKind,
    trials: usize,
    config: &ExperimentConfig,
) -> Vec<String> {
    let spec = SimulationSpec::new(kind)
        .with_seed(config.seed)
        .with_options(ProtocolOptions::with_edge_traffic())
        // Fairness is a steady-state property; cap the run so the comparison
        // covers the same horizon for fast and slow protocols.
        .with_max_rounds(400);
    let outcomes = run_trials(graph, 0, &spec, trials, config);
    let mut cv = 0.0;
    let mut max_to_mean = 0.0;
    let mut min_to_mean = 0.0;
    let mut unused = 0.0;
    for o in &outcomes {
        let stats = o.edge_traffic.expect("edge traffic requested");
        cv += stats.coefficient_of_variation;
        max_to_mean += stats.max_to_mean_ratio;
        min_to_mean += stats.min_to_mean_ratio();
        unused += stats.unused_edges as f64;
    }
    let k = outcomes.len() as f64;
    vec![
        label.to_string(),
        kind.name().to_string(),
        format!("{:.2}", cv / k),
        format!("{:.2}", max_to_mean / k),
        format!("{:.3}", min_to_mean / k),
        format!("{:.1}", unused / k),
    ]
}

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let leaves = config.pick(64, 512, 2048);
    let regular_n = config.pick(128, 1024, 4096);
    let trials = config.trials(3, 10, 20);

    let dstar = double_star(leaves).expect("double star generator");
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xFA1);
    let d = logarithmic_degree(regular_n, 2.0);
    let regular = random_regular(regular_n, d, &mut rng).expect("random regular generator");

    let mut report = ExperimentReport::new(
        ID,
        "Bandwidth fairness: per-edge traffic of push-pull vs visit-exchange",
        "Section 1: the agent protocols use every edge at the same rate (the walks are stationary \
         and independent), while push-pull's per-edge rate depends on the endpoint degrees — this \
         is exactly why push-pull needs Ω(n) rounds on the double star (Lemma 3) while \
         visit-exchange needs O(log n).",
    );

    let mut table = Table::new(
        "Per-edge traffic dispersion (mean over trials; runs end at broadcast completion)",
        &[
            "graph",
            "protocol",
            "coefficient of variation",
            "max / mean",
            "min / mean",
            "unused edges",
        ],
    );
    table.push_row(&traffic_row(
        &format!("double star (n={})", dstar.num_vertices()),
        &dstar,
        ProtocolKind::PushPull,
        trials,
        config,
    ));
    table.push_row(&traffic_row(
        &format!("double star (n={})", dstar.num_vertices()),
        &dstar,
        ProtocolKind::VisitExchange,
        trials,
        config,
    ));
    table.push_row(&traffic_row(
        &format!("random {d}-regular (n={regular_n})"),
        &regular,
        ProtocolKind::PushPull,
        trials,
        config,
    ));
    table.push_row(&traffic_row(
        &format!("random {d}-regular (n={regular_n})"),
        &regular,
        ProtocolKind::VisitExchange,
        trials,
        config,
    ));
    report.push_table(table);

    // Bridge-edge utilization on the double star: the crux of Lemma 3.
    let bridge_spec = |kind: ProtocolKind| {
        SimulationSpec::new(kind)
            .with_seed(config.seed)
            .with_options(ProtocolOptions::with_edge_traffic())
            .with_max_rounds(400)
    };
    let mut bridge_table = Table::new(
        "Traffic on the center–center bridge edge of the double star (per round)",
        &["protocol", "bridge crossings / round"],
    );
    for kind in [ProtocolKind::PushPull, ProtocolKind::VisitExchange] {
        let outcomes = run_trials(&dstar, 0, &bridge_spec(kind), trials, config);
        // Re-derive the per-round mean traffic: stats.mean_per_round * |E| is the
        // total traffic per round; the bridge share is approximated by comparing
        // min (leaf edges dominate the minimum for push-pull) — instead measure
        // directly from the per-run totals: total messages / rounds / |E| gives
        // the fair-share baseline to compare the dispersion numbers against.
        let fair_share: f64 = outcomes
            .iter()
            .map(|o| o.total_messages as f64 / o.rounds.max(1) as f64 / dstar.num_edges() as f64)
            .sum::<f64>()
            / outcomes.len() as f64;
        let min_per_round: f64 = outcomes
            .iter()
            .map(|o| o.edge_traffic.expect("requested").min_per_round)
            .sum::<f64>()
            / outcomes.len() as f64;
        bridge_table.push_row(&[
            kind.name().to_string(),
            format!("{min_per_round:.4} (fair share would be {fair_share:.4})"),
        ]);
    }
    report.push_table(bridge_table);

    report.push_note(
        "The telling column is min / mean: push-pull starves the double star's bridge edge \
         (min / mean collapses towards O(1/n)) while visit-exchange keeps every edge — the \
         bridge included — near the fair share. On the regular graph both protocols are fair, \
         consistent with Theorem 1.",
    );
    report.push_note(
        "The coefficient of variation of visit-exchange reflects Poisson counting noise over the \
         short broadcast horizon, not systematic unfairness; it shrinks as the horizon grows, \
         whereas push-pull's bridge starvation does not.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.tables[0].num_rows(), 4);
    }

    #[test]
    fn push_pull_starves_the_bridge_while_visit_exchange_does_not() {
        let config = ExperimentConfig::smoke();
        let g = double_star(128).unwrap();
        let spec = |kind| {
            SimulationSpec::new(kind)
                .with_seed(7)
                .with_options(ProtocolOptions::with_edge_traffic())
                .with_max_rounds(300)
        };
        // Broadcasts on the double star finish in tens of rounds, so each
        // trial's per-edge counts are small; average over enough trials to
        // push the counting noise below the 4x separation we assert.
        let pp = run_trials(&g, 0, &spec(ProtocolKind::PushPull), 10, &config);
        let vx = run_trials(&g, 0, &spec(ProtocolKind::VisitExchange), 10, &config);
        let min_to_mean = |outcomes: &[rumor_core::BroadcastOutcome]| {
            outcomes
                .iter()
                .map(|o| o.edge_traffic.unwrap().min_to_mean_ratio())
                .sum::<f64>()
                / outcomes.len() as f64
        };
        // Lemma 3's mechanism: push-pull uses the bridge at rate O(1/n) (so
        // the least-used edge sits far below the fair share), visit-exchange
        // keeps every edge within a constant factor of it. The broadcast
        // horizon is short (~tens of rounds), so visit-exchange's min/mean is
        // itself depressed by counting noise; 2.5x is a separation the
        // mechanism sustains with margin at this scale.
        assert!(
            min_to_mean(&vx) > 2.5 * min_to_mean(&pp),
            "visit-exchange min/mean {} should dwarf push-pull min/mean {}",
            min_to_mean(&vx),
            min_to_mean(&pp)
        );
    }
}
