//! THM23 — `visit-exchange` is at most an additive `O(log n)` slower than
//! `meet-exchange` on regular graphs of at least logarithmic degree.
//!
//! Theorem 23 states `P[T_visitx ≤ k + c·log n] ≥ P[T_meetx ≤ k] − n^{−λ}`,
//! i.e. once all agents are informed it only takes `O(log n)` additional
//! rounds for the agents to cover every vertex. The experiment measures the
//! distribution of `T_visitx − T_meetx` on regular families and reports the
//! excess normalized by `log2 n`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_analysis::{Ecdf, Summary, Table};
use rumor_core::{AgentConfig, ProtocolKind, SimulationSpec};
use rumor_graphs::algorithms::is_bipartite;
use rumor_graphs::generators::{hypercube, logarithmic_degree, random_regular};
use rumor_graphs::Graph;

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::runner::broadcast_times;

/// Identifier of this experiment.
pub const ID: &str = "thm23-meetx-vs-visitx";

struct Family {
    label: String,
    graph: Graph,
}

fn families(config: &ExperimentConfig) -> Vec<Family> {
    let sizes: Vec<usize> = config.pick(
        vec![128, 256],
        vec![256, 512, 1024, 2048],
        vec![1024, 2048, 4096, 8192],
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x23);
    let mut out = Vec::new();
    for &n in &sizes {
        let d = logarithmic_degree(n, 2.0);
        out.push(Family {
            label: format!("random {d}-regular, n={n}"),
            graph: random_regular(n, d, &mut rng).expect("random regular generator"),
        });
    }
    let dims: Vec<u32> = config.pick(vec![7, 8], vec![8, 9, 10], vec![10, 11, 12, 13]);
    for &dim in &dims {
        out.push(Family {
            label: format!("hypercube, n=2^{dim}"),
            graph: hypercube(dim).expect("hypercube generator"),
        });
    }
    out
}

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let trials = config.trials(4, 15, 30);
    let mut report = ExperimentReport::new(
        ID,
        "Regular graphs: visit-exchange vs meet-exchange",
        "Theorem 23: on d-regular graphs with d = Ω(log n), \
         P[T_visitx ≤ k + c·log n] ≥ P[T_meetx ≤ k] − n^{-λ}; i.e. visit-exchange is at most an \
         additive O(log n) behind meet-exchange (and is typically faster).",
    );

    let mut table = Table::new(
        "Broadcast times and normalized excess (T_visitx − T_meetx) / log2 n",
        &[
            "graph",
            "mean T_visitx",
            "mean T_meetx",
            "mean excess / log2 n",
            "max excess / log2 n",
        ],
    );
    // Theorem 23 is a statement about distributions, not means:
    // P[T_visitx ≤ k + c·log n] ≥ P[T_meetx ≤ k] − n^{−λ}. The second table
    // reports the smallest empirical shift that makes the visit-exchange ECDF
    // dominate the meet-exchange ECDF (allowing one trial's worth of slack
    // for the n^{−λ} term), normalized by log2 n — an estimate of c.
    let mut shift_table = Table::new(
        "Distributional form: smallest shift s with P[T_visitx ≤ k + s] ≥ P[T_meetx ≤ k] (slack = 1 trial)",
        &["graph", "shift s (rounds)", "s / log2 n"],
    );
    let mut max_norm_shift = f64::MIN;
    let mut max_norm_excess = f64::MIN;
    for family in families(config) {
        let n = family.graph.num_vertices();
        let log2n = (n as f64).log2();
        // Hypercubes are bipartite, so simple-walk meet-exchange could never
        // complete there (parity trap). Follow the paper's Section 3 remedy
        // and use lazy walks — for *both* agent protocols on such instances,
        // so that the visit-exchange vs meet-exchange comparison stays
        // apples-to-apples.
        let agents = if is_bipartite(&family.graph) {
            AgentConfig::default().lazy()
        } else {
            AgentConfig::default()
        };
        let visitx = broadcast_times(
            &family.graph,
            0,
            &SimulationSpec::new(ProtocolKind::VisitExchange)
                .with_seed(config.seed)
                .with_agents(agents.clone()),
            trials,
            config,
        );
        let meetx = broadcast_times(
            &family.graph,
            0,
            &SimulationSpec::new(ProtocolKind::MeetExchange)
                .with_seed(config.seed)
                .with_agents(agents),
            trials,
            config,
        );
        let visitx_summary = Summary::of_u64(&visitx);
        let meetx_summary = Summary::of_u64(&meetx);
        // Pairwise excess per trial (same seed index ⇒ same agent trajectories
        // are *not* shared across protocols, so this is a distributional
        // comparison, matching the probabilistic statement).
        let excesses: Vec<f64> = visitx
            .iter()
            .zip(&meetx)
            .map(|(&v, &m)| (v as f64 - m as f64) / log2n)
            .collect();
        let excess_summary = Summary::of(&excesses);
        max_norm_excess = max_norm_excess.max(excess_summary.max);
        table.push_row(&[
            family.label.as_str(),
            &format!("{:.1}", visitx_summary.mean),
            &format!("{:.1}", meetx_summary.mean),
            &format!("{:.2}", excess_summary.mean),
            &format!("{:.2}", excess_summary.max),
        ]);

        let visitx_ecdf = Ecdf::new(&visitx);
        let meetx_ecdf = Ecdf::new(&meetx);
        let slack = 1.0 / trials as f64;
        let shift = visitx_ecdf.smallest_dominating_shift(&meetx_ecdf, slack);
        let norm_shift = shift as f64 / log2n;
        max_norm_shift = max_norm_shift.max(norm_shift);
        shift_table.push_row(&[
            family.label.as_str(),
            &shift.to_string(),
            &format!("{norm_shift:.2}"),
        ]);
    }
    report.push_table(table);
    report.push_table(shift_table);
    report.push_note(format!(
        "The largest observed excess of T_visitx over T_meetx is {max_norm_excess:.2} · log2 n, \
         consistent with the additive O(log n) bound of Theorem 23 (a bounded constant c)."
    ));
    report.push_note(format!(
        "In the distributional form of the theorem, a shift of at most {max_norm_shift:.2} · log2 n \
         already makes the visit-exchange ECDF dominate the meet-exchange ECDF on every family — \
         an empirical estimate of the constant c."
    ));
    report.push_note(
        "On most regular instances visit-exchange is actually faster than meet-exchange \
         (negative excess): vertices relay the rumor to agents for free.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert_eq!(report.tables.len(), 2);
        assert!(report.tables[0].num_rows() >= 3);
        assert_eq!(report.tables[0].num_rows(), report.tables[1].num_rows());
        assert_eq!(report.notes.len(), 3);
    }

    #[test]
    fn visitx_ecdf_dominates_meetx_ecdf_within_a_log_shift() {
        // The distributional statement of Theorem 23 on a random regular graph.
        let config = ExperimentConfig::smoke();
        let mut rng = StdRng::seed_from_u64(23);
        let n = 512;
        let g = random_regular(n, 18, &mut rng).unwrap();
        let trials = 8;
        let visitx = broadcast_times(
            &g,
            0,
            &SimulationSpec::new(ProtocolKind::VisitExchange).with_seed(2),
            trials,
            &config,
        );
        let meetx = broadcast_times(
            &g,
            0,
            &SimulationSpec::new(ProtocolKind::MeetExchange).with_seed(2),
            trials,
            &config,
        );
        let shift =
            Ecdf::new(&visitx).smallest_dominating_shift(&Ecdf::new(&meetx), 1.0 / trials as f64);
        assert!(
            (shift as f64) <= 6.0 * (n as f64).log2(),
            "needed a shift of {shift} rounds, far beyond O(log n)"
        );
    }

    #[test]
    fn visitx_excess_over_meetx_is_small_on_hypercube() {
        let config = ExperimentConfig::smoke();
        let g = hypercube(8).unwrap();
        let trials = 6;
        // Lazy walks on both protocols: the hypercube is bipartite.
        let lazy = AgentConfig::default().lazy();
        let visitx = broadcast_times(
            &g,
            0,
            &SimulationSpec::new(ProtocolKind::VisitExchange)
                .with_seed(1)
                .with_agents(lazy.clone()),
            trials,
            &config,
        );
        let meetx = broadcast_times(
            &g,
            0,
            &SimulationSpec::new(ProtocolKind::MeetExchange)
                .with_seed(1)
                .with_agents(lazy),
            trials,
            &config,
        );
        let mean_v = visitx.iter().sum::<u64>() as f64 / trials as f64;
        let mean_m = meetx.iter().sum::<u64>() as f64 / trials as f64;
        // Theorem 23 allows visit-exchange to trail by only O(log n) rounds.
        assert!(
            mean_v <= mean_m + 6.0 * (g.num_vertices() as f64).log2(),
            "visit-exchange ({mean_v}) trails meet-exchange ({mean_m}) by more than O(log n)"
        );
    }
}
