//! CONG — the proof machinery of Sections 5–6, checked empirically.
//!
//! Two measurements:
//!
//! 1. **C-counters and congestion** ([`CCounterTrace`]): on regular graphs the
//!    proof of Theorem 10 bounds the congestion of canonical information walks
//!    by `O(k)` for walks of length `k`; empirically, `max_u C_u(t_u)` should
//!    stay within a constant factor of the visit-exchange broadcast time.
//! 2. **The coupling and Lemma 13** ([`CoupledRun`]): under the shared-stream
//!    coupling, `τ_u ≤ C_u(t_u)` must hold for *every* vertex in *every*
//!    execution; the experiment counts violations (always zero) and reports
//!    the coupled `T_push / T_visitx` ratios.
//!
//! It also reports the neighborhood-occupancy extremes that the tweaked
//! processes `t-visit-exchange` (cap `γ·d`, Eq. 3) and `r-visit-exchange`
//! (floor `α·d/2`, Eq. 10) rely on.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_analysis::Table;
use rumor_core::instrument::{CCounterTrace, CoupledRun};
use rumor_core::AgentConfig;
use rumor_graphs::generators::{hypercube, logarithmic_degree, random_regular};
use rumor_graphs::Graph;

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;

/// Identifier of this experiment.
pub const ID: &str = "congestion-counters";

struct Instance {
    label: String,
    graph: Graph,
}

fn instances(config: &ExperimentConfig) -> Vec<Instance> {
    let sizes: Vec<usize> = config.pick(
        vec![128, 256],
        vec![256, 512, 1024, 2048],
        vec![1024, 2048, 4096, 8192],
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC0);
    let mut out = Vec::new();
    for &n in &sizes {
        let d = logarithmic_degree(n, 2.0);
        out.push(Instance {
            label: format!("random {d}-regular, n={n}"),
            graph: random_regular(n, d, &mut rng).expect("random regular generator"),
        });
    }
    let dims: Vec<u32> = config.pick(vec![7], vec![9, 10, 11], vec![11, 12, 13]);
    for &dim in &dims {
        out.push(Instance {
            label: format!("hypercube, n=2^{dim}"),
            graph: hypercube(dim).expect("hypercube generator"),
        });
    }
    out
}

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let trials = config.trials(2, 5, 10);
    let mut report = ExperimentReport::new(
        ID,
        "Proof machinery of Theorem 1: C-counters, congestion, and the coupling",
        "Section 5: under the coupling, τ_u ≤ C_u(t_u) for every vertex (Lemma 13), and the \
         congestion of information walks of length k is O(k); Sections 5.2/6.2: with |A| = Θ(n) \
         stationary agents every closed neighborhood of a d-regular graph holds Θ(d) agents.",
    );

    let mut counter_table = Table::new(
        "C-counters and neighborhood occupancy (means over trials)",
        &[
            "graph",
            "T_visitx",
            "max C_u(t_u)",
            "max C / T_visitx",
            "max nbhd agents / d",
            "min nbhd agents / d",
        ],
    );
    let mut coupling_table = Table::new(
        "The coupling of Section 5.1 (per-trial worst case over vertices)",
        &[
            "graph",
            "coupled T_push",
            "coupled T_visitx",
            "T_push / T_visitx",
            "Lemma 13 violations",
        ],
    );

    let mut worst_c_ratio = 0.0f64;
    let mut total_violations = 0usize;
    for inst in instances(config) {
        let mut t_visitx = 0.0f64;
        let mut max_c = 0.0f64;
        let mut nb_max = 0.0f64;
        let mut nb_min = f64::INFINITY;
        for trial in 0..trials {
            let mut rng = StdRng::seed_from_u64(config.seed ^ (trial as u64) << 8);
            let trace = CCounterTrace::run(
                &inst.graph,
                0,
                &AgentConfig::default(),
                100_000_000,
                &mut rng,
            );
            t_visitx += trace.rounds as f64;
            max_c += trace.max_c_counter().unwrap_or(0) as f64;
            nb_max = nb_max.max(trace.neighborhood.max_per_degree);
            nb_min = nb_min.min(trace.neighborhood.min_per_degree);
        }
        t_visitx /= trials as f64;
        max_c /= trials as f64;
        let c_ratio = max_c / t_visitx.max(1.0);
        worst_c_ratio = worst_c_ratio.max(c_ratio);
        counter_table.push_row(&[
            inst.label.clone(),
            format!("{t_visitx:.1}"),
            format!("{max_c:.1}"),
            format!("{c_ratio:.2}"),
            format!("{nb_max:.2}"),
            format!("{nb_min:.2}"),
        ]);

        let mut push_sum = 0.0;
        let mut visitx_sum = 0.0;
        let mut violations = 0usize;
        for trial in 0..trials {
            let rep = CoupledRun::run(
                &inst.graph,
                0,
                &AgentConfig::default(),
                100_000_000,
                config.seed ^ (0xC0DE + trial as u64),
            );
            push_sum += rep.push_time as f64;
            visitx_sum += rep.visitx_time as f64;
            violations += rep.lemma13_violations;
        }
        total_violations += violations;
        coupling_table.push_row(&[
            inst.label.clone(),
            format!("{:.1}", push_sum / trials as f64),
            format!("{:.1}", visitx_sum / trials as f64),
            format!("{:.2}", push_sum / visitx_sum.max(1.0)),
            violations.to_string(),
        ]);
    }
    report.push_table(counter_table);
    report.push_table(coupling_table);
    report.push_note(format!(
        "Lemma 13 violations across all instances and trials: {total_violations} (the coupling \
         argument is deterministic, so this must be 0)."
    ));
    report.push_note(format!(
        "The worst ratio max_u C_u(t_u) / T_visitx observed is {worst_c_ratio:.2}: the congestion \
         of information paths is a constant multiple of their length, which is the quantitative \
         heart of Theorem 10."
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report_with_zero_violations() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert_eq!(report.tables.len(), 2);
        assert!(report.notes[0].contains("violations across all instances and trials: 0"));
    }
}
