//! FIG1D — the Siamese heavy binary tree `D_n` (Fig. 1(d), Lemma 8).
//!
//! Claims reproduced: `T_push = O(log n)` w.h.p. while *both* agent-based
//! protocols need `Ω(n)` rounds in expectation — the rumor has to cross the
//! merged root, which stationary agents rarely visit.

use rumor_core::ProtocolKind;
use rumor_graphs::generators::SiameseHeavyBinaryTree;

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::sweep::{ProtocolSetup, ScalingSweep, SweepPoint};

/// Identifier of this experiment.
pub const ID: &str = "fig1d-siamese";

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let depths: Vec<u32> = config.pick(vec![4, 5], vec![5, 6, 7, 8, 9], vec![7, 8, 9, 10, 11, 12]);
    let trials = config.trials(4, 15, 30);

    let points: Vec<SweepPoint> = depths
        .iter()
        .map(|&depth| {
            let tree = SiameseHeavyBinaryTree::new(depth).expect("siamese tree generator");
            let source = tree.a_leaf();
            SweepPoint::new(tree.into_graph(), source)
        })
        .collect();

    let sweep = ScalingSweep {
        points,
        protocols: vec![
            ProtocolSetup::new(ProtocolKind::Push),
            ProtocolSetup::new(ProtocolKind::VisitExchange),
            ProtocolSetup::new(ProtocolKind::MeetExchange),
            ProtocolSetup::new(ProtocolKind::PushPullVisitExchange).with_label("combined"),
        ],
        trials,
        max_rounds: 100_000_000,
    };
    let result = sweep.run(config);

    let mut report = ExperimentReport::new(
        ID,
        "Siamese heavy binary trees D_n (two heavy trees sharing the root)",
        "Lemma 8: T_push = O(log n) w.h.p.; E[T_visitx] = Ω(n); E[T_meetx] = Ω(n). Both agent \
         protocols are stuck waiting for an agent to cross the shared root.",
    );
    report.push_table(
        result.times_table("Mean broadcast time on the Siamese heavy trees (source = leaf)"),
    );
    report.push_table(result.fits_table("Fitted growth laws"));
    report.push_table(result.ratio_table(
        "meet-exchange / push mean-time ratio",
        "meet-exchange",
        "push",
    ));

    let push_fit = rumor_analysis::fit_power_law(&result.scaling_points("push"));
    let visitx_fit = rumor_analysis::fit_power_law(&result.scaling_points("visit-exchange"));
    let meetx_fit = rumor_analysis::fit_power_law(&result.scaling_points("meet-exchange"));
    report.push_note(format!(
        "Empirical exponents: push {:.2} (≈ 0 expected), visit-exchange {:.2} and meet-exchange {:.2} (both ≈ 1 expected).",
        push_fit.exponent, visitx_fit.exponent, meetx_fit.exponent
    ));
    report.push_note(format!(
        "At the largest size push beats visit-exchange by {:.0}× and meet-exchange by {:.0}×.",
        result.final_ratio("visit-exchange", "push"),
        result.final_ratio("meet-exchange", "push"),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert!(report.tables.len() >= 3);
        assert_eq!(report.notes.len(), 2);
    }

    #[test]
    fn both_agent_protocols_lose_to_push() {
        let config = ExperimentConfig::smoke();
        let tree = SiameseHeavyBinaryTree::new(6).unwrap();
        let source = tree.a_leaf();
        let sweep = ScalingSweep {
            points: vec![SweepPoint::new(tree.into_graph(), source)],
            protocols: vec![
                ProtocolSetup::new(ProtocolKind::Push),
                ProtocolSetup::new(ProtocolKind::VisitExchange),
                ProtocolSetup::new(ProtocolKind::MeetExchange),
            ],
            trials: 4,
            max_rounds: 10_000_000,
        };
        let result = sweep.run(&config);
        assert!(result.final_ratio("visit-exchange", "push") > 2.0);
        assert!(result.final_ratio("meet-exchange", "push") > 2.0);
    }
}
