//! COMBINED — `push-pull` running alongside `visit-exchange`.
//!
//! The introduction argues that "in certain settings, agent-based information
//! dissemination, separately or in combination with push-pull, can
//! significantly improve the broadcast time". The combined protocol
//! (`ProtocolKind::PushPullVisitExchange`) runs both mechanisms over one
//! shared informed-vertex set, so on every family it should track the faster
//! of the two components: fast on the double star (where push-pull is slow),
//! fast on the heavy binary tree (where visit-exchange is slow), and fast on
//! regular graphs (where both are fast). This experiment measures all three
//! protocols across those families.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_core::{AgentConfig, ProtocolKind};
use rumor_graphs::generators::{
    double_star, logarithmic_degree, random_regular, star, HeavyBinaryTree, STAR_CENTER,
};

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::sweep::{ProtocolSetup, ScalingSweep, SweepPoint};

/// Identifier of this experiment.
pub const ID: &str = "combined-protocol";

fn protocols(lazy: bool) -> Vec<ProtocolSetup> {
    let agents = if lazy {
        AgentConfig::default().lazy()
    } else {
        AgentConfig::default()
    };
    vec![
        ProtocolSetup::new(ProtocolKind::PushPull),
        ProtocolSetup::new(ProtocolKind::VisitExchange).with_agents(agents.clone()),
        ProtocolSetup::new(ProtocolKind::PushPullVisitExchange).with_agents(agents),
    ]
}

/// How much slower the combined protocol is than the faster of its two
/// components, at the largest sweep point (1.0 = exactly as fast).
fn overhead(result: &crate::sweep::SweepResult) -> f64 {
    let last = result.measurements.last().expect("non-empty sweep");
    let ppull = last.summaries[0].mean;
    let visitx = last.summaries[1].mean;
    let combined = last.summaries[2].mean;
    combined / ppull.min(visitx).max(1.0)
}

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let trials = config.trials(5, 15, 30);

    let mut report = ExperimentReport::new(
        ID,
        "Combining push-pull with visit-exchange",
        "Introduction: agent-based dissemination, separately or in combination with push-pull, \
         can significantly improve the broadcast time. The combined protocol should match the \
         faster of its two components on every family — including the families where one of them \
         alone is polynomially slow.",
    );

    // Family 1: double stars — push-pull alone needs Ω(n) rounds (Lemma 3).
    let leaves: Vec<usize> =
        config.pick(vec![64, 128], vec![256, 512, 1024], vec![1024, 2048, 4096]);
    let dstar_sweep = ScalingSweep {
        points: leaves
            .iter()
            .map(|&l| {
                let g = double_star(l).expect("double star generator");
                SweepPoint::new(g, 2)
            })
            .collect(),
        protocols: protocols(true),
        trials,
        max_rounds: 100_000_000,
    };
    let dstar_result = dstar_sweep.run(config);
    report.push_table(dstar_result.times_table("Double star S²_n (source = a leaf)"));
    let dstar_overhead = overhead(&dstar_result);

    // Family 2: heavy binary trees — visit-exchange alone needs Ω(n) rounds
    // (Lemma 4(b)).
    let depths: Vec<u32> = config.pick(vec![5, 6], vec![7, 8, 9], vec![9, 10, 11]);
    let tree_sweep = ScalingSweep {
        points: depths
            .iter()
            .map(|&depth| {
                let tree = HeavyBinaryTree::new(depth).expect("heavy binary tree");
                let source = tree.a_leaf();
                let n = tree.graph().num_vertices();
                SweepPoint::labelled(tree.into_graph(), source, &format!("{n} (depth {depth})"))
            })
            .collect(),
        protocols: protocols(false),
        trials,
        max_rounds: 10_000_000,
    };
    let tree_result = tree_sweep.run(config);
    report.push_table(tree_result.times_table("Heavy binary tree B_n (source = a leaf)"));
    let tree_overhead = overhead(&tree_result);

    // Family 3: stars and random regular graphs — both components are already
    // fast; the combination must not be slower.
    let sizes: Vec<usize> = config.pick(vec![128], vec![512, 1024], vec![2048, 4096]);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC0);
    let mut fast_points: Vec<SweepPoint> = sizes
        .iter()
        .map(|&n| {
            let d = logarithmic_degree(n, 2.0);
            SweepPoint::labelled(
                random_regular(n, d, &mut rng).expect("random regular generator"),
                0,
                &format!("random {d}-regular, n={n}"),
            )
        })
        .collect();
    let star_leaves = config.pick(128, 1024, 4096);
    fast_points.push(SweepPoint::labelled(
        star(star_leaves).expect("star generator"),
        STAR_CENTER,
        &format!("star, {star_leaves} leaves"),
    ));
    let fast_sweep = ScalingSweep {
        points: fast_points,
        protocols: protocols(true),
        trials,
        max_rounds: 10_000_000,
    };
    let fast_result = fast_sweep.run(config);
    report.push_table(fast_result.times_table("Families where both components are already fast"));
    let fast_overhead = overhead(&fast_result);

    report.push_note(format!(
        "At the largest size of each family, the combined protocol finishes within \
         {dstar_overhead:.2}× (double star), {tree_overhead:.2}× (heavy binary tree) and \
         {fast_overhead:.2}× (regular/star) of the faster of its two components — it inherits \
         the best case everywhere, as the introduction claims."
    ));
    report.push_note(
        "The combination costs one extra message per vertex per round compared with running \
         visit-exchange alone; the payoff is immunity to the worst cases of both mechanisms.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_analysis::Summary;
    use rumor_core::{simulate, SimulationSpec};

    fn mean_rounds(
        graph: &rumor_graphs::Graph,
        source: usize,
        kind: ProtocolKind,
        agents: &AgentConfig,
        trials: u64,
    ) -> f64 {
        let times: Vec<u64> = (0..trials)
            .map(|seed| {
                simulate(
                    graph,
                    source,
                    &SimulationSpec::new(kind)
                        .with_seed(seed)
                        .with_agents(agents.clone())
                        .adapted_to(graph),
                )
                .rounds
            })
            .collect();
        Summary::of_u64(&times).mean
    }

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert_eq!(report.tables.len(), 3);
        assert_eq!(report.notes.len(), 2);
    }

    #[test]
    fn combined_is_fast_where_push_pull_is_slow() {
        let g = double_star(256).unwrap();
        let lazy = AgentConfig::default().lazy();
        let ppull = mean_rounds(&g, 2, ProtocolKind::PushPull, &lazy, 5);
        let combined = mean_rounds(&g, 2, ProtocolKind::PushPullVisitExchange, &lazy, 5);
        assert!(
            combined * 3.0 < ppull,
            "combined ({combined}) should be much faster than push-pull ({ppull}) on the double star"
        );
    }

    #[test]
    fn combined_is_fast_where_visit_exchange_is_slow() {
        let tree = HeavyBinaryTree::new(7).unwrap();
        let source = tree.a_leaf();
        let default = AgentConfig::default();
        let visitx = mean_rounds(
            tree.graph(),
            source,
            ProtocolKind::VisitExchange,
            &default,
            5,
        );
        let combined = mean_rounds(
            tree.graph(),
            source,
            ProtocolKind::PushPullVisitExchange,
            &default,
            5,
        );
        assert!(
            combined * 2.0 < visitx,
            "combined ({combined}) should be much faster than visit-exchange ({visitx}) on the \
             heavy binary tree"
        );
    }
}
