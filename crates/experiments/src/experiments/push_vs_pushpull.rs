//! PP-PUSH — `push` vs `push-pull`: equal on regular graphs, separated on
//! stars.
//!
//! The introduction recalls two known facts the rest of the paper builds on:
//! `push` and `push-pull` have the same asymptotic broadcast time on regular
//! graphs (\[27\]), while on the star `push` needs `Ω(n log n)` rounds and
//! `push-pull` needs at most 2. This experiment reproduces both, which also
//! serves as a calibration check for the simulator.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_core::ProtocolKind;
use rumor_graphs::generators::{logarithmic_degree, random_regular, star, STAR_CENTER};

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::sweep::{ProtocolSetup, ScalingSweep, SweepPoint};

/// Identifier of this experiment.
pub const ID: &str = "push-vs-pushpull";

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let sizes: Vec<usize> = config.pick(
        vec![64, 128],
        vec![256, 512, 1024, 2048],
        vec![1024, 2048, 4096, 8192],
    );
    let trials = config.trials(5, 20, 40);

    let mut report = ExperimentReport::new(
        ID,
        "push vs push-pull: regular graphs vs the star",
        "Background facts used by the paper: on regular graphs push and push-pull have the same \
         asymptotic broadcast time [27]; on the star push needs Ω(n log n) rounds while push-pull \
         needs at most two.",
    );

    // Regular graphs.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x99);
    let regular_points: Vec<SweepPoint> = sizes
        .iter()
        .map(|&n| {
            let d = logarithmic_degree(n, 2.0);
            SweepPoint::labelled(
                random_regular(n, d, &mut rng).expect("random regular generator"),
                0,
                &format!("{n} (d={d})"),
            )
        })
        .collect();
    let regular_sweep = ScalingSweep {
        points: regular_points,
        protocols: vec![
            ProtocolSetup::new(ProtocolKind::Push),
            ProtocolSetup::new(ProtocolKind::Pull),
            ProtocolSetup::new(ProtocolKind::PushPull),
        ],
        trials,
        max_rounds: 10_000_000,
    };
    let regular_result = regular_sweep.run(config);
    report.push_table(regular_result.times_table("Random d-regular graphs (d ≈ 2·log2 n)"));
    report.push_table(regular_result.ratio_table(
        "Regular graphs: push / push-pull ratio (constant expected)",
        "push",
        "push-pull",
    ));

    // Stars.
    let star_points: Vec<SweepPoint> = sizes
        .iter()
        .map(|&n| SweepPoint::new(star(n).expect("star"), STAR_CENTER))
        .collect();
    let star_sweep = ScalingSweep {
        points: star_points,
        protocols: vec![
            ProtocolSetup::new(ProtocolKind::Push),
            ProtocolSetup::new(ProtocolKind::PushPull),
        ],
        trials,
        max_rounds: 100_000_000,
    };
    let star_result = star_sweep.run(config);
    report.push_table(star_result.times_table("Stars S_n (source = center)"));
    report.push_table(star_result.fits_table("Star: fitted growth laws"));

    report.push_note(format!(
        "On regular graphs the push / push-pull ratio stays at {:.2} at the largest size; on the \
         star it blows up to {:.0}.",
        regular_result.final_ratio("push", "push-pull"),
        star_result.final_ratio("push", "push-pull"),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert_eq!(report.tables.len(), 4);
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn ratio_is_constant_on_regular_but_large_on_star() {
        let config = ExperimentConfig::smoke();
        let mut rng = StdRng::seed_from_u64(5);
        let regular = random_regular(256, 16, &mut rng).unwrap();
        let regular_sweep = ScalingSweep {
            points: vec![SweepPoint::new(regular, 0)],
            protocols: vec![
                ProtocolSetup::new(ProtocolKind::Push),
                ProtocolSetup::new(ProtocolKind::PushPull),
            ],
            trials: 6,
            max_rounds: 1_000_000,
        };
        let regular_result = regular_sweep.run(&config);
        assert!(regular_result.final_ratio("push", "push-pull") < 4.0);

        let star_sweep = ScalingSweep {
            points: vec![SweepPoint::new(star(256).unwrap(), STAR_CENTER)],
            protocols: vec![
                ProtocolSetup::new(ProtocolKind::Push),
                ProtocolSetup::new(ProtocolKind::PushPull),
            ],
            trials: 4,
            max_rounds: 100_000_000,
        };
        let star_result = star_sweep.run(&config);
        assert!(star_result.final_ratio("push", "push-pull") > 50.0);
    }
}
