//! One module per reproduced figure/lemma/theorem. See `DESIGN.md` for the
//! experiment index mapping each module to the paper.

pub mod agent_density;
pub mod async_vs_sync;
pub mod combined;
pub mod congestion;
pub mod expansion;
pub mod fairness;
pub mod fig1a_star;
pub mod fig1b_double_star;
pub mod fig1c_heavy_tree;
pub mod fig1d_siamese;
pub mod fig1e_cycle_stars;
pub mod meeting_time;
pub mod placement;
pub mod push_vs_pushpull;
pub mod robustness_churn;
pub mod social_networks;
pub mod thm1_regular;
pub mod thm23_meetx;
pub mod thm24_lower_bounds;

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;

/// The function type every experiment exposes.
pub type ExperimentFn = fn(&ExperimentConfig) -> ExperimentReport;

/// Registry of every experiment, in presentation order.
pub const REGISTRY: &[(&str, ExperimentFn)] = &[
    (fig1a_star::ID, fig1a_star::run),
    (fig1b_double_star::ID, fig1b_double_star::run),
    (fig1c_heavy_tree::ID, fig1c_heavy_tree::run),
    (fig1d_siamese::ID, fig1d_siamese::run),
    (fig1e_cycle_stars::ID, fig1e_cycle_stars::run),
    (thm1_regular::ID, thm1_regular::run),
    (thm23_meetx::ID, thm23_meetx::run),
    (thm24_lower_bounds::ID, thm24_lower_bounds::run),
    (fairness::ID, fairness::run),
    (congestion::ID, congestion::run),
    (push_vs_pushpull::ID, push_vs_pushpull::run),
    (combined::ID, combined::run),
    (meeting_time::ID, meeting_time::run),
    (placement::ID, placement::run),
    (expansion::ID, expansion::run),
    (async_vs_sync::ID, async_vs_sync::run),
    (robustness_churn::ID, robustness_churn::run),
    (agent_density::ID, agent_density::run),
    (social_networks::ID, social_networks::run),
];

/// Identifiers of all registered experiments, in presentation order.
pub fn all_ids() -> Vec<&'static str> {
    REGISTRY.iter().map(|&(id, _)| id).collect()
}

/// Runs the experiment with the given identifier, or returns `None` if no
/// such experiment exists.
pub fn run_by_id(id: &str, config: &ExperimentConfig) -> Option<ExperimentReport> {
    REGISTRY
        .iter()
        .find(|&&(name, _)| name == id)
        .map(|&(_, f)| f(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_lowercase() {
        let ids = all_ids();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate experiment ids");
        for id in ids {
            assert_eq!(
                id,
                id.to_lowercase(),
                "experiment ids should be lowercase: {id}"
            );
        }
    }

    #[test]
    fn run_by_id_finds_registered_experiments() {
        assert!(run_by_id("no-such-experiment", &ExperimentConfig::smoke()).is_none());
        // Run the cheapest experiment through the registry path.
        let report = run_by_id(fairness::ID, &ExperimentConfig::smoke()).unwrap();
        assert_eq!(report.id, fairness::ID);
    }

    #[test]
    fn registry_covers_all_figure_panels_and_theorems() {
        let ids = all_ids();
        for required in [
            "fig1a-star",
            "fig1b-double-star",
            "fig1c-heavy-tree",
            "fig1d-siamese",
            "fig1e-cycle-stars",
            "thm1-regular",
            "thm23-meetx-vs-visitx",
            "thm24-25-lower-bounds",
        ] {
            assert!(ids.contains(&required), "missing experiment {required}");
        }
    }
}
