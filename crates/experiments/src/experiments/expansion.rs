//! EXPAND — broadcast time against expansion (conductance / spectral gap) on
//! regular graphs.
//!
//! The paper's Theorem 1 says `push` and `visit-exchange` are asymptotically
//! interchangeable on regular graphs of at least logarithmic degree; the
//! *absolute* broadcast time on such graphs is governed by expansion, via the
//! conductance and spectral-expansion bounds for rumor spreading the paper
//! cites ([11, 26, 41]). This experiment lines the three quantities up on
//! regular families spanning the expansion spectrum — random regular graphs
//! and hypercubes (expanders, logarithmic broadcast) versus the cycle of
//! cliques (conductance `Θ(1/n)`, polynomial broadcast) — and checks that
//! `push` and `visit-exchange` track each other across the whole range while
//! both slow down exactly where expansion collapses.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_analysis::{Summary, Table};
use rumor_core::{ProtocolKind, SimulationSpec};
use rumor_graphs::algorithms::{graph_conductance_estimate, spectral_gap_estimate};
use rumor_graphs::generators::{cycle_of_cliques, hypercube, logarithmic_degree, random_regular};
use rumor_graphs::Graph;

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::runner::broadcast_times;

/// Identifier of this experiment.
pub const ID: &str = "expansion-vs-broadcast";

struct Family {
    label: String,
    graph: Graph,
}

fn families(config: &ExperimentConfig) -> Vec<Family> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xE8);
    let mut out = Vec::new();

    let n = config.pick(256, 1024, 4096);
    let d = logarithmic_degree(n, 2.0);
    out.push(Family {
        label: format!("random {d}-regular, n={n} (expander)"),
        graph: random_regular(n, d, &mut rng).expect("random regular generator"),
    });

    let dim = config.pick(8, 10, 12);
    out.push(Family {
        label: format!("hypercube, n=2^{dim} (gap 1/d)"),
        graph: hypercube(dim).expect("hypercube generator"),
    });

    // The cycle of cliques is the paper's example of a regular graph where
    // the broadcast time is polynomial: its conductance is Θ(1/#cliques).
    let cliques = config.pick(8, 24, 48);
    let clique_d = config.pick(16, 24, 32);
    out.push(Family {
        label: format!("cycle of {cliques} {clique_d}-cliques (thin cuts)"),
        graph: cycle_of_cliques(cliques, clique_d).expect("cycle of cliques generator"),
    });

    out
}

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let trials = config.trials(4, 12, 25);

    let mut report = ExperimentReport::new(
        ID,
        "Expansion (conductance, spectral gap) vs broadcast time on regular graphs",
        "Background bounds the paper builds on ([11, 26, 41]): on regular graphs the broadcast \
         time of rumor spreading is controlled by expansion; Theorem 1 transfers any such bound \
         to visit-exchange. Expanders broadcast in O(log n) rounds, families with Θ(1/n) \
         conductance take polynomially long — and push and visit-exchange track each other \
         across the whole range.",
    );

    let mut table = Table::new(
        "Expansion diagnostics and broadcast times (means over trials)",
        &[
            "graph",
            "conductance (ball-cut estimate)",
            "lazy spectral gap",
            "mean T_push",
            "mean T_visitx",
            "push / visitx",
        ],
    );

    let mut ratios = Vec::new();
    let mut rows: Vec<(f64, f64)> = Vec::new(); // (gap, mean push time)
    for family in families(config) {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xE81);
        let conductance = graph_conductance_estimate(&family.graph, 60, &mut rng)
            .expect("non-degenerate family graph");
        let spectral = spectral_gap_estimate(&family.graph, 2_000, 1e-9, &mut rng)
            .expect("non-degenerate family graph");

        let push = broadcast_times(
            &family.graph,
            0,
            &SimulationSpec::new(ProtocolKind::Push).with_seed(config.seed),
            trials,
            config,
        );
        let visitx = broadcast_times(
            &family.graph,
            0,
            &SimulationSpec::new(ProtocolKind::VisitExchange).with_seed(config.seed),
            trials,
            config,
        );
        let push_mean = Summary::of_u64(&push).mean;
        let visitx_mean = Summary::of_u64(&visitx).mean;
        let ratio = push_mean / visitx_mean.max(1.0);
        ratios.push(ratio);
        rows.push((spectral.gap, push_mean));

        table.push_row(&[
            family.label.as_str(),
            &format!("{conductance:.4}"),
            &format!("{:.4}", spectral.gap),
            &format!("{push_mean:.1}"),
            &format!("{visitx_mean:.1}"),
            &format!("{ratio:.2}"),
        ]);
    }
    report.push_table(table);

    let min_ratio = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let max_ratio = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    report.push_note(format!(
        "push / visit-exchange stays within [{min_ratio:.2}, {max_ratio:.2}] across the whole \
         expansion range — Theorem 1 does not care whether the regular graph is an expander."
    ));
    if let (Some(best), Some(worst)) = (
        rows.iter().max_by(|a, b| a.0.total_cmp(&b.0)),
        rows.iter().min_by(|a, b| a.0.total_cmp(&b.0)),
    ) {
        report.push_note(format!(
            "Broadcast time moves inversely with expansion: the best-expanding family \
             (gap {:.3}) broadcasts in {:.0} rounds, the worst (gap {:.4}) needs {:.0}.",
            best.0, best.1, worst.0, worst.1
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].num_rows(), 3);
        assert_eq!(report.notes.len(), 2);
    }

    #[test]
    fn poor_expansion_means_slower_broadcast_for_both_protocols() {
        let config = ExperimentConfig::smoke();
        let mut rng = StdRng::seed_from_u64(2);
        let expander = random_regular(256, 16, &mut rng).unwrap();
        let chain = cycle_of_cliques(16, 16).unwrap();
        for kind in [ProtocolKind::Push, ProtocolKind::VisitExchange] {
            let fast = Summary::of_u64(&broadcast_times(
                &expander,
                0,
                &SimulationSpec::new(kind).with_seed(1),
                4,
                &config,
            ))
            .mean;
            let slow = Summary::of_u64(&broadcast_times(
                &chain,
                0,
                &SimulationSpec::new(kind).with_seed(1),
                4,
                &config,
            ))
            .mean;
            assert!(
                slow > 2.0 * fast,
                "{} should be much slower on the cycle of cliques ({slow}) than on the \
                 expander ({fast})",
                kind.name()
            );
        }
    }

    #[test]
    fn expander_families_have_larger_gap_than_the_clique_chain() {
        let config = ExperimentConfig::smoke();
        let fams = families(&config);
        let mut rng = StdRng::seed_from_u64(5);
        let gaps: Vec<f64> = fams
            .iter()
            .map(|f| {
                spectral_gap_estimate(&f.graph, 2_000, 1e-9, &mut rng)
                    .unwrap()
                    .gap
            })
            .collect();
        // Families are ordered: random regular, hypercube, cycle of cliques.
        assert!(
            gaps[0] > gaps[2],
            "expander gap {} vs clique chain {}",
            gaps[0],
            gaps[2]
        );
        assert!(
            gaps[1] > gaps[2],
            "hypercube gap {} vs clique chain {}",
            gaps[1],
            gaps[2]
        );
    }
}
