//! FIG1C — the heavy binary tree `B_n` (Fig. 1(c), Lemma 4).
//!
//! Claims reproduced: `T_push = O(log n)` w.h.p., `E[T_visitx] = Ω(n)` (the
//! stationary distribution keeps virtually all agents inside the leaf clique,
//! so the root waits `Ω(n)` rounds for its first visit), and for a leaf
//! source `T_meetx = O(log n)` w.h.p. (all the agents meet quickly inside the
//! leaf clique).

use rumor_core::ProtocolKind;
use rumor_graphs::generators::HeavyBinaryTree;

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::sweep::{ProtocolSetup, ScalingSweep, SweepPoint};

/// Identifier of this experiment.
pub const ID: &str = "fig1c-heavy-tree";

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let depths: Vec<u32> = config.pick(
        vec![4, 5, 6],
        vec![6, 7, 8, 9, 10],
        vec![8, 9, 10, 11, 12, 13],
    );
    let trials = config.trials(4, 15, 30);

    let points: Vec<SweepPoint> = depths
        .iter()
        .map(|&depth| {
            let tree = HeavyBinaryTree::new(depth).expect("heavy binary tree generator");
            let source = tree.a_leaf();
            SweepPoint::new(tree.into_graph(), source)
        })
        .collect();

    let sweep = ScalingSweep {
        points,
        protocols: vec![
            ProtocolSetup::new(ProtocolKind::Push),
            ProtocolSetup::new(ProtocolKind::PushPull),
            ProtocolSetup::new(ProtocolKind::VisitExchange),
            ProtocolSetup::new(ProtocolKind::MeetExchange),
            ProtocolSetup::new(ProtocolKind::PushPullVisitExchange).with_label("combined"),
        ],
        trials,
        max_rounds: 100_000_000,
    };
    let result = sweep.run(config);

    let mut report = ExperimentReport::new(
        ID,
        "Heavy binary tree B_n (leaves form a clique)",
        "Lemma 4: T_push = O(log n) w.h.p.; E[T_visitx] = Ω(n); T_meetx = O(log n) w.h.p. for a \
         leaf source. The rumor-spreading protocols win here; the combined protocol tracks push-pull.",
    );
    report.push_table(
        result.times_table("Mean broadcast time on the heavy binary tree (source = leaf)"),
    );
    report.push_table(result.fits_table("Fitted growth laws"));
    report.push_table(result.ratio_table(
        "visit-exchange / push mean-time ratio",
        "visit-exchange",
        "push",
    ));

    let push_fit = rumor_analysis::fit_power_law(&result.scaling_points("push"));
    let visitx_fit = rumor_analysis::fit_power_law(&result.scaling_points("visit-exchange"));
    let meetx_fit = rumor_analysis::fit_power_law(&result.scaling_points("meet-exchange"));
    report.push_note(format!(
        "Empirical exponents: push {:.2} (≈ 0 expected), visit-exchange {:.2} (≈ 1 expected), meet-exchange {:.2} (≈ 0 expected for a leaf source).",
        push_fit.exponent, visitx_fit.exponent, meetx_fit.exponent
    ));
    report.push_note(format!(
        "At the largest size visit-exchange is {:.0}× slower than push; meet-exchange stays within {:.1}× of push.",
        result.final_ratio("visit-exchange", "push"),
        result.final_ratio("meet-exchange", "push"),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert!(report.tables.len() >= 3);
    }

    #[test]
    fn visit_exchange_is_the_slow_protocol_here() {
        let config = ExperimentConfig::smoke();
        let tree = HeavyBinaryTree::new(6).unwrap();
        let source = tree.a_leaf();
        let sweep = ScalingSweep {
            points: vec![SweepPoint::new(tree.into_graph(), source)],
            protocols: vec![
                ProtocolSetup::new(ProtocolKind::Push),
                ProtocolSetup::new(ProtocolKind::VisitExchange),
                ProtocolSetup::new(ProtocolKind::MeetExchange),
            ],
            trials: 4,
            max_rounds: 10_000_000,
        };
        let result = sweep.run(&config);
        assert!(result.final_ratio("visit-exchange", "push") > 2.0);
        assert!(
            result.final_ratio("visit-exchange", "meet-exchange") > 1.5,
            "meet-exchange from a leaf should beat visit-exchange"
        );
    }
}
