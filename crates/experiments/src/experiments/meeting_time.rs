//! MEET — `meet-exchange` broadcast time vs the meeting time of two walks.
//!
//! The related-work section recalls the bound of Dimitriou, Nikoletseas and
//! Spirakis (the paper's reference \[16\]): the broadcast time of
//! `meet-exchange` is at most `O(log n)` times the meeting time of two
//! independent random walks, and this is tight in general. On random regular
//! graphs, Cooper, Frieze and Radzik (\[14\]) sharpen this to
//! `E[T_meetx] = O(n·log k / k)` for `k` walks. This experiment estimates the
//! pairwise meeting time with the Monte-Carlo estimator from `rumor_walks`,
//! measures `T_meetx` with the full protocol, and reports the ratio
//! `T_meetx / t_meet` next to `log2 n` so the `O(log n)` envelope can be seen
//! directly.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_analysis::{Summary, Table};
use rumor_core::{AgentConfig, ProtocolKind, SimulationSpec};
use rumor_graphs::algorithms::is_bipartite;
use rumor_graphs::generators::{
    complete, logarithmic_degree, random_regular, CycleOfStarsOfCliques,
};
use rumor_graphs::{Graph, VertexId};
use rumor_walks::{meeting_time, WalkConfig};

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::runner::broadcast_times;

/// Identifier of this experiment.
pub const ID: &str = "meetx-vs-meeting-time";

struct Family {
    label: String,
    graph: Graph,
    source: VertexId,
}

fn families(config: &ExperimentConfig) -> Vec<Family> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x16);
    let mut out = Vec::new();

    let regular_sizes: Vec<usize> =
        config.pick(vec![128, 256], vec![256, 512, 1024], vec![1024, 2048, 4096]);
    for &n in &regular_sizes {
        let d = logarithmic_degree(n, 2.0);
        out.push(Family {
            label: format!("random {d}-regular, n={n}"),
            graph: random_regular(n, d, &mut rng).expect("random regular generator"),
            source: 0,
        });
    }

    let kn = config.pick(64, 512, 2048);
    out.push(Family {
        label: format!("complete K_{kn}"),
        graph: complete(kn).expect("complete graph"),
        source: 0,
    });

    let m = config.pick(4, 8, 12);
    let csc = CycleOfStarsOfCliques::new(m).expect("cycle of stars of cliques");
    let source = csc.a_clique_source();
    out.push(Family {
        label: format!("cycle-of-stars-of-cliques, m={m}"),
        graph: csc.into_graph(),
        source,
    });

    out
}

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let trials = config.trials(4, 12, 25);
    let meet_trials = config.trials(20, 60, 120);

    let mut report = ExperimentReport::new(
        ID,
        "meet-exchange broadcast time vs two-walk meeting time",
        "Related work [16]: T_meetx = O(t_meet · log n), where t_meet is the meeting time of two \
         independent random walks; [14]: on random regular graphs with k = Θ(n) walks, \
         E[T_meetx] = O(n·log k / k) = O(log n). The ratio T_meetx / t_meet should therefore stay \
         below a constant multiple of log2 n, and on regular graphs far below it.",
    );

    let mut table = Table::new(
        "Meeting time of two walks vs meet-exchange broadcast time",
        &[
            "graph",
            "t_meet (two walks)",
            "mean T_meetx",
            "T_meetx / t_meet",
            "log2 n",
        ],
    );
    let mut worst_normalized = f64::MIN;
    for family in families(config) {
        let n = family.graph.num_vertices();
        let log2n = (n as f64).log2();
        // Use lazy walks throughout on bipartite instances so both the
        // estimator and the protocol face the same walk law (Section 3).
        let (walk, agents) = if is_bipartite(&family.graph) {
            (WalkConfig::lazy(), AgentConfig::default().lazy())
        } else {
            (WalkConfig::simple(), AgentConfig::default())
        };

        // Meeting time of two walks started on the source and on a far-ish
        // vertex (the exact start matters little on these families; the
        // estimator is capped well above any realistic meeting time).
        let other = (family.source + n / 2) % n;
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x1660);
        let meet = meeting_time(
            &family.graph,
            family.source,
            other,
            walk,
            meet_trials,
            2_000_000,
            &mut rng,
        );

        let meetx = broadcast_times(
            &family.graph,
            family.source,
            &SimulationSpec::new(ProtocolKind::MeetExchange)
                .with_seed(config.seed)
                .with_agents(agents),
            trials,
            config,
        );
        let meetx_summary = Summary::of_u64(&meetx);
        // Guard against a degenerate zero meeting time (both walks start on
        // the same vertex only if n == 1, which the families exclude).
        let t_meet = meet.mean.max(1.0);
        let ratio = meetx_summary.mean / t_meet;
        worst_normalized = worst_normalized.max(ratio / log2n);
        table.push_row(&[
            family.label.as_str(),
            &format!("{:.1}", meet.mean),
            &format!("{:.1}", meetx_summary.mean),
            &format!("{ratio:.3}"),
            &format!("{log2n:.1}"),
        ]);
    }
    report.push_table(table);
    report.push_note(format!(
        "The largest observed T_meetx / t_meet is {worst_normalized:.3} · log2 n — inside the \
         O(log n) envelope of [16]."
    ));
    report.push_note(
        "With a linear number of agents the broadcast time on regular graphs is far below \
         t_meet · log n: many walks meet in parallel, which is exactly the k-walk speed-up \
         of [14].",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert_eq!(report.tables.len(), 1);
        assert!(report.tables[0].num_rows() >= 4);
        assert_eq!(report.notes.len(), 2);
    }

    #[test]
    fn meetx_is_within_log_n_times_the_meeting_time_on_a_regular_graph() {
        let config = ExperimentConfig::smoke();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 256;
        let g = random_regular(n, 16, &mut rng).unwrap();
        let meet = meeting_time(&g, 0, n / 2, WalkConfig::simple(), 40, 1_000_000, &mut rng);
        let meetx = broadcast_times(
            &g,
            0,
            &SimulationSpec::new(ProtocolKind::MeetExchange).with_seed(1),
            5,
            &config,
        );
        let mean_meetx = meetx.iter().sum::<u64>() as f64 / meetx.len() as f64;
        let bound = 4.0 * meet.mean.max(1.0) * (n as f64).log2();
        assert!(
            mean_meetx <= bound,
            "T_meetx ({mean_meetx}) exceeded the O(t_meet · log n) envelope ({bound})"
        );
    }

    #[test]
    fn families_cover_regular_and_clique_bearing_graphs() {
        let fams = families(&ExperimentConfig::smoke());
        assert!(fams.len() >= 4);
        assert!(fams.iter().any(|f| f.label.contains("complete")));
        assert!(fams.iter().any(|f| f.label.contains("cycle-of-stars")));
        for f in &fams {
            assert!(f.source < f.graph.num_vertices());
        }
    }
}
