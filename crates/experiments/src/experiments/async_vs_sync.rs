//! ASYNC — synchronous vs asynchronous rumor spreading (Section 2 related
//! work: Sauerwald \[41\], Giakkoupis–Nazari–Woelfel \[27\]).
//!
//! Asynchronous `push` (unit-rate Poisson clocks) has the same asymptotic
//! broadcast time as synchronous `push` on regular graphs; asynchronous
//! `push-pull` can differ from its synchronous counterpart by bounded
//! factors. The experiment measures both protocol pairs on regular graphs and
//! on the star, reporting the sync/async ratio (time units vs rounds).

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_analysis::{Summary, Table};
use rumor_core::{simulate, simulate_async, ProtocolKind, ProtocolOptions, SimulationSpec};
use rumor_graphs::generators::{logarithmic_degree, random_regular, star, STAR_CENTER};
use rumor_graphs::{Graph, VertexId};

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;

/// Identifier of this experiment.
pub const ID: &str = "async-vs-sync";

fn mean_rounds<F>(make: F, trials: usize, seed: u64) -> f64
where
    F: Fn(u64) -> u64,
{
    let times: Vec<u64> = (0..trials as u64)
        .map(|t| make(seed.wrapping_add(t)))
        .collect();
    Summary::of_u64(&times).mean
}

const MAX_ROUNDS: u64 = 100_000_000;

fn measure(graph: &Graph, source: VertexId, trials: usize, seed: u64) -> [f64; 4] {
    let sync_spec = |kind: ProtocolKind, s: u64| {
        SimulationSpec::new(kind)
            .with_seed(s)
            .with_max_rounds(MAX_ROUNDS)
    };
    let sync_push = mean_rounds(
        |s| simulate(graph, source, &sync_spec(ProtocolKind::Push, s)).rounds,
        trials,
        seed,
    );
    let async_push = mean_rounds(
        |s| simulate_async(graph, source, false, ProtocolOptions::none(), MAX_ROUNDS, s).rounds,
        trials,
        seed,
    );
    let sync_pp = mean_rounds(
        |s| simulate(graph, source, &sync_spec(ProtocolKind::PushPull, s)).rounds,
        trials,
        seed,
    );
    let async_pp = mean_rounds(
        |s| simulate_async(graph, source, true, ProtocolOptions::none(), MAX_ROUNDS, s).rounds,
        trials,
        seed,
    );
    [sync_push, async_push, sync_pp, async_pp]
}

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let sizes: Vec<usize> = config.pick(
        vec![128, 256],
        vec![256, 512, 1024, 2048],
        vec![1024, 2048, 4096, 8192],
    );
    let trials = config.trials(4, 15, 30);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA5);

    let mut report = ExperimentReport::new(
        ID,
        "Synchronous vs asynchronous rumor spreading",
        "Related-work baseline reproduced for calibration: asynchronous push (Poisson clocks) has \
         the same asymptotic broadcast time as synchronous push on regular graphs [41]; the star \
         separates push from push-pull in both timing models.",
    );

    let mut table = Table::new(
        "Mean broadcast time: synchronous rounds vs asynchronous time units",
        &[
            "graph",
            "push",
            "async-push",
            "push/async",
            "push-pull",
            "async-push-pull",
        ],
    );
    let mut worst_ratio: f64 = 0.0;
    let mut best_ratio = f64::INFINITY;
    for &n in &sizes {
        let d = logarithmic_degree(n, 2.0);
        let graph = random_regular(n, d, &mut rng).expect("random regular generator");
        let [sync_push, async_push, sync_pp, async_pp] = measure(&graph, 0, trials, config.seed);
        let ratio = sync_push / async_push.max(1e-9);
        worst_ratio = worst_ratio.max(ratio);
        best_ratio = best_ratio.min(ratio);
        table.push_row(&[
            format!("random {d}-regular, n={n}"),
            format!("{sync_push:.1}"),
            format!("{async_push:.1}"),
            format!("{ratio:.2}"),
            format!("{sync_pp:.1}"),
            format!("{async_pp:.1}"),
        ]);
    }
    // The star: asynchronous push remains coupon-collector slow while both
    // push-pull variants stay fast.
    let star_leaves = config.pick(128, 1024, 4096);
    let star_graph = star(star_leaves).expect("star generator");
    let [sync_push, async_push, sync_pp, async_pp] =
        measure(&star_graph, STAR_CENTER, trials, config.seed);
    table.push_row(&[
        format!("star, n={}", star_graph.num_vertices()),
        format!("{sync_push:.1}"),
        format!("{async_push:.1}"),
        format!("{:.2}", sync_push / async_push.max(1e-9)),
        format!("{sync_pp:.1}"),
        format!("{async_pp:.1}"),
    ]);
    report.push_table(table);

    report.push_note(format!(
        "On regular graphs the synchronous/asynchronous push ratio stays within [{best_ratio:.2}, \
         {worst_ratio:.2}] — a constant band, matching [41]."
    ));
    report.push_note(
        "On the star both push variants remain Θ(n log n) while both push-pull variants finish in \
         O(1) rounds/time units, so the paper's separations are not artifacts of synchrony.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.notes.len(), 2);
        // rows: one per regular size plus the star row
        assert!(report.tables[0].num_rows() >= 3);
    }
}
