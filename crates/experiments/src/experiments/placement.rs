//! PLACE — stationary placement vs exactly one agent per vertex.
//!
//! The paper assumes agents start from independent samples of the stationary
//! distribution, and remarks (after Lemma 11) that all its regular-graph
//! results also hold when exactly one agent starts on each vertex. On regular
//! graphs the two placements coincide in distribution per vertex, so broadcast
//! times should match within a constant factor. On highly non-regular graphs
//! they differ sharply: the `Ω(n)` lower bound for `visit-exchange` on the
//! heavy binary tree (Lemma 4(b)) hinges on stationary placement putting
//! essentially all agents on the leaves, and one-per-vertex placement defeats
//! it. The experiment shows both effects.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_analysis::{Summary, Table};
use rumor_core::{AgentConfig, ProtocolKind, SimulationSpec};
use rumor_graphs::generators::{hypercube, logarithmic_degree, random_regular, HeavyBinaryTree};
use rumor_graphs::{Graph, VertexId};

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::runner::broadcast_times;

/// Identifier of this experiment.
pub const ID: &str = "agent-placement";

fn mean(times: &[u64]) -> f64 {
    Summary::of_u64(times).mean
}

fn times_for(
    graph: &Graph,
    source: VertexId,
    kind: ProtocolKind,
    agents: AgentConfig,
    trials: usize,
    config: &ExperimentConfig,
) -> Vec<u64> {
    let spec = SimulationSpec::new(kind)
        .with_seed(config.seed)
        .with_agents(agents)
        .adapted_to(graph);
    broadcast_times(graph, source, &spec, trials, config)
}

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let trials = config.trials(4, 15, 30);

    let mut report = ExperimentReport::new(
        ID,
        "Agent placement: stationary sampling vs one agent per vertex",
        "The paper's remark after Lemma 11: the regular-graph results (Theorem 1 and its \
         companions) hold both for stationary placement and for exactly one agent per vertex. \
         On non-regular graphs the placements are not interchangeable: the Ω(n) bound for \
         visit-exchange on the heavy binary tree (Lemma 4(b)) relies on stationary placement \
         concentrating the agents on the leaf clique.",
    );

    // Regular families: the two placements should agree within a constant.
    let mut regular_table = Table::new(
        "Regular graphs: mean broadcast time under each placement",
        &["graph", "protocol", "stationary", "one per vertex", "ratio"],
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x71AC);
    let mut worst_regular_ratio: f64 = 1.0;
    let sizes: Vec<usize> = config.pick(
        vec![128, 256],
        vec![512, 1024, 2048],
        vec![2048, 4096, 8192],
    );
    let mut regular_families: Vec<(String, Graph)> = sizes
        .iter()
        .map(|&n| {
            let d = logarithmic_degree(n, 2.0);
            (
                format!("random {d}-regular, n={n}"),
                random_regular(n, d, &mut rng).expect("random regular generator"),
            )
        })
        .collect();
    let dim = config.pick(7, 10, 12);
    regular_families.push((
        format!("hypercube, n=2^{dim}"),
        hypercube(dim).expect("hypercube generator"),
    ));

    for (label, graph) in &regular_families {
        for kind in [ProtocolKind::VisitExchange, ProtocolKind::MeetExchange] {
            let stationary = mean(&times_for(
                graph,
                0,
                kind,
                AgentConfig::default(),
                trials,
                config,
            ));
            let one_per_vertex = mean(&times_for(
                graph,
                0,
                kind,
                AgentConfig::one_per_vertex(),
                trials,
                config,
            ));
            let ratio = if one_per_vertex > 0.0 {
                stationary / one_per_vertex
            } else {
                f64::NAN
            };
            worst_regular_ratio = worst_regular_ratio.max(ratio.max(1.0 / ratio));
            regular_table.push_row(&[
                label.as_str(),
                kind.name(),
                &format!("{stationary:.1}"),
                &format!("{one_per_vertex:.1}"),
                &format!("{ratio:.2}"),
            ]);
        }
    }
    report.push_table(regular_table);

    // The heavy binary tree: the *placements themselves* differ sharply even
    // though the broadcast times at simulable sizes stay close (informed
    // agents still have to climb against the downward drift either way).
    // Lemma 4(b) exploits exactly the fact measured here: under stationary
    // placement the internal vertices start essentially empty of agents.
    let depth = config.pick(7, 9, 11);
    let tree = HeavyBinaryTree::new(depth).expect("heavy binary tree");
    let source = tree.a_leaf();
    let graph = tree.graph();
    let internal = tree.internal_vertices();
    let occupancy_trials = config.trials(10, 30, 60);
    let mut tree_table = Table::new(
        &format!(
            "Heavy binary tree B_n (depth {depth}, n = {}, {} internal vertices), source = leaf",
            graph.num_vertices(),
            internal.len()
        ),
        &[
            "placement",
            "agents on internal vertices at round 0",
            "mean T_visitx",
            "mean T_meetx",
        ],
    );
    let mut stationary_internal = 0.0;
    for (label, agents) in [
        ("stationary", AgentConfig::default()),
        ("one per vertex", AgentConfig::one_per_vertex()),
    ] {
        let occupancy = mean_internal_occupancy(
            graph,
            &agents,
            internal.clone(),
            occupancy_trials,
            config.seed,
        );
        if label == "stationary" {
            stationary_internal = occupancy;
        }
        let visitx = mean(&times_for(
            graph,
            source,
            ProtocolKind::VisitExchange,
            agents.clone(),
            trials,
            config,
        ));
        let meetx = mean(&times_for(
            graph,
            source,
            ProtocolKind::MeetExchange,
            agents,
            trials,
            config,
        ));
        tree_table.push_row(&[
            label.to_string(),
            format!("{occupancy:.1}"),
            format!("{visitx:.1}"),
            format!("{meetx:.1}"),
        ]);
    }
    report.push_table(tree_table);

    report.push_note(format!(
        "On the regular families the stationary / one-per-vertex ratio never strays further than \
         {worst_regular_ratio:.2}× from 1 — the placements are interchangeable there, as the paper \
         remarks."
    ));
    report.push_note(format!(
        "On the heavy binary tree, stationary placement starts only {stationary_internal:.1} agents \
         on its {} internal vertices (volume-proportional sampling strands the agents on the leaf \
         clique) — the fact Lemma 4(b)'s Ω(n) argument is built on. One-per-vertex placement starts \
         one agent on every internal vertex, but informed agents must still climb against the \
         2:1 downward drift, so the measured broadcast times remain comparable at these sizes.",
        internal.len()
    ));
    report
}

/// Mean number of agents that start on `internal` vertices under `agents`
/// placement, over `trials` independent placements.
fn mean_internal_occupancy(
    graph: &Graph,
    agents: &AgentConfig,
    internal: std::ops::Range<VertexId>,
    trials: usize,
    seed: u64,
) -> f64 {
    use rumor_walks::MultiWalk;
    let count = agents.count.resolve(graph.num_vertices());
    let mut total = 0usize;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1ACE_u64.wrapping_add(t as u64));
        let walks = MultiWalk::new(graph, count, &agents.placement, agents.walk, &mut rng);
        total += walks
            .positions()
            .iter()
            .filter(|&&v| internal.contains(&(v as usize)))
            .count();
    }
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.notes.len(), 2);
        // 3 regular families × 2 protocols.
        assert_eq!(report.tables[0].num_rows(), 6);
        assert_eq!(report.tables[1].num_rows(), 2);
    }

    #[test]
    fn placements_agree_on_a_regular_graph() {
        let config = ExperimentConfig::smoke();
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_regular(512, 18, &mut rng).unwrap();
        let stationary = mean(&times_for(
            &g,
            0,
            ProtocolKind::VisitExchange,
            AgentConfig::default(),
            6,
            &config,
        ));
        let one_per_vertex = mean(&times_for(
            &g,
            0,
            ProtocolKind::VisitExchange,
            AgentConfig::one_per_vertex(),
            6,
            &config,
        ));
        let ratio = stationary / one_per_vertex;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "placements should agree within a small constant on regular graphs, got {ratio}"
        );
    }

    #[test]
    fn stationary_placement_leaves_the_heavy_tree_internals_nearly_empty() {
        let tree = HeavyBinaryTree::new(7).unwrap();
        let graph = tree.graph();
        let internal = tree.internal_vertices();
        let stationary =
            mean_internal_occupancy(graph, &AgentConfig::default(), internal.clone(), 20, 3);
        let one_per_vertex = mean_internal_occupancy(
            graph,
            &AgentConfig::one_per_vertex(),
            internal.clone(),
            20,
            3,
        );
        // One-per-vertex starts exactly one agent on every internal vertex;
        // stationary placement puts only O(1) agents there in expectation
        // (the fact behind Lemma 4(b)).
        assert_eq!(one_per_vertex, internal.len() as f64);
        assert!(
            stationary < 0.2 * internal.len() as f64,
            "stationary placement put {stationary} agents on {} internal vertices",
            internal.len()
        );
    }
}
