//! FIG1E — the cycle of stars of cliques (Fig. 1(e), Lemma 9).
//!
//! Claims reproduced: on this (almost) regular graph,
//! `E[T_visitx] = O(n^{2/3})` while `E[T_meetx] = Ω(n^{2/3} log n)` — a
//! logarithmic-factor separation between the two agent protocols, caused by
//! the ring vertices `c_i` not storing the rumor in `meet-exchange`.

use rumor_core::ProtocolKind;
use rumor_graphs::generators::CycleOfStarsOfCliques;

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::sweep::{ProtocolSetup, ScalingSweep, SweepPoint};

/// Identifier of this experiment.
pub const ID: &str = "fig1e-cycle-stars";

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    // The structural parameter m (cycle length = star size = clique size);
    // n = m + m² + m³.
    let ms: Vec<usize> = config.pick(
        vec![4, 5, 6],
        vec![6, 8, 10, 12],
        vec![8, 10, 12, 14, 16, 18],
    );
    let trials = config.trials(3, 10, 20);

    let points: Vec<SweepPoint> = ms
        .iter()
        .map(|&m| {
            let g = CycleOfStarsOfCliques::new(m).expect("cycle of stars generator");
            let source = g.a_clique_source();
            SweepPoint::new(g.into_graph(), source)
        })
        .collect();

    let sweep = ScalingSweep {
        points,
        protocols: vec![
            ProtocolSetup::new(ProtocolKind::VisitExchange),
            ProtocolSetup::new(ProtocolKind::MeetExchange),
            ProtocolSetup::new(ProtocolKind::Push),
        ],
        trials,
        max_rounds: 100_000_000,
    };
    let result = sweep.run(config);

    let mut report = ExperimentReport::new(
        ID,
        "Cycle of stars of cliques (almost regular)",
        "Lemma 9: E[T_visitx] = O(n^{2/3}) while E[T_meetx] = Ω(n^{2/3} log n); the two agent \
         protocols are separated by a logarithmic factor on this graph.",
    );
    report.push_table(result.times_table("Mean broadcast time (source inside a clique Q_{0,0})"));
    report.push_table(result.fits_table("Fitted growth laws"));
    report.push_table(result.ratio_table(
        "meet-exchange / visit-exchange mean-time ratio (should grow ≈ log n)",
        "meet-exchange",
        "visit-exchange",
    ));

    let visitx_fit = rumor_analysis::fit_power_law(&result.scaling_points("visit-exchange"));
    let meetx_fit = rumor_analysis::fit_power_law(&result.scaling_points("meet-exchange"));
    report.push_note(format!(
        "Empirical exponents: visit-exchange {:.2} (2/3 ≈ 0.67 expected), meet-exchange {:.2} (slightly above 2/3 expected because of the extra log factor).",
        visitx_fit.exponent, meetx_fit.exponent
    ));
    report.push_note(format!(
        "The meet-exchange / visit-exchange ratio at the largest size is {:.2} (> 1, growing slowly with n as the Lemma predicts).",
        result.final_ratio("meet-exchange", "visit-exchange")
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert!(report.tables.len() >= 3);
    }

    #[test]
    fn meet_exchange_is_slower_than_visit_exchange() {
        let config = ExperimentConfig::smoke();
        let g = CycleOfStarsOfCliques::new(6).unwrap();
        let source = g.a_clique_source();
        let sweep = ScalingSweep {
            points: vec![SweepPoint::new(g.into_graph(), source)],
            protocols: vec![
                ProtocolSetup::new(ProtocolKind::VisitExchange),
                ProtocolSetup::new(ProtocolKind::MeetExchange),
            ],
            trials: 5,
            max_rounds: 10_000_000,
        };
        let result = sweep.run(&config);
        assert!(
            result.final_ratio("meet-exchange", "visit-exchange") > 1.0,
            "meet-exchange should be slower than visit-exchange on this graph"
        );
    }
}
