//! THM1 — `T_push ≍ T_visitx` on regular graphs of at least logarithmic
//! degree (Theorem 1 = Theorems 10 + 19).
//!
//! The theorem asserts that on every `d`-regular graph with `d = Ω(log n)`,
//! the broadcast times of `push` and `visit-exchange` agree up to constant
//! factors, both in expectation and w.h.p. The experiment measures the mean
//! ratio `T_push / T_visitx` across several regular families and sizes, and
//! checks it stays within a constant band — including on the cycle of cliques
//! where both protocols are polynomially slow.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_core::{AgentConfig, ProtocolKind};
use rumor_graphs::generators::{
    complete, cycle_of_cliques, hypercube, logarithmic_degree, random_regular,
};

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::sweep::{ProtocolSetup, ScalingSweep, SweepPoint};

/// Identifier of this experiment.
pub const ID: &str = "thm1-regular";

fn protocols() -> Vec<ProtocolSetup> {
    vec![
        ProtocolSetup::new(ProtocolKind::Push),
        ProtocolSetup::new(ProtocolKind::PushPull),
        ProtocolSetup::new(ProtocolKind::VisitExchange),
        ProtocolSetup::new(ProtocolKind::VisitExchange)
            .with_label("visitx (1/vertex)")
            .with_agents(AgentConfig::one_per_vertex()),
    ]
}

fn family_sweep(points: Vec<SweepPoint>, trials: usize) -> ScalingSweep {
    ScalingSweep {
        points,
        protocols: protocols(),
        trials,
        max_rounds: 100_000_000,
    }
}

fn random_regular_points(sizes: &[usize], seed: u64) -> Vec<SweepPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    sizes
        .iter()
        .map(|&n| {
            let d = logarithmic_degree(n, 2.0);
            let g = random_regular(n, d, &mut rng).expect("random regular generator");
            SweepPoint::labelled(g, 0, &format!("{n} (d={d})"))
        })
        .collect()
}

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let sizes: Vec<usize> = config.pick(
        vec![64, 128],
        vec![256, 512, 1024, 2048],
        vec![1024, 2048, 4096, 8192, 16384],
    );
    let trials = config.trials(4, 15, 30);

    let mut report = ExperimentReport::new(
        ID,
        "Regular graphs with d = Ω(log n): push vs visit-exchange",
        "Theorem 1 (Theorems 10 + 19): on any d-regular graph with d = Ω(log n), the broadcast \
         times of push and visit-exchange are asymptotically equal up to constant factors. The \
         remark after Lemma 11 extends this to the one-agent-per-vertex model.",
    );

    // Family 1: random d-regular graphs with d ≈ 2 log2 n.
    let rr = family_sweep(random_regular_points(&sizes, config.seed ^ 0xD1CE), trials).run(config);
    report.push_table(rr.times_table("Random d-regular graphs (d ≈ 2·log2 n)"));
    report.push_table(rr.ratio_table(
        "Random regular: push / visit-exchange ratio (Theorem 1 ⇒ bounded by a constant)",
        "push",
        "visit-exchange",
    ));

    // Family 2: hypercubes (d = log2 n exactly).
    let dims: Vec<u32> = config.pick(vec![6, 7], vec![8, 9, 10, 11], vec![10, 11, 12, 13, 14]);
    let hq_points: Vec<SweepPoint> = dims
        .iter()
        .map(|&dim| {
            let g = hypercube(dim).expect("hypercube generator");
            SweepPoint::labelled(g, 0, &format!("2^{dim} (d={dim})"))
        })
        .collect();
    let hq = family_sweep(hq_points, trials).run(config);
    report.push_table(hq.times_table("Hypercubes (d = log2 n)"));
    report.push_table(hq.ratio_table(
        "Hypercube: push / visit-exchange ratio",
        "push",
        "visit-exchange",
    ));

    // Family 3: cycle of cliques — a regular graph where both protocols are
    // polynomially slow; the theorem still forces the ratio to stay constant.
    let clique_counts: Vec<usize> =
        config.pick(vec![6, 10], vec![8, 16, 32, 64], vec![16, 32, 64, 128, 256]);
    let cc_points: Vec<SweepPoint> = clique_counts
        .iter()
        .map(|&k| {
            // Keep the clique size (= degree) around 2 log2 of the total size.
            let approx_n = k * 24;
            let d = logarithmic_degree(approx_n, 2.0).max(6);
            let g = cycle_of_cliques(k, d).expect("cycle of cliques generator");
            let n = g.num_vertices();
            SweepPoint::labelled(g, 0, &format!("{n} ({k} cliques, d={d})"))
        })
        .collect();
    let cc = family_sweep(cc_points, trials).run(config);
    report.push_table(cc.times_table("Cycle of (d+1)-cliques (slow regular family)"));
    report.push_table(cc.ratio_table(
        "Cycle of cliques: push / visit-exchange ratio",
        "push",
        "visit-exchange",
    ));

    // Family 4: complete graphs (d = n − 1, the densest regular family).
    let complete_sizes: Vec<usize> = config.pick(
        vec![64, 128],
        vec![128, 256, 512, 1024],
        vec![512, 1024, 2048, 4096],
    );
    let kn_points: Vec<SweepPoint> = complete_sizes
        .iter()
        .map(|&n| SweepPoint::new(complete(n).expect("complete graph"), 0))
        .collect();
    let kn = family_sweep(kn_points, trials).run(config);
    report.push_table(kn.times_table("Complete graphs K_n"));

    // Ratio summary across families at the largest size.
    let ratios = [
        ("random regular", rr.final_ratio("push", "visit-exchange")),
        ("hypercube", hq.final_ratio("push", "visit-exchange")),
        ("cycle of cliques", cc.final_ratio("push", "visit-exchange")),
        ("complete graph", kn.final_ratio("push", "visit-exchange")),
    ];
    let mut summary = rumor_analysis::Table::new(
        "push / visit-exchange mean-time ratio at the largest size, per family",
        &["family", "ratio"],
    );
    for (family, ratio) in ratios {
        summary.push_row(&[family, &format!("{ratio:.2}")]);
    }
    report.push_table(summary);

    report.push_note(format!(
        "All four regular families keep the push / visit-exchange ratio within a small constant band \
         ({:.2}–{:.2}), matching Theorem 1, even though the absolute times range from logarithmic \
         (random regular, hypercube, complete) to polynomial (cycle of cliques).",
        ratios.iter().map(|&(_, r)| r).fold(f64::INFINITY, f64::min),
        ratios.iter().map(|&(_, r)| r).fold(0.0, f64::max),
    ));
    report.push_note(format!(
        "The one-agent-per-vertex variant tracks the stationary-placement variant \
         (ratio {:.2} on random regular graphs at the largest size), as the remark after Lemma 11 predicts.",
        rr.final_ratio("visitx (1/vertex)", "visit-exchange")
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_report() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert!(report.tables.len() >= 8);
        assert_eq!(report.notes.len(), 2);
    }

    #[test]
    fn push_and_visit_exchange_are_comparable_on_a_regular_graph() {
        let config = ExperimentConfig::smoke();
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_regular(256, 16, &mut rng).unwrap();
        let sweep = ScalingSweep {
            points: vec![SweepPoint::new(g, 0)],
            protocols: vec![
                ProtocolSetup::new(ProtocolKind::Push),
                ProtocolSetup::new(ProtocolKind::VisitExchange),
            ],
            trials: 8,
            max_rounds: 1_000_000,
        };
        let result = sweep.run(&config);
        let ratio = result.final_ratio("push", "visit-exchange");
        assert!(
            (0.2..5.0).contains(&ratio),
            "push / visit-exchange ratio {ratio} outside the constant band"
        );
    }
}
