//! FIG1A — the star `S_n` (Fig. 1(a), Lemma 2).
//!
//! Claims reproduced: `E[T_push] = Ω(n log n)`, `T_ppull ≤ 2`,
//! `T_visitx = O(log n)` w.h.p., and (with lazy walks) `T_meetx = O(log n)`
//! w.h.p.

use rumor_core::{AgentConfig, ProtocolKind};
use rumor_graphs::generators::{star, STAR_CENTER};

use crate::config::ExperimentConfig;
use crate::report::ExperimentReport;
use crate::sweep::{ProtocolSetup, ScalingSweep, SweepPoint};

/// Identifier of this experiment.
pub const ID: &str = "fig1a-star";

/// Runs the experiment at the configured scale.
pub fn run(config: &ExperimentConfig) -> ExperimentReport {
    let sizes: Vec<usize> = config.pick(
        vec![64, 128, 256],
        vec![256, 512, 1024, 2048, 4096],
        vec![1024, 2048, 4096, 8192, 16384, 32768],
    );
    let trials = config.trials(5, 20, 40);

    let points: Vec<SweepPoint> = sizes
        .iter()
        .map(|&leaves| {
            // The source is the center; the push lower bound is strongest there
            // (the center must personally call almost every leaf).
            SweepPoint::new(star(leaves).expect("star generator"), STAR_CENTER)
        })
        .collect();

    let sweep = ScalingSweep {
        points,
        protocols: vec![
            ProtocolSetup::new(ProtocolKind::Push),
            ProtocolSetup::new(ProtocolKind::PushPull),
            ProtocolSetup::lazy(ProtocolKind::VisitExchange),
            ProtocolSetup::lazy(ProtocolKind::MeetExchange),
        ],
        trials,
        max_rounds: 100_000_000,
    };
    let result = sweep.run(config);

    let mut report = ExperimentReport::new(
        ID,
        "Star graph S_n",
        "Lemma 2: E[T_push] = Ω(n log n); T_ppull ≤ 2; T_visitx, T_meetx = O(log n) w.h.p. \
         (agent protocols use lazy walks because the star is bipartite).",
    );
    report.push_table(result.times_table("Mean broadcast time on the star (source = center)"));
    report.push_table(result.fits_table("Fitted growth laws"));
    report.push_table(result.ratio_table(
        "push / visit-exchange mean-time ratio",
        "push",
        "visit-exchange",
    ));

    let push_fit = rumor_analysis::fit_power_law(&result.scaling_points("push"));
    let visitx_fit = rumor_analysis::fit_power_law(&result.scaling_points("visit-exchange"));
    report.push_note(format!(
        "push empirical exponent {:.2} (coupon collector ⇒ ≈ 1); visit-exchange exponent {:.2} (logarithmic ⇒ ≈ 0).",
        push_fit.exponent, visitx_fit.exponent
    ));
    report.push_note(format!(
        "At the largest size, push is {:.0}× slower than visit-exchange and {:.0}× slower than push-pull.",
        result.final_ratio("push", "visit-exchange"),
        result.final_ratio("push", "push-pull")
    ));

    // Agent-density ablation at one fixed size: the paper assumes |A| = αn for
    // constant α; check the broadcast time is insensitive to α ∈ {1/2, 1, 2}.
    let ablation_leaves = *sizes.last().expect("non-empty sizes") / 2;
    let ablation = ScalingSweep {
        points: vec![SweepPoint::labelled(
            star(ablation_leaves).expect("star generator"),
            STAR_CENTER,
            &format!("{} (fixed)", ablation_leaves + 1),
        )],
        protocols: vec![
            ProtocolSetup::lazy(ProtocolKind::VisitExchange)
                .with_label("visitx α=0.5")
                .with_agents(AgentConfig::with_alpha(0.5).lazy()),
            ProtocolSetup::lazy(ProtocolKind::VisitExchange)
                .with_label("visitx α=1")
                .with_agents(AgentConfig::with_alpha(1.0).lazy()),
            ProtocolSetup::lazy(ProtocolKind::VisitExchange)
                .with_label("visitx α=2")
                .with_agents(AgentConfig::with_alpha(2.0).lazy()),
        ],
        trials,
        max_rounds: 100_000_000,
    };
    let ablation_result = ablation.run(config);
    report.push_table(
        ablation_result.times_table("Ablation: agent density α on the star (visit-exchange)"),
    );

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_reproduces_the_ordering() {
        let report = run(&ExperimentConfig::smoke());
        assert_eq!(report.id, ID);
        assert!(report.tables.len() >= 4);
        assert!(!report.notes.is_empty());
    }

    #[test]
    fn push_is_much_slower_than_the_others() {
        let config = ExperimentConfig::smoke();
        let sizes = [128usize];
        let points: Vec<SweepPoint> = sizes
            .iter()
            .map(|&l| SweepPoint::new(star(l).unwrap(), STAR_CENTER))
            .collect();
        let sweep = ScalingSweep {
            points,
            protocols: vec![
                ProtocolSetup::new(ProtocolKind::Push),
                ProtocolSetup::new(ProtocolKind::PushPull),
                ProtocolSetup::lazy(ProtocolKind::VisitExchange),
            ],
            trials: 5,
            max_rounds: 10_000_000,
        };
        let result = sweep.run(&config);
        // Lemma 2: push needs Ω(n log n) while push-pull ≤ 2 and visitx = O(log n).
        assert!(result.final_ratio("push", "push-pull") > 20.0);
        assert!(result.final_ratio("push", "visit-exchange") > 5.0);
        assert!(result.summary("push-pull", 0).max <= 2.0);
    }
}
